//! Data-warehouse ingestion scenario (paper §IV-B): ORC-encoded columnar
//! stripes compressed at a high level for long-term storage, then read
//! back by downstream jobs.
//!
//! Reproduces the DW1 takeaway: "It is worth spending more compute
//! cycles to improve the compression of data destined for long-term
//! storage" — by comparing ingestion at zstdx levels 1 and 7 under the
//! CompOpt cost model with a long retention.
//!
//! Run with: `cargo run --release --example warehouse_ingestion`

use compopt::prelude::*;
use datacomp::codecs::zstdx::Zstdx;
use datacomp::codecs::{Algorithm, Compressor};
use datacomp::corpus::orc;

fn main() {
    // Ingest ~4 MB of columnar warehouse data in <=256 KiB blocks.
    let blocks = orc::generate_blocks(4 << 20, 42);
    println!("ingesting {} ORC blocks (<= 256 KiB each)\n", blocks.len());

    // Level comparison with per-stage timing (Figure 7's split).
    for level in [1, 7] {
        let z = Zstdx::new(level);
        let mut total_in = 0usize;
        let mut total_out = 0usize;
        let mut timing = datacomp::codecs::timing::StageTiming::default();
        for b in &blocks {
            let (frame, t) = z.compress_timed(b);
            timing.accumulate(&t);
            total_in += b.len();
            total_out += frame.len();
            assert_eq!(z.decompress(&frame).expect("own frame"), *b);
        }
        println!(
            "level {level}: ratio {:.2}, {:>6.1} MB/s, match-finding holds {:.0}% of stage time",
            total_in as f64 / total_out as f64,
            total_in as f64 / timing.total.as_secs_f64() / 1e6,
            timing.match_find_fraction() * 100.0
        );
    }

    // CompOpt: is level 7 worth it for long-term storage?
    let refs: Vec<&[u8]> = blocks.iter().map(|v| v.as_slice()).collect();
    let mut engine = CompEngine::new();
    engine.add_levels(Algorithm::Zstdx, [1, 3, 7, 12]);
    let measured = engine.measure(&refs);
    let pricing = Pricing::aws_2023();

    for retention_days in [1.0, 365.0] {
        let params = CostParams::from_pricing(&pricing, 1.0, retention_days);
        let evals = evaluate_all(&measured, &params, CostWeights::COMPUTE_STORAGE, &[]);
        let best = optimum(&evals).expect("feasible");
        println!(
            "\nretention {retention_days:>4} days -> optimal {} (compute {:.2e}, storage {:.2e})",
            best.label, best.costs.compute, best.costs.storage
        );
    }
    println!("\nlonger retention shifts the optimum toward higher levels, as the paper's DW1 uses level 7.");
}
