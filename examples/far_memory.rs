//! Far-memory scenario: compressing cold 4 KiB pages into a memory tier
//! (the paper's intro use case, à la software-defined far memory / TMO).
//!
//! Demonstrates why page compression favors the fastest levels: pages
//! are small, latency budgets are microseconds, and the win is memory
//! TCO, so the right objective is ratio-per-CPU-microsecond rather than
//! best ratio.
//!
//! Run with: `cargo run --release --example far_memory`

use datacomp::codecs::Algorithm;
use datacomp::corpus::mempage::{generate_pages, PageClass, PageMix, PAGE_SIZE};

fn main() {
    let pages = generate_pages(&PageMix::cold_memory(), 2000, 17);
    println!(
        "cold-page population: {} pages of {} B\n",
        pages.len(),
        PAGE_SIZE
    );

    // Per-class compressibility at the fastest zstdx level.
    let z = Algorithm::Zstdx.compressor(1);
    for class in [
        PageClass::Zero,
        PageClass::Heap,
        PageClass::Text,
        PageClass::Random,
    ] {
        let of_class: Vec<&[u8]> = pages
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|(_, p)| p.as_slice())
            .collect();
        if of_class.is_empty() {
            continue;
        }
        let m = datacomp::codecs::measure(z.as_ref(), &of_class);
        println!(
            "{class:?}: {:>5} pages, ratio {:>5.2}, {:>7.1} MB/s compress",
            of_class.len(),
            m.ratio(),
            m.compress_mbps()
        );
    }

    // Level choice for the whole tier: effective memory saved per CPU second.
    println!("\nlevel sweep over the mixed population:");
    let refs: Vec<&[u8]> = pages.iter().map(|(_, p)| p.as_slice()).collect();
    for level in [-5, -1, 1, 3, 6] {
        let c = Algorithm::Zstdx.compressor(level);
        let m = datacomp::codecs::measure(c.as_ref(), &refs);
        let saved = m.original_bytes - m.compressed_bytes.min(m.original_bytes);
        let saved_per_cpu = saved as f64 / m.compress_secs / 1e6;
        println!(
            "  level {level:>2}: ratio {:.2}, {:>7.1} MB/s, {:>8.0} MB freed per CPU-second",
            m.ratio(),
            m.compress_mbps(),
            saved_per_cpu
        );
    }
    println!("\nfast levels maximize memory freed per CPU-second even though higher");
    println!("levels compress tighter — the paper's category-A (speed-sensitive) shape.");
}
