//! Cache service scenario (paper §IV-C): individually-compressed small
//! typed items, one trained dictionary per type, compressed data served
//! over the wire without server-side decompression.
//!
//! Run with: `cargo run --release --example cache_service`

use std::collections::HashMap;

use datacomp::codecs::{self, Compressor, Dictionary};
use datacomp::corpus::cache::{cache1_profile, generate_items, CacheItem};

/// A toy cache shard: stores items compressed, serves them compressed
/// (the client decompresses), exactly as the paper describes.
struct CacheShard {
    codec: codecs::zstdx::Zstdx,
    dicts: HashMap<u32, Dictionary>,
    store: HashMap<u64, (u32, Vec<u8>)>,
    raw_bytes: u64,
    stored_bytes: u64,
}

impl CacheShard {
    fn new(training: &[CacheItem]) -> Self {
        let mut by_type: HashMap<u32, Vec<&[u8]>> = HashMap::new();
        for item in training {
            by_type.entry(item.type_id).or_default().push(&item.data);
        }
        // One dictionary per data type (paper: "we can group items by
        // their type and provide one dictionary per data type").
        let dicts: HashMap<u32, Dictionary> = by_type
            .into_iter()
            .map(|(t, samples)| (t, codecs::dict::train(&samples, 16 * 1024, t)))
            .collect();
        Self {
            codec: codecs::zstdx::Zstdx::new(3),
            dicts,
            store: HashMap::new(),
            raw_bytes: 0,
            stored_bytes: 0,
        }
    }

    fn set(&mut self, key: u64, item: &CacheItem) {
        let frame = match self.dicts.get(&item.type_id) {
            Some(d) => self.codec.compress_with_dict(&item.data, d),
            None => self.codec.compress(&item.data),
        };
        self.raw_bytes += item.data.len() as u64;
        self.stored_bytes += frame.len() as u64;
        self.store.insert(key, (item.type_id, frame));
    }

    /// Returns the *compressed* frame — sent to the client as-is,
    /// "saving both CPU and network" on the server.
    fn get_wire(&self, key: u64) -> Option<&(u32, Vec<u8>)> {
        self.store.get(&key)
    }
}

fn main() {
    let items = generate_items(&cache1_profile(), 3000, 11);
    let (training, live) = items.split_at(1000);

    let mut shard = CacheShard::new(training);
    for (i, item) in live.iter().enumerate() {
        shard.set(i as u64, item);
    }
    println!(
        "stored {} items: {} raw bytes -> {} compressed ({:.2}x ratio with per-type dictionaries)",
        live.len(),
        shard.raw_bytes,
        shard.stored_bytes,
        shard.raw_bytes as f64 / shard.stored_bytes as f64
    );

    // Client-side read path: fetch wire bytes, decompress locally.
    let mut wire_bytes = 0u64;
    let mut client_ok = 0usize;
    for (i, item) in live.iter().enumerate() {
        let (type_id, frame) = shard.get_wire(i as u64).expect("item present");
        wire_bytes += frame.len() as u64;
        let dict = &shard.dicts[type_id];
        let data = shard
            .codec
            .decompress_with_dict(frame, dict)
            .expect("valid frame");
        assert_eq!(&data, &item.data);
        client_ok += 1;
    }
    println!(
        "served {client_ok} reads over the wire: {wire_bytes} bytes sent (vs {} uncompressed)",
        shard.raw_bytes
    );

    // Comparison: what the ratio would be without dictionaries.
    let plain: u64 = live
        .iter()
        .map(|i| shard.codec.compress(&i.data).len() as u64)
        .sum();
    println!(
        "without dictionaries the same store would hold {} bytes ({:.2}x) — dictionary gain {:.0}%",
        plain,
        shard.raw_bytes as f64 / plain as f64,
        (plain as f64 / shard.stored_bytes as f64 - 1.0) * 100.0
    );
}
