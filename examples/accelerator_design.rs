//! Hardware accelerator design-space exploration with CompSim (paper
//! §V-A / study 3): pick the on-chip match-window size for a compression
//! accelerator serving two different services.
//!
//! Run with: `cargo run --release --example accelerator_design`

use compopt::prelude::*;
use compopt::studies::{study3_window_sweep, StudyScale};
use datacomp::codecs::Algorithm;

fn main() {
    // A HW designer models their accelerator: zstd-1-like algorithm,
    // 10x the software speed, EIA-priced accelerator time, and a
    // restricted on-chip window (the expensive SRAM knob).
    let base = CompressionConfig::new(Algorithm::Zstdx, 1);
    let pricing = Pricing::aws_2023();
    let sim = CompSim::new(base, 10.0, pricing.accelerator_per_second).with_window_log(16);
    println!("candidate accelerator: {}\n", sim.label());

    // Sweep the window for both target services.
    let (ads, kv) = study3_window_sweep(&StudyScale::quick(), 10.0);
    println!("normalized cost by window size:");
    println!("{:>8} {:>10} {:>10}", "window", "ADS1", "KVSTORE1");
    for (a, k) in ads
        .iter()
        .zip(kv.iter().chain(std::iter::repeat(kv.last().unwrap())))
    {
        println!(
            "{:>8} {:>10.3} {:>10.3}",
            format!("2^{}", a.window_log),
            a.normalized,
            k.normalized
        );
    }

    let plateau = |rows: &[compopt::studies::WindowRow]| {
        let last = rows.last().unwrap().normalized;
        rows.iter()
            .find(|r| (r.normalized - last).abs() / last < 0.01)
            .unwrap()
            .window_log
    };
    println!(
        "\nADS1 stops improving at 2^{}; KVSTORE1 at 2^{}.",
        plateau(&ads),
        plateau(&kv)
    );
    println!("=> one fixed-function window cannot serve both optimally — the paper's");
    println!("   argument for either per-service sizing or reconfigurable hardware (§VI-B).");
}
