//! Auto-tuning across a simulated month of workload drift (§VI-C).
//!
//! The fleet is profiled day by day while its content drifts; an
//! [`AutoTuner`] re-tunes a KVSTORE1-style service each day and reports
//! when (and why) it switches configurations.
//!
//! Run with: `cargo run --release --example drift_autotune`

use datacomp::codecs::Algorithm;
use datacomp::compopt::autotune::AutoTuner;
use datacomp::compopt::prelude::*;
use datacomp::corpus;
use datacomp::fleet::drift::{simulate_days, DriftConfig};

fn main() {
    // Fleet-level drift over a simulated month (reduced days for demo).
    let days = 10;
    println!("fleet drift over {days} simulated days:");
    let reports = simulate_days(&DriftConfig {
        days,
        work_units_per_day: 2,
        seed: 42,
    });
    println!(
        "{:>4} {:>10} {:>12} {:>14}",
        "day", "tax", "zstd share", "achieved ratio"
    );
    for r in &reports {
        println!(
            "{:>4} {:>9.2}% {:>11.0}% {:>14.2}",
            r.day,
            r.fleet_tax * 100.0,
            r.zstd_share * 100.0,
            r.achieved_ratio
        );
    }

    // A per-service auto-tuner rides the same drift: each day brings a
    // fresh SST sample whose key/value shape slowly changes.
    let configs = vec![
        CompressionConfig::new(Algorithm::Zstdx, 1).with_block_size(16 << 10),
        CompressionConfig::new(Algorithm::Zstdx, 3).with_block_size(16 << 10),
        CompressionConfig::new(Algorithm::Zstdx, 1).with_block_size(64 << 10),
        CompressionConfig::new(Algorithm::Lz4x, 1).with_block_size(16 << 10),
    ];
    let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 90.0);
    let mut tuner = AutoTuner::new(configs, params, CostWeights::COMPUTE_STORAGE)
        .with_constraints(vec![Constraint::MaxDecompressionLatencyMs(5.0)]);

    println!("\nper-day re-tuning of a KVSTORE1-style service:");
    for day in 0..days as u64 {
        let sst = corpus::sst::generate_sst(512 << 10, 1000 + day);
        let refs: Vec<&[u8]> = vec![&sst];
        tuner.retune(&refs);
        let event = tuner.history().last().expect("round ran");
        println!(
            "  day {day}: {} (cost {:.3e}){}",
            event.selected,
            event.total_cost,
            if event.switched { "  <- switched" } else { "" }
        );
    }
    let switches = tuner.history().iter().filter(|e| e.switched).count();
    println!(
        "\n{switches} configuration change(s) in {days} days; hysteresis suppresses noise-driven flapping."
    );
}
