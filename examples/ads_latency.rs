//! Ads inference scenario (paper §IV-D): compressing RPC requests to cut
//! network cost under a strict latency budget, with per-model variance.
//!
//! Run with: `cargo run --release --example ads_latency`

use compopt::prelude::*;
use datacomp::codecs::Algorithm;
use datacomp::corpus::mlreq::{generate_requests, Model};

fn main() {
    // Per-model compression profiles (Figure 12's variance).
    println!("per-model compression at zstdx level 1:");
    let c = Algorithm::Zstdx.compressor(1);
    for model in Model::ALL {
        let reqs = generate_requests(model, 3, 5);
        let refs: Vec<&[u8]> = reqs.iter().map(|v| v.as_slice()).collect();
        let m = datacomp::codecs::measure(c.as_ref(), &refs);
        println!(
            "  {:<8} avg request {:>8} B  ratio {:.2}  comp {:>6.1} MB/s",
            model.to_string(),
            m.original_bytes / m.calls,
            m.ratio(),
            m.compress_mbps()
        );
    }

    // Latency-aware configuration choice: the request must be
    // compressed fast enough not to blow the RPC budget.
    let reqs = generate_requests(Model::A, 4, 6);
    let refs: Vec<&[u8]> = reqs.iter().map(|v| v.as_slice()).collect();
    let mut engine = CompEngine::new();
    engine.add_levels(Algorithm::Zstdx, [-3, -1, 1, 2, 3, 4, 6, 9]);
    engine.add_levels(Algorithm::Lz4x, [1, 6]);
    let measured = engine.measure(&refs);
    let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 0.0);

    // Sweep the speed SLO and watch the optimum move (study 1's logic).
    let evals = evaluate_all(&measured, &params, CostWeights::COMPUTE_NETWORK, &[]);
    let speeds: Vec<f64> = evals.iter().map(|e| e.compress_mbps).collect();
    let max_speed = speeds.iter().cloned().fold(f64::MIN, f64::max);
    println!("\nSLO sweep (compute + network objective):");
    for slo_frac in [0.0, 0.3, 0.6, 0.9] {
        let slo = max_speed * slo_frac;
        let evals = evaluate_all(
            &measured,
            &params,
            CostWeights::COMPUTE_NETWORK,
            &[Constraint::MinCompressionSpeedMbps(slo)],
        );
        match optimum(&evals) {
            Some(best) => println!(
                "  speed >= {slo:>7.1} MB/s -> {} (ratio {:.2}, {:.1} MB/s)",
                best.label, best.ratio, best.compress_mbps
            ),
            None => println!("  speed >= {slo:>7.1} MB/s -> no feasible configuration"),
        }
    }
    println!("\ntighter latency SLOs push the optimum toward faster, lower-ratio configs.");
}
