//! Managed Compression scenario (the paper's reference [27]): a
//! stateless client API backed by a service that trains, versions, and
//! rolls out dictionaries from sampled traffic.
//!
//! Run with: `cargo run --release --example managed_service`

use managed::{ManagedCompression, ManagedConfig};

fn payload(case: &str, i: usize) -> Vec<u8> {
    match case {
        "profiles" => {
            format!(
            "{{\"schema\":\"user.profile.v3\",\"uid\":{},\"locale\":\"en_US\",\"flags\":[{},{}]}}",
            i, i % 7, i % 3
        )
            .into_bytes()
        }
        _ => format!(
            "{{\"schema\":\"media.meta.v1\",\"id\":{},\"codec\":\"av1\",\"bitrate\":{}}}",
            i * 31,
            800 + i % 400
        )
        .into_bytes(),
    }
}

fn main() {
    let mut svc = ManagedCompression::new(ManagedConfig {
        retrain_interval: 200,
        ..ManagedConfig::default()
    });

    // Two independent use cases share the service.
    let mut checkpoints = Vec::new();
    for round in 0..6 {
        let mut bytes_in = 0usize;
        let mut bytes_out = 0usize;
        for i in round * 100..(round + 1) * 100 {
            for case in ["profiles", "media"] {
                let p = payload(case, i);
                let f = svc.compress(case, &p).expect("admitted");
                assert_eq!(svc.decompress(case, &f).expect("round-trips"), p);
                bytes_in += p.len();
                bytes_out += f.len();
            }
        }
        checkpoints.push((round, bytes_in as f64 / bytes_out as f64));
    }

    println!("ratio per traffic round (dictionaries roll out as reservoirs warm):");
    for (round, ratio) in &checkpoints {
        println!("  round {round}: {ratio:.2}x");
    }
    for case in ["profiles", "media"] {
        let st = svc.stats(case).expect("use case exists");
        println!(
            "\n{case}: {} compress calls, {} dictionary versions, lifetime ratio {:.2}x",
            st.compress_calls,
            st.versions_trained,
            st.ratio()
        );
    }
    let early = checkpoints.first().expect("rounds ran").1;
    let late = checkpoints.last().expect("rounds ran").1;
    println!(
        "\nratio improved {:.0}% from first to last round without any client-side dictionary logic.",
        (late / early - 1.0) * 100.0
    );
}
