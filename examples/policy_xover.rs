//! Scratch experiment: Single-vs-Quad decode throughput per corpus
//! class, used to recalibrate the Auto stream-policy thresholds.

use std::time::Instant;

use datacomp::codecs::{zlibx::Zlibx, zstdx::Zstdx, Compressor, StreamPolicy};
use datacomp::corpus::silesia::FileClass;

fn mbps(comp: &dyn Compressor, data: &[u8], iters: usize) -> f64 {
    let frame = comp.compress(data);
    for _ in 0..2 {
        assert_eq!(comp.decompress(&frame).unwrap().len(), data.len());
    }
    let mut best = 0.0f64;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(comp.decompress(&frame).unwrap());
        }
        let v = data.len() as f64 * iters as f64 / t0.elapsed().as_secs_f64() / 1e6;
        best = best.max(v);
    }
    best
}

fn main() {
    let per_class = 256 << 10;
    // Literal fraction per class at zlibx level 6 (64 KiB blocks).
    let z6 = Zlibx::new(6);
    for class in FileClass::ALL {
        let data = datacomp::corpus::silesia::generate(class, per_class, 0x5157);
        let params = z6.params().expect("level 6 has params");
        let mut fracs = Vec::new();
        let mut start = 0usize;
        while start < data.len() {
            let end = (start + 64 * 1024).min(data.len());
            let block = datacomp::lzkit::parse(&data[..end], start, params);
            fracs.push(block.literals.len() as f64 / (end - start) as f64);
            start = end;
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        let min = fracs.iter().cloned().fold(f64::MAX, f64::min);
        let max = fracs.iter().cloned().fold(f64::MIN, f64::max);
        println!("litfrac {class:?}: mean {mean:.3} min {min:.3} max {max:.3}");
    }
    println!(
        "{:<12} {:>10} {:>10} {:>8}",
        "class", "single", "auto", "delta"
    );
    for codec in ["zlibx", "zstdx"] {
        let mut mixed = Vec::new();
        for (i, class) in FileClass::ALL.into_iter().enumerate() {
            let data = datacomp::corpus::silesia::generate(class, per_class, 0x5157 + i as u64);
            mixed.extend_from_slice(&data);
            let (s, q): (Box<dyn Compressor>, Box<dyn Compressor>) = match codec {
                "zlibx" => (
                    Box::new(Zlibx::new(6).with_stream_policy(StreamPolicy::Single)),
                    Box::new(Zlibx::new(6).with_stream_policy(StreamPolicy::Auto)),
                ),
                _ => (
                    Box::new(Zstdx::new(3).with_stream_policy(StreamPolicy::Single)),
                    Box::new(Zstdx::new(3).with_stream_policy(StreamPolicy::Auto)),
                ),
            };
            let ms = mbps(s.as_ref(), &data, 6);
            let mq = mbps(q.as_ref(), &data, 6);
            println!(
                "{codec:<6}{:<12} {ms:>10.1} {mq:>10.1} {:>+7.1}%",
                format!("{class:?}"),
                (mq / ms - 1.0) * 100.0
            );
        }
        let (s, q): (Box<dyn Compressor>, Box<dyn Compressor>) = match codec {
            "zlibx" => (
                Box::new(Zlibx::new(6).with_stream_policy(StreamPolicy::Single)),
                Box::new(Zlibx::new(6).with_stream_policy(StreamPolicy::Auto)),
            ),
            _ => (
                Box::new(Zstdx::new(3).with_stream_policy(StreamPolicy::Single)),
                Box::new(Zstdx::new(3).with_stream_policy(StreamPolicy::Auto)),
            ),
        };
        let ms = mbps(s.as_ref(), &mixed, 4);
        let mq = mbps(q.as_ref(), &mixed, 4);
        println!(
            "{codec:<6}{:<12} {ms:>10.1} {mq:>10.1} {:>+7.1}%",
            "MIXED",
            (mq / ms - 1.0) * 100.0
        );
    }
}
