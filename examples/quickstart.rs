//! Quickstart: compress data with the three codecs, train a dictionary,
//! and let CompOpt pick the cheapest configuration for a workload.
//!
//! Run with: `cargo run --release --example quickstart`

use compopt::prelude::*;
use datacomp::codecs::{self, Algorithm, Compressor};
use datacomp::corpus;

fn main() {
    // --- 1. Compress one buffer with each codec ------------------------
    let data = corpus::silesia::generate(corpus::silesia::FileClass::Log, 256 * 1024, 1);
    println!("input: {} bytes of synthetic server logs\n", data.len());
    for algo in Algorithm::ALL {
        let c = algo.compressor(3);
        let t0 = std::time::Instant::now();
        let compressed = c.compress(&data);
        let dt = t0.elapsed();
        let restored = c.decompress(&compressed).expect("own frame round-trips");
        assert_eq!(restored, data);
        println!(
            "{:>6} level 3: ratio {:.2}, {:.0} MB/s",
            algo.name(),
            data.len() as f64 / compressed.len() as f64,
            data.len() as f64 / dt.as_secs_f64() / 1e6,
        );
    }

    // --- 2. Dictionary compression for small typed items ---------------
    let items = corpus::cache::generate_items(&corpus::cache::cache1_profile(), 400, 2);
    let train: Vec<&[u8]> = items[..200].iter().map(|i| i.data.as_slice()).collect();
    let dict = codecs::dict::train(&train, 16 * 1024, 7);
    let z = codecs::zstdx::Zstdx::new(3);
    let (mut plain, mut with_dict) = (0usize, 0usize);
    for item in &items[200..] {
        plain += z.compress(&item.data).len();
        with_dict += z.compress_with_dict(&item.data, &dict).len();
    }
    println!(
        "\ndictionary on small cache items: {} -> {} bytes ({:.0}% smaller)",
        plain,
        with_dict,
        (1.0 - with_dict as f64 / plain as f64) * 100.0
    );

    // --- 3. Ask CompOpt for the cheapest configuration -----------------
    let samples: Vec<Vec<u8>> = (0..4)
        .map(|i| corpus::silesia::generate(corpus::silesia::FileClass::Database, 64 * 1024, i))
        .collect();
    let refs: Vec<&[u8]> = samples.iter().map(|v| v.as_slice()).collect();
    let mut engine = CompEngine::new();
    for algo in Algorithm::ALL {
        engine.add_levels(algo, [1, 3, 6]);
    }
    let measured = engine.measure(&refs);
    let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 30.0);
    let evals = evaluate_all(&measured, &params, CostWeights::ALL, &[]);
    println!("\nCompOpt ranking (30-day retention, all resources priced):");
    for e in evals.iter().take(5) {
        println!(
            "  {:<14} ratio {:>5.2}  {:>7.1} MB/s  cost {:.3e}",
            e.label, e.ratio, e.compress_mbps, e.total_cost
        );
    }
    let best = optimum(&evals).expect("something is feasible");
    println!("\noptimal configuration: {}", best.label);
}
