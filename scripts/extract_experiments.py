#!/usr/bin/env python3
"""Extracts figure tables from bench_output.txt (helper for EXPERIMENTS.md)."""
import re, sys
text = open('/root/repo/bench_output.txt').read()
sections = re.split(r"\n== ", text)
for s in sections[1:]:
    title = s.split(" ==")[0]
    body = s.split(" ==\n", 1)[1] if " ==\n" in s else ""
    lines = [l for l in body.split("\n") if l.strip()][:40]
    stop = next((i for i, l in enumerate(lines) if l.startswith("[artifact]") or l.startswith("     Running")), len(lines))
    print(f"### {title}")
    print("\n".join(lines[:stop]))
    print()
