//! Offline stand-in for `parking_lot` (see `shims/README.md`): the
//! `Mutex`/`RwLock` API the workspace uses, backed by `std::sync`
//! primitives. Poisoning is erased by unwrapping — matching
//! `parking_lot`'s semantics of not poisoning at all, except that a
//! lock held while panicking aborts later lockers via the unwrap.

// Registry dependencies build with --cap-lints allow; as offline
// path stand-ins these crates must opt out of repo-only strict lints
// (the CI indexing_slicing gate targets first-party decode paths).
#![allow(clippy::indexing_slicing)]

/// A mutual-exclusion lock with `parking_lot`'s non-`Result` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("lock holder panicked")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().expect("lock holder panicked")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("lock holder panicked")
    }
}

/// A reader-writer lock with `parking_lot`'s non-`Result` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("lock holder panicked")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().expect("lock holder panicked")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().expect("lock holder panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_and_into_inner() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_is_shareable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
