//! Offline stand-in for `serde` (see `shims/README.md`).
//!
//! The build container cannot fetch crates.io, so this crate provides
//! the serialization interface the workspace actually exercises:
//! `Serialize`/`Deserialize` traits, the `Serializer`/`Deserializer`
//! abstractions needed by hand-written `with`-modules (string-typed
//! enum codecs), and re-exported derive macros (from the sibling
//! `serde_derive` shim) for plain named-field structs. The data model
//! is deliberately JSON-shaped — the only consumer is the `serde_json`
//! shim — rather than serde's full 29-type model.

// Registry dependencies build with --cap-lints allow; as offline
// path stand-ins these crates must opt out of repo-only strict lints
// (the CI indexing_slicing gate targets first-party decode paths).
#![allow(clippy::indexing_slicing)]

pub use serde_derive::{Deserialize, Serialize};

/// Serialization interfaces.
pub mod ser {
    use std::fmt::Display;

    /// Errors producible by a serializer.
    pub trait Error: Sized + std::fmt::Debug + Display {
        /// Builds an error carrying a custom message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data format that can serialize the workspace's value shapes.
    pub trait Serializer: Sized {
        /// Output of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Struct sub-serializer.
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Sequence sub-serializer.
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

        /// Serializes a boolean.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        /// Serializes a signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        /// Serializes an unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a float.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a string.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        /// Serializes a unit/null.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes `None`.
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes `Some(value)`.
        fn serialize_some<T: crate::Serialize + ?Sized>(
            self,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Begins a struct with `len` fields.
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
        /// Begins a sequence.
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    }

    /// Incremental struct serialization.
    pub trait SerializeStruct {
        /// Output of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one named field.
        fn serialize_field<T: crate::Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Incremental sequence serialization.
    pub trait SerializeSeq {
        /// Output of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one element.
        fn serialize_element<T: crate::Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// Deserialization interfaces.
pub mod de {
    use std::fmt::Display;

    /// Errors producible by a deserializer.
    pub trait Error: Sized + std::fmt::Debug + Display {
        /// Builds an error carrying a custom message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data format that can be deserialized from. `Copy` so derived
    /// code can probe several fields from the same node — the only
    /// implementation is a shared reference into a parsed value tree.
    pub trait Deserializer<'de>: Sized + Copy {
        /// Error type.
        type Error: Error;

        /// Reads a boolean.
        fn read_bool(self) -> Result<bool, Self::Error>;
        /// Reads a signed integer.
        fn read_i64(self) -> Result<i64, Self::Error>;
        /// Reads an unsigned integer.
        fn read_u64(self) -> Result<u64, Self::Error>;
        /// Reads a float (accepts integers).
        fn read_f64(self) -> Result<f64, Self::Error>;
        /// Reads a string.
        fn read_string(self) -> Result<String, Self::Error>;
        /// True when positioned on null (or a missing field).
        fn is_null(self) -> bool;
        /// Descends into object field `key`. Missing keys yield a
        /// null-positioned deserializer, so `Option` fields read as
        /// `None` and everything else reports a type error.
        fn field(self, key: &'static str) -> Result<Self, Self::Error>;
        /// The elements of an array.
        fn elements(self) -> Result<Vec<Self>, Self::Error>;
        /// The key/value entries of an object.
        fn entries(self) -> Result<Vec<(String, Self)>, Self::Error>;
    }
}

pub use de::Deserializer;
pub use ser::Serializer;

/// A value serializable into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value reconstructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// --------------------------------------------------------------------
// Serialize impls for the primitives the workspace serializes.
// --------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq as _;
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for v in self {
            seq.serialize_element(v)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

// --------------------------------------------------------------------
// Deserialize impls.
// --------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.read_i64()?;
                <$t>::try_from(v).map_err(|_| de::Error::custom(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.read_u64()?;
                <$t>::try_from(v).map_err(|_| de::Error::custom(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.read_f64()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.read_f64().map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.read_bool()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.read_string()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        if d.is_null() {
            Ok(None)
        } else {
            T::deserialize(d).map(Some)
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.elements()?.into_iter().map(T::deserialize).collect()
    }
}
