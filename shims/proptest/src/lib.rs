//! Offline stand-in for `proptest` (see `shims/README.md`).
//!
//! Implements the property-testing surface this workspace uses as a
//! deterministic randomized-input engine: [`Strategy`] with
//! `prop_map`/`boxed`, range and tuple strategies, [`Just`],
//! [`collection::vec`], `any::<T>()`, the [`prop_oneof!`] union macro,
//! and the [`proptest!`] test-harness macro with optional
//! `#![proptest_config(...)]`. Unlike real proptest there is no
//! shrinking: a failing case panics with the standard assertion
//! message, and cases derive deterministically from the test name, so
//! failures reproduce exactly on re-run.

// Registry dependencies build with --cap-lints allow; as offline
// path stand-ins these crates must opt out of repo-only strict lints
// (the CI indexing_slicing gate targets first-party decode paths).
#![allow(clippy::indexing_slicing)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state (SplitMix64). Seeded from the test
/// name so each test sees a stable, independent stream.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (FNV-1a hash of the bytes).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy, enabling heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe counterpart of [`Strategy`] for boxing.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds from at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// Integer ranges. i128 arithmetic covers every primitive width used.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start() + (rng.unit_f64() as f32) * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

macro_rules! arb_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}
arb_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration; only `cases` matters to this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest runs 256; 64 keeps the offline suite brisk
        // while still exercising varied inputs deterministically.
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };

    /// Namespace mirror (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs deterministically.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice across heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds_and_are_deterministic() {
        let mut a = crate::TestRng::deterministic("bounds");
        let mut b = crate::TestRng::deterministic("bounds");
        let strat = 10u32..20;
        for _ in 0..200 {
            let va = strat.generate(&mut a);
            assert!((10..20).contains(&va));
            assert_eq!(va, strat.generate(&mut b));
        }
        let inc = -5i32..=5;
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            let v = inc.generate(&mut a);
            assert!((-5..=5).contains(&v));
            seen_lo |= v == -5;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints never drawn");
    }

    #[test]
    fn unions_maps_and_vecs_compose() {
        let strat = prop_oneof![Just(0u8).boxed(), (1u8..=9).prop_map(|v| v * 10).boxed(),];
        let mut rng = crate::TestRng::deterministic("compose");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 0 || (10..=90).contains(&v) && v % 10 == 0);
        }
        let vecs = crate::collection::vec(any::<u8>(), 3..6);
        for _ in 0..50 {
            let v = vecs.generate(&mut rng);
            assert!((3..=5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn macro_draws_and_asserts(x in 0u64..100, mut v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 100);
            v.push(0);
            prop_assert_ne!(v.len(), 0);
            prop_assert_eq!(v[v.len() - 1], 0);
        }
    }

    proptest! {
        fn macro_default_config_runs(pair in (any::<bool>(), 0i32..=3)) {
            let (b, i) = pair;
            let _tuple_bool_generated: bool = b;
            prop_assert!((0..=3).contains(&i));
        }
    }
}
