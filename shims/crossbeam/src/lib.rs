//! Offline stand-in for `crossbeam` (see `shims/README.md`): the
//! `thread::scope` API the workspace uses, implemented on
//! `std::thread::scope` (stable since 1.63, which post-dates the
//! original choice of crossbeam here).

// Registry dependencies build with --cap-lints allow; as offline
// path stand-ins these crates must opt out of repo-only strict lints
// (the CI indexing_slicing gate targets first-party decode paths).
#![allow(clippy::indexing_slicing)]

/// Scoped threads.
pub mod thread {
    /// A scope handle; `spawn` borrows from the enclosing stack frame.
    /// Mirrors crossbeam's shape: the spawned closure receives the
    /// scope again so it can spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; it is joined when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before
    /// returning. Returns `Err` with the panic payload if the closure
    /// or any spawned thread panicked (crossbeam's contract), `Ok`
    /// otherwise.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_locals_and_join() {
        let total = AtomicU64::new(0);
        let r = super::thread::scope(|scope| {
            for i in 0..8u64 {
                let total = &total;
                scope.spawn(move |_| {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert!(r.is_ok());
        assert_eq!(total.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
