//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! A minimal timing harness exposing the API surface the bench crate
//! uses: `Criterion::default().sample_size(n)`, `benchmark_group`,
//! `Throughput`, `BenchmarkId`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros. It runs each closure `sample_size` times and reports the
//! median wall-clock per iteration (plus throughput when declared) —
//! no statistics, warm-up tuning, or HTML reports. Good enough to
//! keep `cargo bench` runnable and the bench sources compiling.

// Registry dependencies build with --cap-lints allow; as offline
// path stand-ins these crates must opt out of repo-only strict lints
// (the CI indexing_slicing gate targets first-party decode paths).
#![allow(clippy::indexing_slicing)]

use std::fmt::Display;
use std::time::Instant;

/// Names one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Times one closure; handed to benchmark bodies.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `body` repeatedly, recording wall-clock per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = body();
            let nanos = start.elapsed().as_nanos() as f64;
            std::hint::black_box(out);
            self.samples.push(nanos);
        }
    }

    fn median_nanos(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        self.samples[self.samples.len() / 2]
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        run_one(&id.into().id, None, sample_size, f);
    }
}

/// A named group sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.throughput, self.criterion.sample_size, f);
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.throughput, self.criterion.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let nanos = bencher.median_nanos();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if nanos > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (1024.0 * 1024.0) / (nanos / 1e9)
            )
        }
        Some(Throughput::Elements(n)) if nanos > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (nanos / 1e9))
        }
        _ => String::new(),
    };
    println!("bench: {label:<48} median {:>12.0} ns/iter{rate}", nanos);
}

/// Bundles target functions under one runner function, mirroring
/// criterion's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` calling each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_bodies() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(1024));
            g.bench_function("plain", |b| b.iter(|| std::hint::black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("with", 7), &7u32, |b, &x| {
                b.iter(|| std::hint::black_box(x * 2))
            });
            g.finish();
        }
        c.bench_function(BenchmarkId::from_parameter("solo"), |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 16).id, "f/16");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("name").id, "name");
    }
}
