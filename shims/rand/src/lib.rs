//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small slice of `rand` 0.8 it actually uses: the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`, `fill`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator
//! is SplitMix64 — statistically fine for synthetic-corpus generation
//! and deterministic per seed, which is all the workspace needs. The
//! value streams differ from upstream `rand`, so nothing here may
//! assert byte-exact corpora against externally generated fixtures.

// Registry dependencies build with --cap-lints allow; as offline
// path stand-ins these crates must opt out of repo-only strict lints
// (the CI indexing_slicing gate targets first-party decode paths).
#![allow(clippy::indexing_slicing)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution in
/// upstream rand).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Types drawable uniformly from a bounded interval. The single
/// blanket `SampleRange` impl below hangs off this trait so that type
/// inference can flow through `gen_range` the way it does upstream
/// (e.g. `total += rng.gen_range(1..5)` infers the literal as `u64`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                // Modulo bias is negligible for the synthetic-corpus
                // spans used here (all far below 2^64).
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing extension trait, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (`start..end` or `start..=end`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::sample(self);
        u < p
    }

    /// Fills a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Deterministic
    /// per seed; not cryptographic (neither is the upstream `StdRng`
    /// contractually).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(-5i32..=9);
            assert!((-5..=9).contains(&v));
            let f = r.gen_range(0.0f64..1000.0);
            assert!((0.0..1000.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_covers_every_byte_length() {
        let mut r = StdRng::seed_from_u64(3);
        for len in 0..32 {
            let mut buf = vec![0u8; len];
            r.fill(&mut buf[..]);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }
}
