//! Offline stand-in for `serde_json` (see `shims/README.md`).
//!
//! Provides the subset the workspace uses: [`to_string`] over the
//! serde shim's `Serialize`, [`from_str`] into either typed structs or
//! a dynamic [`Value`] tree, and the `Value` accessors/operators the
//! test suite leans on (`doc["key"]`, `== 1`, `== "text"`,
//! `.as_array()`, `.as_u64()`, `Display`, ...). Object key order is
//! insertion order, matching serde_json's `preserve_order` behavior
//! closely enough for line-oriented assertions.

// Registry dependencies build with --cap-lints allow; as offline
// path stand-ins these crates must opt out of repo-only strict lints
// (the CI indexing_slicing gate targets first-party decode paths).
#![allow(clippy::indexing_slicing)]

use std::fmt;

/// Serialization/deserialization failure: a message plus nothing else.
pub struct Error(String);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) if v.is_finite() => write!(f, "{v}"),
            Number::F(_) => f.write_str("null"),
        }
    }
}

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object member by key, array element by stringified index: `None`
    /// when absent or the wrong shape.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True for any number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True for numbers representable as `u64`.
    pub fn is_u64(&self) -> bool {
        matches!(self, Value::Number(n) if n.as_u64().is_some())
    }

    /// True for booleans.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Borrows the string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the object payload as ordered pairs.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    /// The number as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => {
                        (*other as i128)
                            == match n {
                                Number::U(v) => *v as i128,
                                Number::I(v) => *v as i128,
                                Number::F(_) => return n.as_f64() == *other as f64,
                            }
                    }
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

// --------------------------------------------------------------------
// Parsing: text -> Value.
// --------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writers; map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let number = if is_float {
            Number::F(text.parse().map_err(|_| self.err("invalid number"))?)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I(i)
        } else {
            Number::F(text.parse().map_err(|_| self.err("invalid number"))?)
        };
        Ok(Value::Number(number))
    }
}

fn parse_document(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// --------------------------------------------------------------------
// Deserializer over a parsed Value tree.
// --------------------------------------------------------------------

/// A `serde::Deserializer` positioned on one node of a [`Value`] tree.
#[derive(Clone, Copy)]
pub struct ValueDe<'de>(&'de Value);

impl<'de> ValueDe<'de> {
    fn type_err(self, wanted: &str) -> Error {
        Error(format!("expected {wanted}, found {}", kind_name(self.0)))
    }
}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

impl<'de> serde::Deserializer<'de> for ValueDe<'de> {
    type Error = Error;

    fn read_bool(self) -> Result<bool, Error> {
        self.0.as_bool().ok_or_else(|| self.type_err("boolean"))
    }

    fn read_i64(self) -> Result<i64, Error> {
        self.0.as_i64().ok_or_else(|| self.type_err("integer"))
    }

    fn read_u64(self) -> Result<u64, Error> {
        self.0
            .as_u64()
            .ok_or_else(|| self.type_err("unsigned integer"))
    }

    fn read_f64(self) -> Result<f64, Error> {
        self.0.as_f64().ok_or_else(|| self.type_err("number"))
    }

    fn read_string(self) -> Result<String, Error> {
        self.0
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| self.type_err("string"))
    }

    fn is_null(self) -> bool {
        self.0.is_null()
    }

    fn field(self, key: &'static str) -> Result<Self, Error> {
        match self.0 {
            Value::Object(_) => Ok(ValueDe(self.0.get(key).unwrap_or(&NULL))),
            _ => Err(self.type_err("object")),
        }
    }

    fn elements(self) -> Result<Vec<Self>, Error> {
        self.0
            .as_array()
            .map(|items| items.iter().map(ValueDe).collect())
            .ok_or_else(|| self.type_err("array"))
    }

    fn entries(self) -> Result<Vec<(String, Self)>, Error> {
        self.0
            .as_object()
            .map(|entries| {
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), ValueDe(v)))
                    .collect()
            })
            .ok_or_else(|| self.type_err("object"))
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        if d.is_null() {
            return Ok(Value::Null);
        }
        if let Ok(b) = d.read_bool() {
            return Ok(Value::Bool(b));
        }
        if let Ok(u) = d.read_u64() {
            return Ok(Value::Number(Number::U(u)));
        }
        if let Ok(i) = d.read_i64() {
            return Ok(Value::Number(Number::I(i)));
        }
        if let Ok(f) = d.read_f64() {
            return Ok(Value::Number(Number::F(f)));
        }
        if let Ok(s) = d.read_string() {
            return Ok(Value::String(s));
        }
        if let Ok(items) = d.elements() {
            let items: Result<Vec<Value>, D::Error> =
                items.into_iter().map(Value::deserialize).collect();
            return Ok(Value::Array(items?));
        }
        if let Ok(entries) = d.entries() {
            let entries: Result<Vec<(String, Value)>, D::Error> = entries
                .into_iter()
                .map(|(k, v)| Value::deserialize(v).map(|v| (k, v)))
                .collect();
            return Ok(Value::Object(entries?));
        }
        Err(serde::de::Error::custom("unrecognized value shape"))
    }
}

// --------------------------------------------------------------------
// Serializer: Serialize -> compact JSON text.
// --------------------------------------------------------------------

/// Writes compact JSON into an owned buffer.
pub struct Writer {
    out: String,
}

struct EscapeAdapter<'a>(&'a mut String);

impl fmt::Write for EscapeAdapter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.push_str(s);
        Ok(())
    }
}

impl<'a> serde::Serializer for &'a mut Writer {
    type Ok = ();
    type Error = Error;
    type SerializeStruct = StructWriter<'a>;
    type SerializeSeq = SeqWriter<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if v.is_finite() {
            self.out.push_str(&v.to_string());
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(&mut EscapeAdapter(&mut self.out), v).map_err(|e| Error(e.to_string()))
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: serde::Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<StructWriter<'a>, Error> {
        self.out.push('{');
        Ok(StructWriter {
            writer: self,
            first: true,
        })
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqWriter<'a>, Error> {
        self.out.push('[');
        Ok(SeqWriter {
            writer: self,
            first: true,
        })
    }
}

/// In-progress JSON object, holding the writer borrow until `end`.
pub struct StructWriter<'a> {
    writer: &'a mut Writer,
    first: bool,
}

impl serde::ser::SerializeStruct for StructWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: serde::Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        if !self.first {
            self.writer.out.push(',');
        }
        self.first = false;
        write_escaped(&mut EscapeAdapter(&mut self.writer.out), key)
            .map_err(|e| Error(e.to_string()))?;
        self.writer.out.push(':');
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.writer.out.push('}');
        Ok(())
    }
}

/// In-progress JSON array, holding the writer borrow until `end`.
pub struct SeqWriter<'a> {
    writer: &'a mut Writer,
    first: bool,
}

impl serde::ser::SerializeSeq for SeqWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: serde::Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.writer.out.push(',');
        }
        self.first = false;
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.writer.out.push(']');
        Ok(())
    }
}

// --------------------------------------------------------------------
// Public entry points.
// --------------------------------------------------------------------

/// Serializes `value` to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer { out: String::new() };
    value.serialize(&mut w)?;
    Ok(w.out)
}

/// Parses JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let tree = parse_document(s)?;
    T::deserialize(ValueDe(&tree))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents_and_accessors_work() {
        let doc: Value = from_str(
            r#"{"version":1,"name":"p99 µs","items":[1,2.5,-3],"flag":true,"missing":null}"#,
        )
        .unwrap();
        assert_eq!(doc["version"], 1);
        assert_eq!(doc["name"], "p99 µs");
        assert!(doc["flag"].as_bool().unwrap());
        assert!(doc["missing"].is_null());
        assert!(doc["absent"].is_null());
        let items = doc["items"].as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_i64(), Some(-3));
        assert!(doc["version"].is_u64());
        assert!(doc["name"].is_string());
    }

    #[test]
    fn display_roundtrips_through_the_parser() {
        let src = r#"{"a":[1,{"b":"x\"y"},null],"c":-4.5}"#;
        let doc: Value = from_str(src).unwrap();
        let printed = doc.to_string();
        let again: Value = from_str(&printed).unwrap();
        assert_eq!(doc, again);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn to_string_writes_primitives_strings_and_sequences() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
        assert_eq!(to_string("he\"llo\n").unwrap(), "\"he\\\"llo\\n\"");
        assert_eq!(to_string(&vec![1u64, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(9u8)).unwrap(), "9");
    }

    #[test]
    fn big_u64_values_survive() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
    }
}
