//! Offline stand-in for `serde_derive` (see `shims/README.md`).
//!
//! Derives `Serialize`/`Deserialize` for the one shape the workspace
//! actually derives on: non-generic structs with named fields. The
//! input is parsed directly from the [`proc_macro::TokenStream`]
//! (`syn`/`quote` are unavailable offline), and the generated impl is
//! assembled as a string and re-parsed. Supported field attribute:
//! `#[serde(with = "module")]`, which routes the field through
//! `module::serialize` / `module::deserialize`. Anything else —
//! enums, tuple structs, generics, other serde attributes — is a
//! compile error naming the limitation.

// Registry dependencies build with --cap-lints allow; as offline
// path stand-ins these crates must opt out of repo-only strict lints
// (the CI indexing_slicing gate targets first-party decode paths).
#![allow(clippy::indexing_slicing)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed named field.
struct Field {
    name: String,
    /// Type tokens as text, used to declare `with`-adapter wrappers.
    ty: String,
    /// Module path from `#[serde(with = "...")]`, if present.
    with: Option<String>,
}

/// One parsed enum variant: unit (`Name`) or newtype (`Name(Type)`).
struct Variant {
    name: String,
    /// Payload type for newtype variants.
    payload: Option<String>,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    body: Body,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Parses `struct Name { fields }` out of the derive input, skipping
/// attributes and visibility. Returns `Err(message)` on unsupported
/// shapes.
fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (doc comments arrive as `#[doc = ...]`).
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2;
    }
    // Skip visibility: `pub` or `pub(...)`.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let is_enum = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
            i += 1;
            false
        }
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
            i += 1;
            true
        }
        _ => return Err("serde shim derives support only structs and enums".to_string()),
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        _ => return Err("expected type name".to_string()),
    };
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("serde shim derives do not support generic types".to_string());
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(
                "serde shim derives support only brace-bodied structs and enums".to_string(),
            )
        }
    };
    let body = if is_enum {
        Body::Enum(parse_variants(body)?)
    } else {
        Body::Struct(parse_fields(body)?)
    };
    Ok(Input { name, body })
}

/// Parses enum variants: unit or single-payload (newtype) only.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            _ => return Err("expected variant name".to_string()),
        };
        let payload = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut angle = 0i32;
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            return Err(format!(
                                "serde shim derives do not support tuple variant `{name}`"
                            ))
                        }
                        _ => {}
                    }
                }
                i += 1;
                let ty = inner
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                if ty.is_empty() {
                    return Err(format!("empty payload on variant `{name}`"));
                }
                Some(ty)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde shim derives do not support struct variant `{name}`"
                ))
            }
            _ => None,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err("serde shim derives do not support explicit discriminants".to_string());
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            _ => return Err(format!("expected `,` after variant `{name}`")),
        }
        variants.push(Variant { name, payload });
    }
    Ok(variants)
}

/// Parses the brace-delimited field list.
fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Field attributes: capture `#[serde(...)]`, skip the rest.
        let mut with = None;
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if let Some(w) = parse_serde_with(g.stream())? {
                    with = Some(w);
                }
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            _ => return Err("expected field name".to_string()),
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Type tokens run to the next top-level comma. `<`/`>` do not
        // nest as groups, so track angle depth manually.
        let mut ty = String::new();
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                t => {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        _ => {}
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&t.to_string());
                    i += 1;
                }
            }
        }
        if ty.is_empty() {
            return Err(format!("expected a type for field `{name}`"));
        }
        fields.push(Field { name, ty, with });
    }
    Ok(fields)
}

/// Recognizes the bracket-group contents `serde(with = "module")`.
/// Other serde attributes are rejected so silent misbehavior (e.g. an
/// ignored `rename`) cannot slip in; non-serde attributes yield
/// `None`.
fn parse_serde_with(attr: TokenStream) -> Result<Option<String>, String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(None),
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Err("malformed #[serde(...)] attribute".to_string()),
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    match (inner.first(), inner.get(1), inner.get(2)) {
        (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) if key.to_string() == "with" && eq.as_char() == '=' => {
            let raw = lit.to_string();
            let module = raw.trim_matches('"').to_string();
            if module.is_empty() || module == raw {
                return Err("#[serde(with = ...)] expects a string literal".to_string());
            }
            Ok(Some(module))
        }
        _ => Err("serde shim supports only #[serde(with = \"module\")]".to_string()),
    }
}

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let fields = match &parsed.body {
        Body::Struct(fields) => fields,
        Body::Enum(variants) => return enum_serialize(name, variants),
    };
    let mut body = String::new();
    for f in fields {
        match &f.with {
            None => {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, {key:?}, &self.{field})?;\n",
                    key = f.name,
                    field = f.name,
                ));
            }
            Some(module) => {
                // A local wrapper lets the `with`-module's generic
                // `serialize` fn plug into the field-serializer API.
                body.push_str(&format!(
                    "{{\n\
                     struct __SerdeWith<'__a>(&'__a {ty});\n\
                     impl<'__a> ::serde::Serialize for __SerdeWith<'__a> {{\n\
                     fn serialize<__S2: ::serde::Serializer>(&self, __s2: __S2) -> ::core::result::Result<__S2::Ok, __S2::Error> {{\n\
                     {module}::serialize(self.0, __s2)\n\
                     }}\n\
                     }}\n\
                     ::serde::ser::SerializeStruct::serialize_field(&mut __st, {key:?}, &__SerdeWith(&self.{field}))?;\n\
                     }}\n",
                    ty = f.ty,
                    module = module,
                    key = f.name,
                    field = f.name,
                ));
            }
        }
    }
    let out = format!(
        "const _: () = {{\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         let mut __st = ::serde::Serializer::serialize_struct(__s, {name:?}, {len})?;\n\
         {body}\
         ::serde::ser::SerializeStruct::end(__st)\n\
         }}\n\
         }}\n\
         }};",
        name = name,
        len = fields.len(),
        body = body,
    );
    out.parse().unwrap()
}

/// Serialize impl for enums in serde's external representation: unit
/// variants as `"Name"`, newtype variants as `{"Name": payload}`.
fn enum_serialize(name: &str, variants: &[Variant]) -> TokenStream {
    let mut arms = String::new();
    for v in variants {
        match &v.payload {
            None => arms.push_str(&format!(
                "{name}::{variant} => ::serde::Serializer::serialize_str(__s, {variant:?}),\n",
                name = name,
                variant = v.name,
            )),
            Some(_) => arms.push_str(&format!(
                "{name}::{variant}(__v) => {{\n\
                 let mut __st = ::serde::Serializer::serialize_struct(__s, {name:?}, 1)?;\n\
                 ::serde::ser::SerializeStruct::serialize_field(&mut __st, {variant:?}, __v)?;\n\
                 ::serde::ser::SerializeStruct::end(__st)\n\
                 }}\n",
                name = name,
                variant = v.name,
            )),
        }
    }
    let out = format!(
        "const _: () = {{\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         match self {{\n\
         {arms}\
         }}\n\
         }}\n\
         }}\n\
         }};",
    );
    out.parse().unwrap()
}

/// Deserialize impl matching [`enum_serialize`]'s representation.
fn enum_deserialize(name: &str, variants: &[Variant]) -> TokenStream {
    let mut unit_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        match &v.payload {
            None => unit_arms.push_str(&format!(
                "{variant:?} => return ::core::result::Result::Ok({name}::{variant}),\n",
                name = name,
                variant = v.name,
            )),
            Some(_) => keyed_arms.push_str(&format!(
                "let __node = ::serde::Deserializer::field(__d, {variant:?});\n\
                 if let ::core::result::Result::Ok(__node) = __node {{\n\
                 if !::serde::Deserializer::is_null(__node) {{\n\
                 return ::core::result::Result::Ok({name}::{variant}(::serde::Deserialize::deserialize(__node)?));\n\
                 }}\n\
                 }}\n",
                name = name,
                variant = v.name,
            )),
        }
    }
    let out = format!(
        "const _: () = {{\n\
         impl<'__de> ::serde::Deserialize<'__de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'__de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
         if let ::core::result::Result::Ok(__tag) = ::serde::Deserializer::read_string(__d) {{\n\
         match __tag.as_str() {{\n\
         {unit_arms}\
         _ => {{}}\n\
         }}\n\
         }}\n\
         {keyed_arms}\
         ::core::result::Result::Err(::serde::de::Error::custom(concat!(\"no matching variant of \", {name:?})))\n\
         }}\n\
         }}\n\
         }};",
    );
    out.parse().unwrap()
}

/// Derives `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let fields = match &parsed.body {
        Body::Struct(fields) => fields,
        Body::Enum(variants) => return enum_deserialize(name, variants),
    };
    let mut body = String::new();
    for f in fields {
        match &f.with {
            None => body.push_str(&format!(
                "{field}: ::serde::Deserialize::deserialize(::serde::Deserializer::field(__d, {key:?})?)?,\n",
                field = f.name,
                key = f.name,
            )),
            Some(module) => body.push_str(&format!(
                "{field}: {module}::deserialize(::serde::Deserializer::field(__d, {key:?})?)?,\n",
                field = f.name,
                module = module,
                key = f.name,
            )),
        }
    }
    let out = format!(
        "const _: () = {{\n\
         impl<'__de> ::serde::Deserialize<'__de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'__de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
         ::core::result::Result::Ok({name} {{\n\
         {body}\
         }})\n\
         }}\n\
         }}\n\
         }};",
        name = name,
        body = body,
    );
    out.parse().unwrap()
}
