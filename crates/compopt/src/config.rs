//! Compression configurations — the search space of the optimizer.

use codecs::{Algorithm, Compressor};
use serde::{Deserialize, Serialize};

/// "We first define a compression configuration x as a tuple composed of
/// a compression algorithm, a compression level, and a block size, such
/// as (Zstd, 3, 64KB) or (Zlib, 1, 16KB)." (paper, §V-A)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompressionConfig {
    /// The compression algorithm.
    #[serde(with = "algo_serde")]
    pub algorithm: Algorithm,
    /// The compression level (clamped to the algorithm's range on use).
    pub level: i32,
    /// Compression block granularity; `None` compresses each sample
    /// whole.
    pub block_size: Option<usize>,
}

impl CompressionConfig {
    /// Creates a configuration without block chunking.
    pub fn new(algorithm: Algorithm, level: i32) -> Self {
        Self {
            algorithm,
            level,
            block_size: None,
        }
    }

    /// Builder-style block size override.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = Some(block_size);
        self
    }

    /// Instantiates the configured compressor.
    pub fn compressor(&self) -> Box<dyn Compressor> {
        self.algorithm.compressor(self.level)
    }
}

impl std::fmt::Display for CompressionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.block_size {
            Some(bs) if bs % 1024 == 0 => {
                write!(f, "({}, {}, {}KB)", self.algorithm, self.level, bs / 1024)
            }
            Some(bs) => write!(f, "({}, {}, {}B)", self.algorithm, self.level, bs),
            None => write!(f, "({}, {})", self.algorithm, self.level),
        }
    }
}

mod algo_serde {
    use codecs::Algorithm;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(a: &Algorithm, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(a.name())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Algorithm, D::Error> {
        let s = String::deserialize(d)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let c = CompressionConfig::new(Algorithm::Zstdx, 3).with_block_size(64 * 1024);
        assert_eq!(c.to_string(), "(zstdx, 3, 64KB)");
        let c = CompressionConfig::new(Algorithm::Zlibx, 1);
        assert_eq!(c.to_string(), "(zlibx, 1)");
    }

    #[test]
    fn serde_roundtrip() {
        let c = CompressionConfig::new(Algorithm::Lz4x, 5).with_block_size(4096);
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("lz4x"));
        let back: CompressionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn compressor_instantiation() {
        let c = CompressionConfig::new(Algorithm::Zstdx, 3);
        let comp = c.compressor();
        assert_eq!(comp.name(), "zstdx");
        assert_eq!(comp.level(), 3);
    }
}
