//! Infrastructure cost rates.
//!
//! "We use Amazon EC2/EIA to estimate compute costs and Amazon S3 to
//! estimate storage and network costs." (paper, §V-B). The constants
//! below are the 2023-era public rates; only their *relative* magnitudes
//! matter to the argmin.

use serde::{Deserialize, Serialize};

/// Cost rates in USD for the three resources the model prices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pricing {
    /// USD per CPU-second (EC2 on-demand, per-vCPU).
    pub compute_per_cpu_second: f64,
    /// USD per byte-day of storage (S3 standard).
    pub storage_per_byte_day: f64,
    /// USD per byte transferred (S3 egress).
    pub network_per_byte: f64,
    /// USD per accelerator-second (Elastic Inference), used by CompSim.
    pub accelerator_per_second: f64,
}

impl Pricing {
    /// 2023-era AWS public prices.
    ///
    /// * EC2 c5 on-demand: ~$0.17/h per 4 vCPU → $1.18e-5 per CPU-s.
    /// * S3 standard: $0.023 per GB-month → $7.67e-13 per byte-day.
    /// * S3 egress: $0.09 per GB → $9.0e-11 per byte.
    /// * EIA eia2.medium: ~$0.12/h → $3.33e-5 per accelerator-s.
    pub fn aws_2023() -> Self {
        Self {
            compute_per_cpu_second: 0.17 / 4.0 / 3600.0,
            storage_per_byte_day: 0.023 / (1024.0 * 1024.0 * 1024.0) / 30.0,
            network_per_byte: 0.09 / (1024.0 * 1024.0 * 1024.0),
            accelerator_per_second: 0.12 / 3600.0,
        }
    }
}

impl Pricing {
    /// Flash-backed persistent storage (EBS gp3-class, ~$0.08/GB-month):
    /// the paper notes "the storage cost of a service using Flash as its
    /// persistent store is different from that of a service using Hard
    /// Disk Drive" (§V) — compression pays off faster on flash.
    pub fn aws_2023_flash() -> Self {
        Self {
            storage_per_byte_day: 0.08 / (1024.0 * 1024.0 * 1024.0) / 30.0,
            ..Self::aws_2023()
        }
    }

    /// Cold HDD-backed storage (sc1-class, ~$0.015/GB-month).
    pub fn aws_2023_hdd() -> Self {
        Self {
            storage_per_byte_day: 0.015 / (1024.0 * 1024.0 * 1024.0) / 30.0,
            ..Self::aws_2023()
        }
    }
}

impl Default for Pricing {
    fn default() -> Self {
        Self::aws_2023()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_variants_ordered() {
        let flash = Pricing::aws_2023_flash();
        let hdd = Pricing::aws_2023_hdd();
        assert!(flash.storage_per_byte_day > hdd.storage_per_byte_day);
        assert_eq!(flash.compute_per_cpu_second, hdd.compute_per_cpu_second);
    }

    #[test]
    fn rates_are_positive_and_ordered() {
        let p = Pricing::aws_2023();
        assert!(p.compute_per_cpu_second > 0.0);
        assert!(p.storage_per_byte_day > 0.0);
        assert!(p.network_per_byte > 0.0);
        // Egress per byte costs far more than one day of storing it.
        assert!(p.network_per_byte > 10.0 * p.storage_per_byte_day);
        // Accelerator-seconds cost more than CPU-seconds.
        assert!(p.accelerator_per_second > p.compute_per_cpu_second);
    }
}
