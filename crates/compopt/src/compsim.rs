//! CompSim — the hardware-accelerator modeling interface.
//!
//! "To estimate the (de)compression speed of the target accelerator, the
//! hardware designer can set a multiplication factor γ, which will be
//! multiplied by the measured (de)compression speed. The HW designer can
//! also set the α_compute for their accelerator... CompOpt treats
//! CompSim as another compressor when evaluating different compression
//! configuration candidates." (paper, §V-A)
//!
//! A CompSim candidate wraps a software configuration with:
//!
//! * a restricted match window (`window_log`) — accelerators hold the
//!   window in on-chip SRAM, so its size is THE first-order hardware
//!   cost knob (paper's sensitivity study 3 sweeps it);
//! * a speed multiplier γ applied to measured speeds;
//! * an accelerator `α_compute` used instead of the CPU rate.

use codecs::zstdx::Zstdx;
use codecs::{Algorithm, CompressionMetrics, Compressor};
use serde::{Deserialize, Serialize};

use crate::config::CompressionConfig;

/// A simulated hardware compression accelerator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompSim {
    /// The software configuration the hardware implements.
    pub base: CompressionConfig,
    /// Restricted match window (`1 << window_log` bytes of on-chip
    /// history); `None` keeps the software default.
    pub window_log: Option<u32>,
    /// Speed multiplier γ over the measured software speed.
    pub gamma: f64,
    /// Accelerator compute cost (USD per accelerator-second), replacing
    /// the CPU `α_compute` when pricing this candidate.
    pub alpha_compute: f64,
}

impl CompSim {
    /// Creates a simulated accelerator for `base`.
    pub fn new(base: CompressionConfig, gamma: f64, alpha_compute: f64) -> Self {
        Self {
            base,
            window_log: None,
            gamma,
            alpha_compute,
        }
    }

    /// Builder-style window restriction (study 3's sweep variable).
    pub fn with_window_log(mut self, window_log: u32) -> Self {
        self.window_log = Some(window_log);
        self
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self.window_log {
            Some(w) => format!("hw[{} w=2^{w} γ={}]", self.base, self.gamma),
            None => format!("hw[{} γ={}]", self.base, self.gamma),
        }
    }

    /// Instantiates the (software) compressor whose *ratio* the hardware
    /// reproduces. Window restriction maps onto match parameters; for
    /// non-zstdx bases the restriction is ignored (their windows are
    /// already format-capped).
    pub fn compressor(&self) -> Box<dyn Compressor> {
        match (self.base.algorithm, self.window_log) {
            (Algorithm::Zstdx, Some(w)) => {
                let sw = Zstdx::new(self.base.level);
                let params = (*sw.params()).with_window_log(w);
                Box::new(Zstdx::with_params(self.base.level, params))
            }
            _ => self.base.compressor(),
        }
    }

    /// Applies γ to measured speeds (divides the measured times).
    pub fn scale_metrics(&self, mut m: CompressionMetrics) -> CompressionMetrics {
        assert!(self.gamma > 0.0, "gamma must be positive");
        m.compress_secs /= self.gamma;
        m.decompress_secs /= self.gamma;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CompressionConfig {
        CompressionConfig::new(Algorithm::Zstdx, 1)
    }

    #[test]
    fn gamma_scales_speeds() {
        let sim = CompSim::new(base(), 10.0, 1e-5);
        let m = CompressionMetrics {
            original_bytes: 1_000_000,
            compressed_bytes: 400_000,
            compress_secs: 0.01,
            decompress_secs: 0.004,
            calls: 1,
        };
        let scaled = sim.scale_metrics(m);
        assert!((scaled.compress_mbps() - 10.0 * m.compress_mbps()).abs() < 1e-6);
        assert_eq!(scaled.compressed_bytes, m.compressed_bytes);
    }

    #[test]
    fn window_restriction_reduces_ratio_on_long_range_data() {
        // Data with repetitions ~32 KiB apart: a 2^10 window misses them.
        let unit = corpus::silesia::generate(corpus::silesia::FileClass::Text, 32 * 1024, 5);
        let mut data = unit.clone();
        data.extend_from_slice(&unit);
        let wide = CompSim::new(base(), 10.0, 1e-5).with_window_log(17);
        let narrow = CompSim::new(base(), 10.0, 1e-5).with_window_log(10);
        let rw = {
            let c = wide.compressor();
            c.compress(&data).len()
        };
        let rn = {
            let c = narrow.compressor();
            c.compress(&data).len()
        };
        assert!(
            rw < rn,
            "wide window {rw} should compress tighter than narrow {rn}"
        );
        // Both still round-trip.
        let c = narrow.compressor();
        assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn label_mentions_window_and_gamma() {
        let sim = CompSim::new(base(), 10.0, 1e-5).with_window_log(16);
        assert!(sim.label().contains("w=2^16"));
        assert!(sim.label().contains("γ=10"));
    }
}
