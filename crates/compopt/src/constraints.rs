//! Service requirements gating configuration feasibility.
//!
//! "Some services have specific latency SLOs that can be impacted by
//! compression and decompression speeds" (paper, §V). Study 1 requires a
//! minimum compression speed of 200 MB/s; study 2 a maximum
//! per-block decompression latency of 0.08 ms.

use codecs::CompressionMetrics;
use serde::{Deserialize, Serialize};

/// A feasibility requirement over measured metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Compression throughput must be at least this many MB/s.
    MinCompressionSpeedMbps(f64),
    /// Decompression throughput must be at least this many MB/s.
    MinDecompressionSpeedMbps(f64),
    /// Mean decompression time per call (block) must be at most this
    /// many milliseconds — KVSTORE1's read-latency requirement.
    MaxDecompressionLatencyMs(f64),
    /// Achieved compression ratio must be at least this.
    MinCompressionRatio(f64),
}

impl Constraint {
    /// Whether `m` satisfies this constraint.
    pub fn satisfied(&self, m: &CompressionMetrics) -> bool {
        match *self {
            Constraint::MinCompressionSpeedMbps(v) => m.compress_mbps() >= v,
            Constraint::MinDecompressionSpeedMbps(v) => m.decompress_mbps() >= v,
            Constraint::MaxDecompressionLatencyMs(v) => m.decompress_secs_per_call() * 1e3 <= v,
            Constraint::MinCompressionRatio(v) => m.ratio() >= v,
        }
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Constraint::MinCompressionSpeedMbps(v) => write!(f, "comp speed >= {v} MB/s"),
            Constraint::MinDecompressionSpeedMbps(v) => write!(f, "decomp speed >= {v} MB/s"),
            Constraint::MaxDecompressionLatencyMs(v) => write!(f, "decomp latency <= {v} ms"),
            Constraint::MinCompressionRatio(v) => write!(f, "ratio >= {v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> CompressionMetrics {
        CompressionMetrics {
            original_bytes: 100_000_000,
            compressed_bytes: 25_000_000,
            compress_secs: 0.5,   // 200 MB/s
            decompress_secs: 0.1, // 1000 MB/s
            calls: 1000,          // 0.1 ms/call
        }
    }

    #[test]
    fn speed_constraints() {
        let m = metrics();
        assert!(Constraint::MinCompressionSpeedMbps(200.0).satisfied(&m));
        assert!(!Constraint::MinCompressionSpeedMbps(200.1).satisfied(&m));
        assert!(Constraint::MinDecompressionSpeedMbps(999.0).satisfied(&m));
    }

    #[test]
    fn latency_constraint() {
        let m = metrics();
        assert!(Constraint::MaxDecompressionLatencyMs(0.11).satisfied(&m));
        assert!(!Constraint::MaxDecompressionLatencyMs(0.08).satisfied(&m));
    }

    #[test]
    fn ratio_constraint() {
        let m = metrics();
        assert!(Constraint::MinCompressionRatio(4.0).satisfied(&m));
        assert!(!Constraint::MinCompressionRatio(4.1).satisfied(&m));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            Constraint::MinCompressionSpeedMbps(200.0).to_string(),
            "comp speed >= 200 MB/s"
        );
    }
}
