//! Compression auto-tuning — the paper's §VI-C research direction.
//!
//! "Service characteristics often change over time. Hence, the optimal
//! compression configuration is expected to change over time as it
//! depends on data characteristics... The autotuners should be
//! cost/SLO-aware instead of just focusing on naive compression
//! metrics."
//!
//! [`AutoTuner`] wraps the CompOpt pipeline into a periodic re-tuning
//! loop: feed it fresh traffic samples each round; it re-measures its
//! candidate space, re-runs the cost model under the service's
//! constraints, and switches configurations only when the improvement
//! clears a hysteresis threshold (so measurement noise cannot flap the
//! fleet between configs).

use serde::Serialize;

use crate::config::CompressionConfig;
use crate::constraints::Constraint;
use crate::engine::CompEngine;
use crate::model::{CostParams, CostWeights};
use crate::optimize::{evaluate_all, optimum, Evaluation};

/// One re-tuning round's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct TuneEvent {
    /// Round counter (0-based).
    pub round: usize,
    /// Configuration selected after this round.
    pub selected: String,
    /// Its weighted total cost on this round's samples.
    pub total_cost: f64,
    /// Whether this round changed the active configuration.
    pub switched: bool,
}

/// A cost/SLO-aware configuration auto-tuner.
pub struct AutoTuner {
    configs: Vec<CompressionConfig>,
    params: CostParams,
    weights: CostWeights,
    constraints: Vec<Constraint>,
    /// Relative cost improvement required to switch away from the
    /// current configuration.
    hysteresis: f64,
    current: Option<Evaluation>,
    history: Vec<TuneEvent>,
}

impl AutoTuner {
    /// Creates a tuner over a candidate space.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<CompressionConfig>, params: CostParams, weights: CostWeights) -> Self {
        assert!(!configs.is_empty(), "autotuner needs candidates");
        Self {
            configs,
            params,
            weights,
            constraints: Vec::new(),
            hysteresis: 0.05,
            current: None,
            history: Vec::new(),
        }
    }

    /// Adds service SLO constraints.
    pub fn with_constraints(mut self, constraints: Vec<Constraint>) -> Self {
        self.constraints = constraints;
        self
    }

    /// Overrides the switch hysteresis (default 5%).
    pub fn with_hysteresis(mut self, hysteresis: f64) -> Self {
        self.hysteresis = hysteresis.max(0.0);
        self
    }

    /// The currently selected configuration, if any round has run.
    pub fn current(&self) -> Option<&Evaluation> {
        self.current.as_ref()
    }

    /// All re-tuning rounds so far.
    pub fn history(&self) -> &[TuneEvent] {
        &self.history
    }

    /// Runs one re-tuning round on fresh traffic samples. Returns the
    /// active evaluation afterwards (`None` if no candidate is
    /// feasible this round; the previous config is kept in that case).
    pub fn retune(&mut self, samples: &[&[u8]]) -> Option<&Evaluation> {
        let mut engine = CompEngine::new();
        for c in &self.configs {
            engine.add_config(*c);
        }
        let measured = engine.measure(samples);
        let evals = evaluate_all(&measured, &self.params, self.weights, &self.constraints);
        let round = self.history.len();

        let best = match optimum(&evals) {
            Some(b) => b.clone(),
            None => {
                // Nothing feasible: keep flying on the old config.
                if let Some(cur) = &self.current {
                    self.history.push(TuneEvent {
                        round,
                        selected: cur.label.clone(),
                        total_cost: cur.total_cost,
                        switched: false,
                    });
                }
                return self.current.as_ref();
            }
        };

        let switched = match &self.current {
            None => true,
            Some(cur) if cur.label == best.label => false,
            Some(cur) => {
                // Compare on THIS round's measurements: find the current
                // config's fresh cost and require a clear win.
                let cur_fresh = evals
                    .iter()
                    .find(|e| e.label == cur.label)
                    .map(|e| e.total_cost)
                    .unwrap_or(f64::INFINITY);
                best.total_cost < cur_fresh * (1.0 - self.hysteresis)
            }
        };

        if switched {
            self.current = Some(best);
        } else if let Some(cur) = &mut self.current {
            // Refresh the kept config's numbers from this round.
            if let Some(fresh) = evals.iter().find(|e| e.label == cur.label) {
                *cur = fresh.clone();
            }
        }
        let active = self
            .current
            .as_ref()
            .expect("some config is active after a feasible round");
        self.history.push(TuneEvent {
            round,
            selected: active.label.clone(),
            total_cost: active.total_cost,
            switched,
        });
        self.current.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Pricing;
    use codecs::Algorithm;

    fn tuner() -> AutoTuner {
        let configs = vec![
            CompressionConfig::new(Algorithm::Zstdx, 1),
            CompressionConfig::new(Algorithm::Zstdx, 6),
            CompressionConfig::new(Algorithm::Lz4x, 1),
        ];
        // Byte-priced objective so debug-build compute noise cannot
        // dominate the tests.
        let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 60.0);
        let weights = CostWeights {
            compute: 0.0,
            storage: 1.0,
            network: 1.0,
        };
        AutoTuner::new(configs, params, weights)
    }

    fn text_samples() -> Vec<Vec<u8>> {
        (0..3)
            .map(|i| corpus::silesia::generate(corpus::silesia::FileClass::Log, 16 << 10, i))
            .collect()
    }

    fn binary_samples() -> Vec<Vec<u8>> {
        (0..3)
            .map(|i| corpus::silesia::generate(corpus::silesia::FileClass::Binary, 16 << 10, i))
            .collect()
    }

    #[test]
    fn first_round_selects_something() {
        let mut t = tuner();
        let s = text_samples();
        let refs: Vec<&[u8]> = s.iter().map(|v| v.as_slice()).collect();
        let e = t.retune(&refs).expect("feasible");
        assert!(
            e.label.contains("zstdx"),
            "byte-priced text optimum: {}",
            e.label
        );
        assert_eq!(t.history().len(), 1);
        assert!(t.history()[0].switched);
    }

    #[test]
    fn stable_workload_does_not_flap() {
        let mut t = tuner();
        let s = text_samples();
        let refs: Vec<&[u8]> = s.iter().map(|v| v.as_slice()).collect();
        t.retune(&refs);
        let first = t.current().unwrap().label.clone();
        for _ in 0..3 {
            t.retune(&refs);
        }
        assert_eq!(t.current().unwrap().label, first);
        assert!(
            t.history()[1..].iter().all(|e| !e.switched),
            "{:?}",
            t.history()
        );
    }

    #[test]
    fn drift_can_switch_configuration() {
        // Move from compressible logs to incompressible binary: with
        // bytes priced, ratios collapse toward 1 for every candidate;
        // the tuner must keep functioning and keep a feasible config.
        let mut t = tuner().with_hysteresis(0.01);
        let s1 = text_samples();
        let refs1: Vec<&[u8]> = s1.iter().map(|v| v.as_slice()).collect();
        t.retune(&refs1);
        let s2 = binary_samples();
        let refs2: Vec<&[u8]> = s2.iter().map(|v| v.as_slice()).collect();
        let e = t.retune(&refs2).expect("still feasible");
        assert!(e.ratio < 1.2, "binary data barely compresses: {}", e.ratio);
        assert_eq!(t.history().len(), 2);
    }

    #[test]
    fn infeasible_round_keeps_previous_config() {
        let mut t = tuner();
        let s = text_samples();
        let refs: Vec<&[u8]> = s.iter().map(|v| v.as_slice()).collect();
        t.retune(&refs);
        let before = t.current().unwrap().label.clone();
        // Impossible SLO from now on.
        t.constraints = vec![Constraint::MinCompressionRatio(1e12)];
        t.retune(&refs);
        assert_eq!(t.current().unwrap().label, before);
    }

    #[test]
    #[should_panic(expected = "autotuner needs candidates")]
    fn empty_space_panics() {
        let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 1.0);
        let _ = AutoTuner::new(vec![], params, CostWeights::ALL);
    }
}
