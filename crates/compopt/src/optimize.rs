//! Configuration search — Equation (4) and its extensions.
//!
//! "The goal of CompOpt is to find the optimal compression configuration
//! x_opt, which minimizes the overall cost... With more compression
//! parameters in the compression configuration, one might need to adopt
//! efficient search methods based on random sampling, gradient-descent,
//! or genetic algorithm, but the exhaustive search is sufficient for our
//! study." (paper, §V-A). [`evaluate_all`] + [`optimum`] are the
//! exhaustive path; [`random_search`] and [`hill_climb`] implement the
//! suggested extensions for larger spaces.

use serde::Serialize;

use crate::constraints::Constraint;
use crate::engine::Measured;
use crate::model::{CostParams, CostWeights, Costs};

/// One fully evaluated candidate.
#[derive(Debug, Clone, Serialize)]
pub struct Evaluation {
    /// Candidate label (config string or CompSim label).
    pub label: String,
    /// Compression ratio achieved.
    pub ratio: f64,
    /// Compression speed, MB/s.
    pub compress_mbps: f64,
    /// Decompression speed, MB/s.
    pub decompress_mbps: f64,
    /// Mean decompression milliseconds per call (block).
    pub decompress_ms_per_call: f64,
    /// Cost breakdown (Equations 1–3).
    pub costs: Costs,
    /// Weighted objective (Equation 4).
    pub total_cost: f64,
    /// Whether every constraint is satisfied.
    pub feasible: bool,
    /// The first violated constraint when infeasible (human-readable),
    /// `None` when feasible. This is the "why was this candidate
    /// rejected" half of decision explainability.
    pub pruned_by: Option<String>,
}

/// Evaluates every measured candidate under the cost model, weights,
/// and constraints; returns evaluations sorted by total cost ascending.
///
/// Every candidate additionally emits a [`decision`
/// event](telemetry::trace::Decision) on the calling thread's trace
/// track carrying its Eq. 1–3 cost terms, the Eq. 4 total, and whether
/// it won the argmin or was pruned by a constraint — so a Perfetto
/// trace of an optimization run explains the choice, not just the
/// outcome.
pub fn evaluate_all(
    measured: &[Measured],
    params: &CostParams,
    weights: CostWeights,
    constraints: &[Constraint],
) -> Vec<Evaluation> {
    let mut evals: Vec<Evaluation> = measured
        .iter()
        .map(|m| {
            // Simulated accelerators price compute at their own rate.
            let p = match m.alpha_compute_override {
                Some(alpha) => params.with_alpha_compute(alpha),
                None => *params,
            };
            let costs = Costs::from_metrics(&m.metrics, &p);
            let pruned_by = constraints
                .iter()
                .find(|c| !c.satisfied(&m.metrics))
                .map(|c| c.to_string());
            Evaluation {
                label: m.label.clone(),
                ratio: m.metrics.ratio(),
                compress_mbps: m.metrics.compress_mbps(),
                decompress_mbps: m.metrics.decompress_mbps(),
                decompress_ms_per_call: m.metrics.decompress_secs_per_call() * 1e3,
                costs,
                total_cost: costs.weighted_total(&weights),
                feasible: pruned_by.is_none(),
                pruned_by,
            }
        })
        .collect();
    evals.sort_by(|a, b| a.total_cost.total_cmp(&b.total_cost));
    let winner = evals.iter().position(|e| e.feasible);
    for (i, e) in evals.iter().enumerate() {
        telemetry::trace::decision(telemetry::Decision {
            label: e.label.as_str().into(),
            compute: e.costs.compute,
            storage: e.costs.storage,
            network: e.costs.network,
            total: e.total_cost,
            feasible: e.feasible,
            won: Some(i) == winner,
            pruned_by: e.pruned_by.as_deref().unwrap_or("").into(),
        });
    }
    evals
}

/// The cheapest feasible evaluation (Equation 4's argmin under
/// constraints). `None` when nothing is feasible.
pub fn optimum(evals: &[Evaluation]) -> Option<&Evaluation> {
    evals.iter().find(|e| e.feasible)
}

/// Pareto front over (ratio, compression speed): candidates no other
/// candidate dominates on both axes. Sorted by descending speed.
pub fn pareto_front(measured: &[Measured]) -> Vec<&Measured> {
    let mut by_speed: Vec<&Measured> = measured.iter().collect();
    by_speed.sort_by(|a, b| {
        b.metrics
            .compress_mbps()
            .total_cmp(&a.metrics.compress_mbps())
    });
    let mut front = Vec::new();
    let mut best_ratio = f64::NEG_INFINITY;
    for m in by_speed {
        if m.metrics.ratio() > best_ratio {
            best_ratio = m.metrics.ratio();
            front.push(m);
        }
    }
    front
}

/// Random-sampling search: evaluates `k` uniformly chosen candidates
/// and returns the best feasible one. A cheap stand-in for exhaustive
/// search on large spaces.
pub fn random_search(evals: &[Evaluation], k: usize, seed: u64) -> Option<&Evaluation> {
    if evals.is_empty() || k == 0 {
        return None;
    }
    // Deterministic LCG so results are reproducible without rand.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut best: Option<&Evaluation> = None;
    for _ in 0..k {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (state >> 33) as usize % evals.len();
        let e = &evals[idx];
        if !e.feasible {
            continue;
        }
        if best.is_none_or(|b| e.total_cost < b.total_cost) {
            best = Some(e);
        }
    }
    best
}

/// Hill climbing over the evaluation list treated as a 1-D neighborhood
/// (candidates must be inserted in parameter order, e.g. by level).
/// Starts at `start` and moves to the cheaper feasible neighbor until a
/// local optimum is reached.
pub fn hill_climb(evals_in_param_order: &[Evaluation], start: usize) -> Option<&Evaluation> {
    if evals_in_param_order.is_empty() {
        return None;
    }
    let cost = |i: usize| {
        let e = &evals_in_param_order[i];
        if e.feasible {
            e.total_cost
        } else {
            f64::INFINITY
        }
    };
    let mut i = start.min(evals_in_param_order.len() - 1);
    loop {
        let mut next = i;
        if i > 0 && cost(i - 1) < cost(next) {
            next = i - 1;
        }
        if i + 1 < evals_in_param_order.len() && cost(i + 1) < cost(next) {
            next = i + 1;
        }
        if next == i {
            break;
        }
        i = next;
    }
    evals_in_param_order[i]
        .feasible
        .then(|| &evals_in_param_order[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CompEngine;
    use crate::pricing::Pricing;
    use codecs::Algorithm;

    fn evaluations(constraints: &[Constraint]) -> Vec<Evaluation> {
        let samples: Vec<Vec<u8>> = (0..2)
            .map(|i| corpus::silesia::generate(corpus::silesia::FileClass::Log, 16 * 1024, i))
            .collect();
        let refs: Vec<&[u8]> = samples.iter().map(|v| v.as_slice()).collect();
        let mut e = CompEngine::new();
        e.add_levels(Algorithm::Zstdx, [1, 3, 6]);
        e.add_levels(Algorithm::Lz4x, [1, 6]);
        let measured = e.measure(&refs);
        let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 30.0);
        evaluate_all(&measured, &params, CostWeights::ALL, constraints)
    }

    #[test]
    fn evaluations_sorted_by_cost() {
        let evals = evaluations(&[]);
        assert_eq!(evals.len(), 5);
        for w in evals.windows(2) {
            assert!(w[0].total_cost <= w[1].total_cost);
        }
        assert!(optimum(&evals).is_some());
    }

    #[test]
    fn infeasible_constraint_yields_none() {
        let evals = evaluations(&[Constraint::MinCompressionRatio(1e9)]);
        assert!(evals.iter().all(|e| !e.feasible));
        assert_eq!(optimum(&evals).map(|e| e.label.as_str()), None);
    }

    #[test]
    fn constraints_shift_the_optimum() {
        let unconstrained = evaluations(&[]);
        let best_any = optimum(&unconstrained).unwrap().label.clone();
        // Force a very high ratio: only stronger configs qualify.
        let min_ratio = unconstrained.iter().map(|e| e.ratio).fold(0.0, f64::max) - 1e-9;
        let constrained = evaluations(&[Constraint::MinCompressionRatio(min_ratio)]);
        let best_hi = optimum(&constrained).unwrap();
        assert!(best_hi.ratio >= min_ratio);
        // The unconstrained winner is (almost certainly) a cheaper,
        // lower-ratio config; at minimum the constrained winner differs
        // or equals the max-ratio config.
        let _ = best_any;
    }

    #[test]
    fn evaluation_emits_decision_events_with_cost_terms() {
        // The only test in this binary that drains the global tracer.
        let tid = telemetry::trace::current_track().tid();
        let min_mbps = 1e9; // impossible: every candidate gets pruned
        let evals = evaluations(&[Constraint::MinCompressionSpeedMbps(min_mbps)]);
        let snap = telemetry::global_tracer().drain();
        let track = snap
            .tracks
            .iter()
            .find(|t| t.tid == tid)
            .expect("this thread's track was drained");
        let decisions: Vec<&telemetry::Decision> = track
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                telemetry::trace::EventKind::Decision(d) => Some(d),
                _ => None,
            })
            .collect();
        assert!(decisions.len() >= evals.len(), "one decision per candidate");
        for d in &decisions {
            assert!(
                (d.compute + d.storage + d.network - d.total).abs() <= d.total.abs() * 1e-9,
                "cost terms of {} do not sum under ALL weights",
                d.label
            );
        }
        // Everything was pruned: no winner, and each decision says why.
        let recent = &decisions[decisions.len() - evals.len()..];
        assert!(recent.iter().all(|d| !d.won && !d.feasible));
        assert!(recent.iter().all(|d| !d.pruned_by.is_empty()));
        assert!(evals
            .iter()
            .all(|e| e.pruned_by.as_deref().is_some_and(|p| !p.is_empty())));
    }

    #[test]
    fn pareto_front_is_monotone() {
        let samples: Vec<Vec<u8>> = (0..2)
            .map(|i| corpus::silesia::generate(corpus::silesia::FileClass::Xml, 16 * 1024, i))
            .collect();
        let refs: Vec<&[u8]> = samples.iter().map(|v| v.as_slice()).collect();
        let mut e = CompEngine::new();
        e.add_levels(Algorithm::Zstdx, [1, 3, 6, 9]);
        let measured = e.measure(&refs);
        let front = pareto_front(&measured);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].metrics.compress_mbps() >= w[1].metrics.compress_mbps());
            assert!(w[0].metrics.ratio() <= w[1].metrics.ratio());
        }
    }

    #[test]
    fn random_search_finds_good_candidate() {
        let evals = evaluations(&[]);
        let exhaustive = optimum(&evals).unwrap().total_cost;
        // Sampling the whole space repeatedly must find the optimum.
        let found = random_search(&evals, 64, 9).unwrap().total_cost;
        assert!((found - exhaustive).abs() <= f64::EPSILON.max(exhaustive * 1e-12));
    }

    #[test]
    fn hill_climb_reaches_local_optimum() {
        let evals = evaluations(&[]);
        // Re-sort by label to get a stable "parameter order".
        let mut ordered = evals.clone();
        ordered.sort_by(|a, b| a.label.cmp(&b.label));
        let best = hill_climb(&ordered, 0).unwrap();
        let i = ordered.iter().position(|e| e.label == best.label).unwrap();
        if i > 0 {
            assert!(ordered[i - 1].total_cost >= best.total_cost);
        }
        if i + 1 < ordered.len() {
            assert!(ordered[i + 1].total_cost >= best.total_cost);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(optimum(&[]).is_none());
        assert!(random_search(&[], 10, 1).is_none());
        assert!(hill_climb(&[], 0).is_none());
        assert!(pareto_front(&[]).is_empty());
    }
}

/// Genetic-algorithm search over a *structured* configuration space —
/// the third search method the paper names for larger spaces ("random
/// sampling, gradient-descent, or genetic algorithm", §V-A).
///
/// Individuals are indices into axis value lists (algorithm × level ×
/// block size); fitness is the weighted cost, with infeasible
/// individuals heavily penalized. The evaluator is a callback so tests
/// can drive it with a synthetic landscape and real users with a
/// measure-and-price closure.
pub mod genetic {
    use codecs::Algorithm;

    use crate::config::CompressionConfig;

    /// The discrete search space: one value list per axis.
    #[derive(Debug, Clone)]
    pub struct Space {
        /// Candidate algorithms.
        pub algorithms: Vec<Algorithm>,
        /// Candidate levels (clamped per algorithm on use).
        pub levels: Vec<i32>,
        /// Candidate block sizes (`None` = whole-sample).
        pub block_sizes: Vec<Option<usize>>,
    }

    impl Space {
        /// Number of points in the space.
        pub fn len(&self) -> usize {
            self.algorithms.len() * self.levels.len() * self.block_sizes.len()
        }

        /// True when any axis is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        fn config(&self, genome: [usize; 3]) -> CompressionConfig {
            let mut c = CompressionConfig::new(
                self.algorithms[genome[0] % self.algorithms.len()],
                self.levels[genome[1] % self.levels.len()],
            );
            if let Some(bs) = self.block_sizes[genome[2] % self.block_sizes.len()] {
                c = c.with_block_size(bs);
            }
            c
        }
    }

    /// GA hyper-parameters.
    #[derive(Debug, Clone, Copy)]
    pub struct GaParams {
        /// Individuals per generation.
        pub population: usize,
        /// Generations to run.
        pub generations: usize,
        /// Per-gene mutation probability (0..1).
        pub mutation_rate: f64,
        /// RNG seed (deterministic runs).
        pub seed: u64,
    }

    impl Default for GaParams {
        fn default() -> Self {
            Self {
                population: 12,
                generations: 10,
                mutation_rate: 0.2,
                seed: 7,
            }
        }
    }

    /// Runs the GA; `fitness` maps a configuration to a cost (lower is
    /// better; return `f64::INFINITY` for infeasible configs).
    /// Returns the best configuration and its cost.
    ///
    /// # Panics
    ///
    /// Panics if the space or population is empty.
    pub fn search(
        space: &Space,
        params: &GaParams,
        mut fitness: impl FnMut(&CompressionConfig) -> f64,
    ) -> (CompressionConfig, f64) {
        assert!(!space.is_empty(), "empty search space");
        assert!(params.population >= 2, "population too small");

        // Small deterministic xorshift RNG: the GA needs reproducibility
        // more than statistical quality.
        let mut state = params.seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let axes = [
            space.algorithms.len(),
            space.levels.len(),
            space.block_sizes.len(),
        ];

        let mut population: Vec<[usize; 3]> = (0..params.population)
            .map(|_| [0, 1, 2].map(|a| next() as usize % axes[a]))
            .collect();
        let mut best: Option<([usize; 3], f64)> = None;
        // Memoize: fitness evaluations are expensive (real measurements).
        let mut cache: std::collections::HashMap<[usize; 3], f64> = Default::default();

        for _ in 0..params.generations {
            let mut scored: Vec<([usize; 3], f64)> = population
                .iter()
                .map(|&g| {
                    let cost = *cache.entry(g).or_insert_with(|| fitness(&space.config(g)));
                    (g, cost)
                })
                .collect();
            scored.sort_by(|a, b| a.1.total_cmp(&b.1));
            if best.is_none() || scored[0].1 < best.expect("set").1 {
                best = Some(scored[0]);
            }
            // Elitist reproduction: top half survives, children from
            // uniform crossover + mutation fill the rest.
            let survivors = params.population / 2;
            let parents: Vec<[usize; 3]> =
                scored[..survivors.max(2)].iter().map(|&(g, _)| g).collect();
            population = parents.clone();
            while population.len() < params.population {
                let a = parents[next() as usize % parents.len()];
                let b = parents[next() as usize % parents.len()];
                let mut child = [0usize; 3];
                for (i, c) in child.iter_mut().enumerate() {
                    *c = if next() % 2 == 0 { a[i] } else { b[i] };
                    if (next() % 1000) as f64 / 1000.0 < params.mutation_rate {
                        *c = next() as usize % axes[i];
                    }
                }
                population.push(child);
            }
        }
        let (genome, cost) = best.expect("at least one generation ran");
        (space.config(genome), cost)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn space() -> Space {
            Space {
                algorithms: vec![Algorithm::Zstdx, Algorithm::Lz4x, Algorithm::Zlibx],
                levels: vec![-1, 1, 3, 5, 7, 9],
                block_sizes: vec![None, Some(4 << 10), Some(16 << 10), Some(64 << 10)],
            }
        }

        #[test]
        fn finds_global_optimum_of_synthetic_landscape() {
            // Fitness with a unique known minimum at (zstdx, 5, 16K).
            let target = CompressionConfig::new(Algorithm::Zstdx, 5).with_block_size(16 << 10);
            let fit = |c: &CompressionConfig| {
                let mut d = 0.0;
                if c.algorithm != target.algorithm {
                    d += 10.0;
                }
                d += (c.level - target.level).abs() as f64;
                d += match (c.block_size, target.block_size) {
                    (Some(a), Some(b)) => (a as f64).log2().abs() - (b as f64).log2().abs(),
                    (None, Some(_)) | (Some(_), None) => 5.0,
                    (None, None) => 0.0,
                }
                .abs();
                d
            };
            let (best, cost) = search(
                &space(),
                &GaParams {
                    population: 16,
                    generations: 25,
                    ..Default::default()
                },
                fit,
            );
            assert_eq!(best, target, "cost {cost}");
            assert_eq!(cost, 0.0);
        }

        #[test]
        fn deterministic_for_a_seed() {
            let fit = |c: &CompressionConfig| c.level.abs() as f64;
            let a = search(&space(), &GaParams::default(), fit);
            let b = search(&space(), &GaParams::default(), fit);
            assert_eq!(a.0, b.0);
        }

        #[test]
        fn penalized_configs_are_avoided() {
            // Everything infeasible except lz4x.
            let fit = |c: &CompressionConfig| {
                if c.algorithm == Algorithm::Lz4x {
                    c.level as f64
                } else {
                    f64::INFINITY
                }
            };
            let (best, cost) = search(&space(), &GaParams::default(), fit);
            assert_eq!(best.algorithm, Algorithm::Lz4x);
            assert!(cost.is_finite());
        }

        #[test]
        #[should_panic(expected = "empty search space")]
        fn empty_space_panics() {
            let s = Space {
                algorithms: vec![],
                levels: vec![1],
                block_sizes: vec![None],
            };
            let _ = search(&s, &GaParams::default(), |_| 0.0);
        }
    }
}
