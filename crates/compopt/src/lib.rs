//! **CompOpt** — the paper's contribution: a first-order compression
//! optimizer that "quantifies the costs of integrating compression and
//! associated system design choices" (paper, §V).
//!
//! The pipeline mirrors Figure 14:
//!
//! ```text
//!  sample data ─┐
//!               ├─> CompEngine ──> compression metrics ──> cost model ──> x_opt
//!  costs/reqs ──┘      │  (ratio, comp/decomp speed)       (Eq. 1-4)
//!                      └── candidates: algorithm × level × block size
//!                          (+ CompSim simulated accelerators)
//! ```
//!
//! * [`config`] — [`CompressionConfig`]: the tuple *(algorithm, level,
//!   block size)* the paper optimizes over.
//! * [`engine`] — [`CompEngine`]: enumerates candidate configurations and
//!   measures them on user-supplied sample data.
//! * [`model`] — the analytical cost model, Equations (1)–(4) verbatim.
//! * [`pricing`] — AWS EC2/EIA/S3-derived cost rates (the paper's §V-B
//!   cost sources).
//! * [`constraints`] — service requirements (minimum compression speed,
//!   maximum decompression latency) that gate feasibility.
//! * [`optimize`] — exhaustive argmin (Eq. 4), plus the random-search and
//!   hill-climbing extensions the paper mentions for larger spaces.
//! * [`compsim`] — [`CompSim`]: the hardware-accelerator modeling
//!   interface (speed multiplier γ, accelerator α_compute, restricted
//!   match window).
//! * [`studies`] — the three sensitivity studies of §V-B as reusable
//!   functions.
//!
//! # Example
//!
//! ```
//! use compopt::prelude::*;
//!
//! let samples: Vec<Vec<u8>> = (0..4)
//!     .map(|i| corpus::silesia::generate(corpus::silesia::FileClass::Log, 16 * 1024, i))
//!     .collect();
//! let refs: Vec<&[u8]> = samples.iter().map(|v| v.as_slice()).collect();
//!
//! let mut engine = CompEngine::new();
//! engine.add_levels(codecs::Algorithm::Zstdx, [1, 3]);
//! let measured = engine.measure(&refs);
//!
//! let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 30.0);
//! let evals = evaluate_all(&measured, &params, CostWeights::ALL, &[]);
//! let best = optimum(&evals).expect("a feasible candidate exists");
//! assert!(best.total_cost.is_finite());
//! ```

#![warn(missing_docs)]

pub mod autotune;
pub mod compsim;
pub mod config;
pub mod constraints;
pub mod engine;
pub mod model;
pub mod optimize;
pub mod pricing;
pub mod report;
pub mod studies;

/// Common imports for CompOpt users.
pub mod prelude {
    pub use crate::autotune::AutoTuner;
    pub use crate::compsim::CompSim;
    pub use crate::config::CompressionConfig;
    pub use crate::constraints::Constraint;
    pub use crate::engine::{CompEngine, Measured};
    pub use crate::model::{CostParams, CostWeights, Costs};
    pub use crate::optimize::{evaluate_all, optimum, pareto_front, Evaluation};
    pub use crate::pricing::Pricing;
}
