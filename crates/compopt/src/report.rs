//! Machine-readable experiment output.
//!
//! The figure harnesses print human-readable tables *and* emit JSON
//! lines so `EXPERIMENTS.md` can be regenerated from artifacts.

use serde::Serialize;

/// Serializes rows as JSON lines (one object per line).
///
/// # Panics
///
/// Panics if a row fails to serialize (all row types are plain data).
pub fn to_json_lines<T: Serialize>(rows: &[T]) -> String {
    rows.iter()
        .map(|r| serde_json::to_string(r).expect("rows are plain serializable data"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Formats a float column with sensible width for table output.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        name: &'static str,
        value: f64,
    }

    #[test]
    fn json_lines_one_per_row() {
        let rows = vec![
            Row {
                name: "a",
                value: 1.0,
            },
            Row {
                name: "b",
                value: 2.0,
            },
        ];
        let s = to_json_lines(&rows);
        assert_eq!(s.lines().count(), 2);
        assert!(s.lines().next().unwrap().contains("\"a\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(123.456), "123");
        assert_eq!(fmt_f(12.345), "12.35");
        assert_eq!(fmt_f(0.01234), "0.0123");
    }
}
