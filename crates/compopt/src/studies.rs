//! The paper's three sensitivity studies (§V-B), as reusable functions.
//!
//! * [`study1_ads1`] — ADS1 minimizes compute + network under a minimum
//!   compression-speed SLO; the paper finds Zstd level-4 optimal, ~73%
//!   below the worst configuration (LZ4 level 10). (Figure 15a)
//! * [`study2_kvstore`] — KVSTORE1 minimizes compute + storage over
//!   block sizes 4–64 KiB under a 0.08 ms decompression-latency SLO; the
//!   paper finds Zstd-1/64 KiB best unconstrained and Zstd-1/16 KiB best
//!   under the SLO. (Figure 15b)
//! * [`study3_window_sweep`] — sweeps a simulated accelerator's match
//!   window (CompSim, γ=10, EIA compute pricing); the paper sees cost
//!   plateaus at window ≈ 2²¹ B for ADS1 and ≈ 2¹⁶ B for KVSTORE1.
//!   (Figure 16)

use codecs::Algorithm;
use serde::Serialize;

use crate::compsim::CompSim;
use crate::config::CompressionConfig;
use crate::constraints::Constraint;
use crate::engine::CompEngine;
use crate::model::{CostParams, CostWeights};
use crate::optimize::{evaluate_all, optimum, Evaluation};
use crate::pricing::Pricing;

/// Workload scale knobs so tests can run the studies cheaply.
#[derive(Debug, Clone, Copy)]
pub struct StudyScale {
    /// Inference requests per ADS1 model.
    pub ads_requests: usize,
    /// Total SST bytes for KVSTORE1.
    pub sst_bytes: usize,
    /// Truncate each ADS sample to this many bytes (tests); `None`
    /// keeps whole requests.
    pub max_sample_bytes: Option<usize>,
    /// Random seed for workload generation.
    pub seed: u64,
}

impl StudyScale {
    /// Full scale, as used by the benchmark harness.
    pub fn full() -> Self {
        Self {
            ads_requests: 2,
            sst_bytes: 4 << 20,
            max_sample_bytes: None,
            seed: 2023,
        }
    }

    /// Reduced scale for unit tests.
    pub fn quick() -> Self {
        Self {
            ads_requests: 1,
            sst_bytes: 256 << 10,
            max_sample_bytes: Some(384 << 10),
            seed: 2023,
        }
    }
}

/// Output of studies 1 and 2: ranked evaluations plus winner summaries.
#[derive(Debug, Clone, Serialize)]
pub struct StudyResult {
    /// All evaluations, sorted by total cost ascending.
    pub rows: Vec<Evaluation>,
    /// Cheapest feasible configuration.
    pub best: Option<String>,
    /// Cheapest configuration ignoring constraints.
    pub best_unconstrained: Option<String>,
    /// Most expensive configuration (the paper's comparison anchor).
    pub worst: Option<String>,
    /// `1 - best_cost / worst_cost` (the paper reports "lower than 73%
    /// compared with the worst configuration").
    pub saving_vs_worst: Option<f64>,
}

fn summarize(rows: Vec<Evaluation>) -> StudyResult {
    let best = optimum(&rows).map(|e| e.label.clone());
    let best_unconstrained = rows.first().map(|e| e.label.clone());
    let worst = rows.last().map(|e| e.label.clone());
    let saving_vs_worst = match (optimum(&rows), rows.last()) {
        (Some(b), Some(w)) if w.total_cost > 0.0 => Some(1.0 - b.total_cost / w.total_cost),
        _ => None,
    };
    StudyResult {
        rows,
        best,
        best_unconstrained,
        worst,
        saving_vs_worst,
    }
}

/// ADS1 sample set: a traffic-weighted mix of the three models.
pub fn ads1_samples(scale: &StudyScale) -> Vec<Vec<u8>> {
    use corpus::mlreq::{generate_requests, Model};
    let mut samples = Vec::new();
    // Model A carries the most traffic (paper, §IV-D).
    samples.extend(generate_requests(
        Model::A,
        scale.ads_requests * 2,
        scale.seed,
    ));
    samples.extend(generate_requests(
        Model::B,
        scale.ads_requests,
        scale.seed + 1,
    ));
    samples.extend(generate_requests(
        Model::C,
        scale.ads_requests,
        scale.seed + 2,
    ));
    if let Some(cap) = scale.max_sample_bytes {
        for s in &mut samples {
            s.truncate(cap);
        }
    }
    samples
}

/// Sensitivity study 1 (Figure 15a).
///
/// `min_speed_mbps` is the compression-speed SLO; the paper uses
/// 200 MB/s on production hardware. Pass a lower value on slow/debug
/// builds to keep the study meaningful.
pub fn study1_ads1(scale: &StudyScale, min_speed_mbps: f64) -> StudyResult {
    let samples = ads1_samples(scale);
    let refs: Vec<&[u8]> = samples.iter().map(|v| v.as_slice()).collect();

    let mut engine = CompEngine::new();
    engine.add_levels(Algorithm::Zstdx, [-3, -1, 1, 2, 3, 4, 5, 7, 9]);
    engine.add_levels(Algorithm::Lz4x, [1, 3, 6, 9, 10]);
    engine.add_levels(Algorithm::Zlibx, [1, 3, 6]);
    let measured = engine.measure(&refs);

    // Intermediate data: storage is irrelevant (paper: "storage cost is
    // not important because the intermediate data is not stored").
    let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 0.0);
    let rows = evaluate_all(
        &measured,
        &params,
        CostWeights::COMPUTE_NETWORK,
        &[Constraint::MinCompressionSpeedMbps(min_speed_mbps)],
    );
    summarize(rows)
}

/// Sensitivity study 2 (Figure 15b).
///
/// `max_decomp_latency_ms` is the per-block read-latency SLO (paper:
/// 0.08 ms).
pub fn study2_kvstore(scale: &StudyScale, max_decomp_latency_ms: f64) -> StudyResult {
    let sst = corpus::sst::generate_sst(scale.sst_bytes, scale.seed + 10);
    let refs: Vec<&[u8]> = vec![&sst];

    let blocks = [4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10];
    let mut engine = CompEngine::new();
    engine.add_grid(Algorithm::Zstdx, [1, 3], blocks);
    engine.add_grid(Algorithm::Lz4x, [1, 3], blocks);
    let measured = engine.measure(&refs);

    // Persistent store: network is irrelevant, storage retention long.
    let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 90.0);
    let rows = evaluate_all(
        &measured,
        &params,
        CostWeights::COMPUTE_STORAGE,
        &[Constraint::MaxDecompressionLatencyMs(max_decomp_latency_ms)],
    );
    summarize(rows)
}

/// One point of the study-3 window sweep.
#[derive(Debug, Clone, Serialize)]
pub struct WindowRow {
    /// Simulated on-chip window is `1 << window_log` bytes.
    pub window_log: u32,
    /// Achieved compression ratio under that window.
    pub ratio: f64,
    /// Total (weighted) cost.
    pub total_cost: f64,
    /// Cost normalized to the series' most expensive point.
    pub normalized: f64,
}

/// Sensitivity study 3 (Figure 16): sweeps the accelerator match-window
/// size for both services. Returns `(ads1_rows, kvstore_rows)`.
///
/// γ defaults to the paper's 10; `alpha` is the accelerator compute
/// rate (paper: Amazon EIA).
pub fn study3_window_sweep(scale: &StudyScale, gamma: f64) -> (Vec<WindowRow>, Vec<WindowRow>) {
    let pricing = Pricing::aws_2023();
    let base = CompressionConfig::new(Algorithm::Zstdx, 1);

    // ADS1: whole requests, compute + network.
    let ads = ads1_samples(scale);
    let ads_refs: Vec<&[u8]> = ads.iter().map(|v| v.as_slice()).collect();
    let ads_params = CostParams::from_pricing(&pricing, 1.0, 0.0);
    let ads_rows = window_sweep_rows(
        &ads_refs,
        base,
        None,
        10..=24,
        gamma,
        &pricing,
        &ads_params,
        CostWeights::COMPUTE_NETWORK,
    );

    // KVSTORE1: 64 KiB blocks, compute + storage.
    let sst = corpus::sst::generate_sst(scale.sst_bytes, scale.seed + 20);
    let sst_refs: Vec<&[u8]> = vec![&sst];
    let kv_params = CostParams::from_pricing(&pricing, 1.0, 90.0);
    let kv_rows = window_sweep_rows(
        &sst_refs,
        base.with_block_size(64 << 10),
        Some(64 << 10),
        10..=20,
        gamma,
        &pricing,
        &kv_params,
        CostWeights::COMPUTE_STORAGE,
    );
    (ads_rows, kv_rows)
}

#[allow(clippy::too_many_arguments)]
fn window_sweep_rows(
    samples: &[&[u8]],
    base: CompressionConfig,
    _block: Option<usize>,
    windows: std::ops::RangeInclusive<u32>,
    gamma: f64,
    pricing: &Pricing,
    params: &CostParams,
    weights: CostWeights,
) -> Vec<WindowRow> {
    let mut engine = CompEngine::new();
    for w in windows.clone() {
        engine.add_simulated(
            CompSim::new(base, gamma, pricing.accelerator_per_second).with_window_log(w),
        );
    }
    let measured = engine.measure(samples);
    let mut evals = evaluate_all(&measured, params, weights, &[]);
    // Restore sweep order (evaluate_all sorts by cost).
    evals.sort_by_key(|e| {
        e.label
            .split("w=2^")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(0)
    });
    let max_cost = evals.iter().map(|e| e.total_cost).fold(f64::MIN, f64::max);
    windows
        .zip(evals.iter())
        .map(|(w, e)| WindowRow {
            window_log: w,
            ratio: e.ratio,
            total_cost: e.total_cost,
            normalized: if max_cost > 0.0 {
                e.total_cost / max_cost
            } else {
                1.0
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study1_prefers_mid_zstd_over_extremes() {
        // No speed SLO in the (slow) test build; shape assertions only.
        let r = study1_ads1(&StudyScale::quick(), 0.0);
        assert!(!r.rows.is_empty());
        let best = r.best.as_deref().expect("feasible optimum");
        assert!(
            best.contains("zstdx"),
            "cost optimum should be a zstd config, got {best}"
        );
        // Network-dominated objective: the worst config is one of the
        // non-zstd extremes (the paper's Figure 15a finds LZ4 level 10;
        // in an unoptimized test build the compute term can instead
        // push a slow zlibx config to the bottom — either way, no zstd
        // config should rank worst).
        let worst = r.worst.as_deref().unwrap();
        assert!(
            !worst.contains("zstdx"),
            "a zstd config ranked worst: {worst}"
        );
        let saving = r.saving_vs_worst.unwrap();
        // The paper reports 73% at production scale; the quick-scale
        // debug-build figure is smaller and timing-noisy.
        assert!(saving > 0.1, "saving vs worst too small: {saving}");
    }

    #[test]
    fn study2_larger_blocks_win_unconstrained() {
        let r = study2_kvstore(&StudyScale::quick(), f64::INFINITY);
        let best = r.best.as_deref().unwrap();
        assert!(
            best.contains("zstdx"),
            "storage-weighted optimum must be zstd: {best}"
        );
        assert!(
            best.contains("64KB") || best.contains("32KB"),
            "unconstrained optimum should be a large block: {best}"
        );
    }

    #[test]
    fn study2_latency_slo_caps_block_size() {
        let relaxed = study2_kvstore(&StudyScale::quick(), f64::INFINITY);
        // Pick an SLO between the fastest and slowest block latencies so
        // it actually binds.
        let lat: Vec<f64> = relaxed
            .rows
            .iter()
            .map(|e| e.decompress_ms_per_call)
            .collect();
        let min = lat.iter().cloned().fold(f64::MAX, f64::min);
        let max = lat.iter().cloned().fold(f64::MIN, f64::max);
        let slo = (min + max) / 2.0;
        let constrained = study2_kvstore(&StudyScale::quick(), slo);
        let best = constrained
            .rows
            .iter()
            .find(|e| e.feasible)
            .expect("some config meets a mid-range SLO");
        assert!(best.decompress_ms_per_call <= slo);
    }

    #[test]
    fn study3_cost_decreases_then_plateaus() {
        let (ads, kv) = study3_window_sweep(&StudyScale::quick(), 10.0);
        for rows in [&ads, &kv] {
            assert!(rows.len() >= 8);
            let first = rows.first().unwrap();
            let last = rows.last().unwrap();
            assert!(
                last.total_cost < first.total_cost,
                "bigger windows should cut cost: {} -> {}",
                first.total_cost,
                last.total_cost
            );
            // Plateau: the last two points are within 2%.
            let prev = &rows[rows.len() - 2];
            assert!(
                (last.total_cost - prev.total_cost).abs() / prev.total_cost < 0.05,
                "no plateau at the top of the sweep"
            );
            // Ratio is non-decreasing in window size (modulo tiny noise).
            for w in rows.windows(2) {
                assert!(w[1].ratio >= w[0].ratio * 0.995);
            }
        }
    }
}
