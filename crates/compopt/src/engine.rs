//! CompEngine — candidate enumeration and measurement.
//!
//! "We introduce a module called CompEngine in CompOpt to generate
//! different candidate compression options with different compression
//! algorithms, compression levels, and block sizes... CompEngine runs
//! candidate compression options with the sample data, which are then
//! coupled with the corresponding compression ratio, compression speed,
//! and decompression speed." (paper, §V-A)

use codecs::{measure, measure_blocks, Algorithm, CompressionMetrics, Compressor, Dictionary};

use crate::compsim::CompSim;
use crate::config::CompressionConfig;

/// A measured candidate: configuration plus its compression metrics.
#[derive(Debug, Clone)]
pub struct Measured {
    /// The candidate configuration.
    pub config: CompressionConfig,
    /// Display label (configuration string, or the CompSim name).
    pub label: String,
    /// Measured metrics over the sample set.
    pub metrics: CompressionMetrics,
    /// Whether this candidate is a simulated accelerator.
    pub simulated: bool,
    /// For simulated candidates: the accelerator's `α_compute`, which
    /// replaces the CPU rate when pricing this candidate.
    pub alpha_compute_override: Option<f64>,
}

enum Candidate {
    Standard(CompressionConfig),
    Simulated(CompSim),
}

/// Enumerates and measures candidate compression options.
///
/// "The current version of CompOpt supports several compressors
/// including LZ4, Zlib, and Zstd. It can be easily extended... using the
/// provided interfaces." — `add_simulated` is that interface for
/// hardware candidates.
#[derive(Default)]
pub struct CompEngine {
    candidates: Vec<Candidate>,
    dictionary: Option<Dictionary>,
}

impl CompEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one explicit configuration.
    pub fn add_config(&mut self, config: CompressionConfig) -> &mut Self {
        self.candidates.push(Candidate::Standard(config));
        self
    }

    /// Adds `algorithm` at each of `levels` (no block chunking).
    pub fn add_levels(
        &mut self,
        algorithm: Algorithm,
        levels: impl IntoIterator<Item = i32>,
    ) -> &mut Self {
        for l in levels {
            self.add_config(CompressionConfig::new(algorithm, l));
        }
        self
    }

    /// Adds the full grid `algorithm × levels × block_sizes`.
    pub fn add_grid(
        &mut self,
        algorithm: Algorithm,
        levels: impl IntoIterator<Item = i32> + Clone,
        block_sizes: impl IntoIterator<Item = usize> + Clone,
    ) -> &mut Self {
        for bs in block_sizes {
            for l in levels.clone() {
                self.add_config(CompressionConfig::new(algorithm, l).with_block_size(bs));
            }
        }
        self
    }

    /// Adds every level of `algorithm`.
    pub fn add_all_levels(&mut self, algorithm: Algorithm) -> &mut Self {
        self.add_levels(algorithm, algorithm.levels())
    }

    /// Adds a simulated hardware candidate (CompSim).
    pub fn add_simulated(&mut self, sim: CompSim) -> &mut Self {
        self.candidates.push(Candidate::Simulated(sim));
        self
    }

    /// Uses a shared dictionary for all candidates that support one.
    pub fn with_dictionary(&mut self, dict: Dictionary) -> &mut Self {
        self.dictionary = Some(dict);
        self
    }

    /// Number of registered candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when no candidates are registered.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Runs every candidate over `samples` and returns the measurements.
    ///
    /// Samples are compressed independently (with block chunking when the
    /// configuration sets a block size), matching how the services the
    /// paper studies invoke compression.
    pub fn measure(&self, samples: &[&[u8]]) -> Vec<Measured> {
        self.candidates
            .iter()
            .map(|cand| match cand {
                Candidate::Standard(config) => {
                    let comp = config.compressor();
                    let metrics = self.measure_one(comp.as_ref(), samples, config.block_size);
                    Measured {
                        config: *config,
                        label: config.to_string(),
                        metrics,
                        simulated: false,
                        alpha_compute_override: None,
                    }
                }
                Candidate::Simulated(sim) => {
                    let comp = sim.compressor();
                    let raw = self.measure_one(comp.as_ref(), samples, sim.base.block_size);
                    Measured {
                        config: sim.base,
                        label: sim.label(),
                        metrics: sim.scale_metrics(raw),
                        simulated: true,
                        alpha_compute_override: Some(sim.alpha_compute),
                    }
                }
            })
            .collect()
    }

    fn measure_one(
        &self,
        comp: &dyn Compressor,
        samples: &[&[u8]],
        block_size: Option<usize>,
    ) -> CompressionMetrics {
        match (block_size, &self.dictionary) {
            (Some(bs), _) => {
                // Chunked: concatenate per-sample block measurements.
                let mut m = CompressionMetrics::default();
                for &s in samples {
                    m.accumulate(&measure_blocks(comp, s, bs));
                }
                m
            }
            (None, Some(d)) if comp.supports_dictionaries() => {
                codecs::metrics::measure_with_dict(comp, samples, Some(d))
            }
            (None, _) => measure(comp, samples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Vec<u8>> {
        (0..3)
            .map(|i| corpus::silesia::generate(corpus::silesia::FileClass::Database, 8192, i))
            .collect()
    }

    #[test]
    fn grid_enumerates_cross_product() {
        let mut e = CompEngine::new();
        e.add_grid(Algorithm::Zstdx, [1, 3], [4096, 16384, 65536]);
        assert_eq!(e.len(), 6);
    }

    #[test]
    fn measure_returns_metrics_per_candidate() {
        let s = samples();
        let refs: Vec<&[u8]> = s.iter().map(|v| v.as_slice()).collect();
        let mut e = CompEngine::new();
        e.add_levels(Algorithm::Zstdx, [1]);
        e.add_levels(Algorithm::Lz4x, [1]);
        let out = e.measure(&refs);
        assert_eq!(out.len(), 2);
        for m in &out {
            assert!(m.metrics.ratio() > 1.0, "{}", m.label);
            assert!(!m.simulated);
        }
        // zstdx compresses tighter than lz4x at level 1.
        assert!(out[0].metrics.ratio() > out[1].metrics.ratio());
    }

    #[test]
    fn block_chunking_changes_call_count() {
        let s = samples();
        let refs: Vec<&[u8]> = s.iter().map(|v| v.as_slice()).collect();
        let mut e = CompEngine::new();
        e.add_config(CompressionConfig::new(Algorithm::Zstdx, 1).with_block_size(1024));
        let out = e.measure(&refs);
        assert_eq!(out[0].metrics.calls, 24); // 3 samples * 8 blocks
    }

    #[test]
    fn dictionary_improves_small_samples() {
        let items = corpus::cache::generate_items(&corpus::cache::cache1_profile(), 150, 3);
        let train: Vec<&[u8]> = items[..75].iter().map(|i| i.data.as_slice()).collect();
        let test: Vec<&[u8]> = items[75..].iter().map(|i| i.data.as_slice()).collect();
        let dict = codecs::dict::train(&train, 16384, 42);

        let mut plain = CompEngine::new();
        plain.add_levels(Algorithm::Zstdx, [3]);
        let without = plain.measure(&test);

        let mut with = CompEngine::new();
        with.add_levels(Algorithm::Zstdx, [3]);
        with.with_dictionary(dict);
        let with = with.measure(&test);

        assert!(
            with[0].metrics.ratio() > without[0].metrics.ratio() * 1.1,
            "dict {} vs plain {}",
            with[0].metrics.ratio(),
            without[0].metrics.ratio()
        );
    }
}
