//! The analytical cost model — Equations (1)–(4) of the paper.
//!
//! With a configuration `x`, sample set `S`, relative costs `α`, base
//! cost `B`, sampling rate `β`, and retention `R` (days):
//!
//! ```text
//! c_compute(x) = Σ_s α_compute·B·Size(s) / (CompSpeed(x,s)·β)     (1)
//! c_storage(x) = Σ_s α_storage·B·R·Size(s) / (CompRatio(x,s)·β)   (2)
//! c_network(x) = Σ_s α_network·B·Size(s) / (CompRatio(x,s)·β)     (3)
//! x_opt = argmin_x ( c_compute + c_storage + c_network )          (4)
//! ```
//!
//! `Size(s)/CompSpeed(x,s)` is the measured compression time of `s` and
//! `Size(s)/CompRatio(x,s)` its measured compressed size, so the sums
//! are computed directly from aggregated
//! [`CompressionMetrics`](codecs::CompressionMetrics).

use codecs::CompressionMetrics;
use serde::{Deserialize, Serialize};

use crate::pricing::Pricing;

/// The user-supplied parameters of Equations (1)–(3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Relative compute cost `α_compute` (USD per CPU-second).
    pub alpha_compute: f64,
    /// Relative storage cost `α_storage` (USD per byte-day).
    pub alpha_storage: f64,
    /// Relative network cost `α_network` (USD per byte).
    pub alpha_network: f64,
    /// Base cost `B` (scales all terms; 1.0 = plain USD).
    pub base: f64,
    /// Sampling rate `β`: samples measured / total compression calls.
    /// Dividing by `β` extrapolates the sample set to the service's
    /// full traffic.
    pub beta: f64,
    /// Average data retention `R`, in days.
    pub retention_days: f64,
    /// Extension (not in the paper's equations): count decompression
    /// time into `c_compute`, weighted by reads per write. The paper's
    /// Figure 3 shows reads dominate many services; `0.0` reproduces the
    /// paper's model exactly.
    pub reads_per_write: f64,
}

impl CostParams {
    /// Builds parameters from a [`Pricing`] sheet.
    pub fn from_pricing(p: &Pricing, beta: f64, retention_days: f64) -> Self {
        Self {
            alpha_compute: p.compute_per_cpu_second,
            alpha_storage: p.storage_per_byte_day,
            alpha_network: p.network_per_byte,
            base: 1.0,
            beta,
            retention_days,
            reads_per_write: 0.0,
        }
    }

    /// Builder-style override of the decompression-cost extension.
    pub fn with_reads_per_write(mut self, rpw: f64) -> Self {
        self.reads_per_write = rpw;
        self
    }

    /// Builder-style override of `α_compute` (used by CompSim to price
    /// accelerator time instead of CPU time).
    pub fn with_alpha_compute(mut self, alpha: f64) -> Self {
        self.alpha_compute = alpha;
        self
    }
}

/// Per-resource costs of one configuration (Equations 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Costs {
    /// Equation (1), plus the optional decompression extension.
    pub compute: f64,
    /// Equation (2).
    pub storage: f64,
    /// Equation (3).
    pub network: f64,
}

impl Costs {
    /// Computes the three cost terms from measured metrics.
    pub fn from_metrics(m: &CompressionMetrics, p: &CostParams) -> Self {
        let scale = p.base / p.beta;
        let compute_secs = m.compress_secs + p.reads_per_write * m.decompress_secs;
        Self {
            compute: p.alpha_compute * scale * compute_secs,
            storage: p.alpha_storage * scale * p.retention_days * m.compressed_bytes as f64,
            network: p.alpha_network * scale * m.compressed_bytes as f64,
        }
    }

    /// Sum of the three terms (the argmin objective of Equation 4).
    pub fn total(&self) -> f64 {
        self.compute + self.storage + self.network
    }

    /// Weighted sum, for services where some resources are free
    /// (paper's study 1 ignores storage; study 2 ignores network).
    pub fn weighted_total(&self, w: &CostWeights) -> f64 {
        w.compute * self.compute + w.storage * self.storage + w.network * self.network
    }
}

/// Objective weights selecting which resources a service pays for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Weight on `c_compute`.
    pub compute: f64,
    /// Weight on `c_storage`.
    pub storage: f64,
    /// Weight on `c_network`.
    pub network: f64,
}

impl CostWeights {
    /// All three resources, unweighted (Equation 4 as written).
    pub const ALL: CostWeights = CostWeights {
        compute: 1.0,
        storage: 1.0,
        network: 1.0,
    };
    /// Compute + network only (ADS1-style: intermediate data, no
    /// storage — paper's sensitivity study 1).
    pub const COMPUTE_NETWORK: CostWeights = CostWeights {
        compute: 1.0,
        storage: 0.0,
        network: 1.0,
    };
    /// Compute + storage only (KVSTORE1-style — paper's study 2).
    pub const COMPUTE_STORAGE: CostWeights = CostWeights {
        compute: 1.0,
        storage: 1.0,
        network: 0.0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(compressed: u64, comp_secs: f64, decomp_secs: f64) -> CompressionMetrics {
        CompressionMetrics {
            original_bytes: 1_000_000,
            compressed_bytes: compressed,
            compress_secs: comp_secs,
            decompress_secs: decomp_secs,
            calls: 10,
        }
    }

    fn params() -> CostParams {
        CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 30.0)
    }

    #[test]
    fn better_ratio_cuts_storage_and_network() {
        let p = params();
        let a = Costs::from_metrics(&metrics(500_000, 0.01, 0.001), &p);
        let b = Costs::from_metrics(&metrics(250_000, 0.01, 0.001), &p);
        assert!(b.storage < a.storage);
        assert!(b.network < a.network);
        assert_eq!(a.compute, b.compute);
    }

    #[test]
    fn slower_compression_costs_more_compute() {
        let p = params();
        let a = Costs::from_metrics(&metrics(500_000, 0.01, 0.001), &p);
        let b = Costs::from_metrics(&metrics(500_000, 0.05, 0.001), &p);
        assert!(b.compute > a.compute);
        assert_eq!(a.storage, b.storage);
    }

    #[test]
    fn beta_extrapolates_inverse() {
        // Halving the sampling rate doubles every cost.
        let m = metrics(500_000, 0.01, 0.001);
        let p1 = params();
        let mut p2 = params();
        p2.beta = 0.5;
        let c1 = Costs::from_metrics(&m, &p1);
        let c2 = Costs::from_metrics(&m, &p2);
        assert!((c2.total() - 2.0 * c1.total()).abs() < 1e-12);
    }

    #[test]
    fn retention_scales_storage_only() {
        let m = metrics(500_000, 0.01, 0.001);
        let mut p = params();
        let c30 = Costs::from_metrics(&m, &p);
        p.retention_days = 60.0;
        let c60 = Costs::from_metrics(&m, &p);
        assert!((c60.storage - 2.0 * c30.storage).abs() < 1e-15);
        assert_eq!(c30.network, c60.network);
        assert_eq!(c30.compute, c60.compute);
    }

    #[test]
    fn reads_per_write_extension_adds_decompression() {
        let m = metrics(500_000, 0.01, 0.002);
        let p0 = params();
        let p5 = params().with_reads_per_write(5.0);
        let c0 = Costs::from_metrics(&m, &p0);
        let c5 = Costs::from_metrics(&m, &p5);
        assert!(c5.compute > c0.compute);
        let expected = p0.alpha_compute * (0.01 + 5.0 * 0.002);
        assert!((c5.compute - expected).abs() < 1e-15);
    }

    #[test]
    fn storage_medium_shifts_the_balance() {
        // The same measurement priced on flash vs HDD: storage dominates
        // sooner on flash, so compression's byte savings are worth more.
        let m = metrics(500_000, 0.01, 0.001);
        let flash = CostParams::from_pricing(&Pricing::aws_2023_flash(), 1.0, 30.0);
        let hdd = CostParams::from_pricing(&Pricing::aws_2023_hdd(), 1.0, 30.0);
        let cf = Costs::from_metrics(&m, &flash);
        let ch = Costs::from_metrics(&m, &hdd);
        assert!(cf.storage > 4.0 * ch.storage);
        assert_eq!(cf.compute, ch.compute);
    }

    #[test]
    fn weights_zero_out_resources() {
        let c = Costs {
            compute: 1.0,
            storage: 2.0,
            network: 4.0,
        };
        assert_eq!(c.weighted_total(&CostWeights::ALL), 7.0);
        assert_eq!(c.weighted_total(&CostWeights::COMPUTE_NETWORK), 5.0);
        assert_eq!(c.weighted_total(&CostWeights::COMPUTE_STORAGE), 3.0);
        assert_eq!(c.total(), 7.0);
    }
}
