//! Reservoir sampling of compression inputs.
//!
//! The service cannot retain all traffic; a classic Algorithm-R
//! reservoir keeps a uniform sample of everything seen so far, which is
//! what dictionary training consumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fixed-capacity uniform sample over a stream of byte payloads.
#[derive(Debug, Clone)]
pub struct Reservoir {
    samples: Vec<Vec<u8>>,
    capacity: usize,
    seen: u64,
    rng: StdRng,
}

impl Reservoir {
    /// Creates a reservoir holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            samples: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Offers one payload to the reservoir (Algorithm R).
    pub fn offer(&mut self, payload: &[u8]) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(payload.to_vec());
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if let Some(slot) = self.samples.get_mut(j as usize) {
                *slot = payload.to_vec();
            }
        }
    }

    /// The retained samples.
    pub fn samples(&self) -> &[Vec<u8>] {
        &self.samples
    }

    /// Total payloads offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether the reservoir holds enough content to train from.
    pub fn is_warm(&self) -> bool {
        self.samples.len() >= self.capacity.min(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_replaces() {
        let mut r = Reservoir::new(4, 1);
        for i in 0..100u32 {
            r.offer(&i.to_le_bytes());
        }
        assert_eq!(r.samples().len(), 4);
        assert_eq!(r.seen(), 100);
        // With 100 offers, at least one late element should have landed.
        assert!(
            r.samples()
                .iter()
                .any(|s| u32::from_le_bytes(s[..4].try_into().unwrap()) >= 4),
            "reservoir never replaced an early sample"
        );
    }

    #[test]
    fn uniformity_rough_check() {
        // Each of 50 items should appear with probability 10/50; over
        // many independent reservoirs, early and late items appear
        // comparably often.
        let mut early = 0u32;
        let mut late = 0u32;
        for seed in 0..300 {
            let mut r = Reservoir::new(10, seed);
            for i in 0..50u32 {
                r.offer(&i.to_le_bytes());
            }
            for s in r.samples() {
                let v = u32::from_le_bytes(s[..4].try_into().unwrap());
                if v < 25 {
                    early += 1;
                } else {
                    late += 1;
                }
            }
        }
        let ratio = early as f64 / late as f64;
        assert!((0.8..1.25).contains(&ratio), "early/late ratio {ratio}");
    }

    #[test]
    fn warmness() {
        let mut r = Reservoir::new(100, 2);
        assert!(!r.is_warm());
        for i in 0..8u32 {
            r.offer(&i.to_le_bytes());
        }
        assert!(r.is_warm());
    }
}
