//! The managed-compression service proper.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use codecs::zstdx::Zstdx;
use codecs::{Compressor, Dictionary};
use telemetry::Registry;

use crate::reservoir::Reservoir;
use crate::{ManagedError, Result};

/// Magic prefix of a stored (passthrough) frame: the payload follows
/// uncompressed. Emitted when compression fails or does not pay for
/// itself; distinct from every codec frame magic.
pub const PASSTHROUGH_MAGIC: [u8; 4] = [0x4d, 0x43, 0x50, 0x54]; // "MCPT"

/// Most recent failed frames retained per use case for inspection.
const QUARANTINE_CAP: usize = 32;

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ManagedConfig {
    /// Zstdx level used for all use cases.
    pub level: i32,
    /// Reservoir capacity per use case.
    pub reservoir_capacity: usize,
    /// (Re)train after this many compress calls per use case.
    pub retrain_interval: u64,
    /// Trained dictionary size in bytes.
    pub dict_size: usize,
    /// Dictionary versions retained for decompression.
    pub versions_kept: usize,
    /// Seed for reservoir sampling.
    pub seed: u64,
}

impl Default for ManagedConfig {
    fn default() -> Self {
        Self {
            level: 3,
            reservoir_capacity: 64,
            retrain_interval: 128,
            dict_size: 16 * 1024,
            versions_kept: 4,
            seed: 0x4d43,
        }
    }
}

/// Per-use-case observability counters.
///
/// Backed by the service's per-instance [telemetry registry]
/// ([`ManagedCompression::telemetry`]); this struct is the stable view
/// [`ManagedCompression::stats`] reconstructs from it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UseCaseStats {
    /// Compress calls served.
    pub compress_calls: u64,
    /// Decompress calls served.
    pub decompress_calls: u64,
    /// Dictionary versions trained so far.
    pub versions_trained: u32,
    /// Uncompressed bytes in.
    pub bytes_in: u64,
    /// Compressed bytes out.
    pub bytes_out: u64,
    /// Frames emitted stored (compression failed or did not pay).
    pub passthrough: u64,
    /// Extra dictionary versions tried on decode after a miss.
    pub decode_retries: u64,
    /// Frames quarantined after failing every decode attempt.
    pub quarantined: u64,
}

impl UseCaseStats {
    /// Achieved compression ratio so far.
    pub fn ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            return 1.0;
        }
        self.bytes_in as f64 / self.bytes_out as f64
    }
}

struct UseCase {
    reservoir: Reservoir,
    /// Retained dictionary versions, oldest first. The last one is
    /// active. Version numbers start at 1; frames before the first
    /// training carry no dictionary.
    versions: Vec<(u32, Dictionary)>,
    next_version: u32,
    calls_since_train: u64,
    /// Most recent frames that failed every decode attempt, newest last.
    quarantine: VecDeque<Vec<u8>>,
}

/// The stateful service. See the [crate docs](crate).
pub struct ManagedCompression {
    config: ManagedConfig,
    codec: Zstdx,
    use_cases: HashMap<String, UseCase>,
    /// Per-instance registry: counters under `managed.*{use_case=...}`.
    /// Not the global one, so concurrent service instances (and tests)
    /// never see each other's traffic.
    registry: Arc<Registry>,
}

impl ManagedCompression {
    /// Creates a service with `config`.
    pub fn new(config: ManagedConfig) -> Self {
        Self {
            config,
            codec: Zstdx::new(config.level),
            use_cases: HashMap::new(),
            registry: Arc::new(Registry::new()),
        }
    }

    /// The per-instance telemetry registry backing [`Self::stats`]:
    /// `managed.compress.calls`, `managed.decompress.calls`,
    /// `managed.versions_trained`, `managed.bytes_in`,
    /// `managed.bytes_out` counters and `managed.compress.nanos` /
    /// `managed.decompress.nanos` latency histograms, all labeled
    /// `{use_case=...}`.
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    fn dict_id(use_case: &str, version: u32) -> u32 {
        let mut h = DefaultHasher::new();
        use_case.hash(&mut h);
        // Top 12 bits from the use case, low 20 from the version: cheap
        // collision resistance for mismatched-service bugs.
        ((h.finish() as u32) << 20) | (version & 0xfffff)
    }

    fn case_mut(&mut self, use_case: &str) -> &mut UseCase {
        let config = self.config;
        let mut h = DefaultHasher::new();
        use_case.hash(&mut h);
        let seed = config.seed ^ h.finish();
        self.use_cases
            .entry(use_case.to_string())
            .or_insert_with(|| UseCase {
                reservoir: Reservoir::new(config.reservoir_capacity, seed),
                versions: Vec::new(),
                next_version: 1,
                calls_since_train: 0,
                quarantine: VecDeque::new(),
            })
    }

    /// Compresses `data` under `use_case`, transparently using (and
    /// maintaining) the case's dictionary.
    pub fn compress(&mut self, use_case: &str, data: &[u8]) -> Vec<u8> {
        let codec = self.codec.clone();
        let config = self.config;
        let reg = Arc::clone(&self.registry);
        let labels = [("use_case", use_case)];
        let start = Instant::now();
        // Request-scoped causal trace: stages recorded below (codec
        // block loops, dict training) nest under this context until it
        // drops at return; the tail sampler then decides keep-or-drop.
        let _req = telemetry::requests().open(use_case, telemetry::Op::Compress, data.len());
        let case = self.case_mut(use_case);
        case.reservoir.offer(data);
        case.calls_since_train += 1;
        reg.counter("managed.compress.calls", &labels).inc();
        reg.counter("managed.bytes_in", &labels)
            .add(data.len() as u64);

        // Rollout: train a new version when the interval elapses (or on
        // the first warm reservoir).
        let due = case.calls_since_train >= config.retrain_interval
            || (case.versions.is_empty() && case.reservoir.is_warm());
        if due && case.reservoir.is_warm() {
            let refs: Vec<&[u8]> = case
                .reservoir
                .samples()
                .iter()
                .map(|v| v.as_slice())
                .collect();
            let version = case.next_version;
            let dict =
                codecs::dict::train(&refs, config.dict_size, Self::dict_id(use_case, version));
            if !dict.is_empty() {
                case.versions.push((version, dict));
                case.next_version += 1;
                reg.counter("managed.versions_trained", &labels).inc();
                while case.versions.len() > config.versions_kept {
                    case.versions.remove(0);
                }
            }
            case.calls_since_train = 0;
        }

        // A compressor panic (hostile input tripping a codec bug) or an
        // incompressible payload both degrade to a stored frame: the
        // service never fails a compress call.
        let dict = case.versions.last().map(|(_, d)| d);
        let compressed = panic::catch_unwind(AssertUnwindSafe(|| match dict {
            Some(dict) => codec.compress_with_dict(data, dict),
            None => codec.compress(data),
        }))
        .ok();
        let frame = match compressed {
            Some(f) if f.len() < data.len() + PASSTHROUGH_MAGIC.len() => f,
            _ => {
                reg.counter("managed.passthrough", &labels).inc();
                let mut f = Vec::with_capacity(PASSTHROUGH_MAGIC.len() + data.len());
                f.extend_from_slice(&PASSTHROUGH_MAGIC);
                f.extend_from_slice(data);
                f
            }
        };
        reg.counter("managed.bytes_out", &labels)
            .add(frame.len() as u64);
        let elapsed = start.elapsed();
        reg.histogram("managed.compress.nanos", &labels)
            .observe_duration(elapsed);
        // Sliding-window view for the live scrape endpoint, with the
        // per-sub-window max sample carrying a trace exemplar.
        telemetry::windows()
            .histogram("managed.compress.nanos", &labels)
            .observe_linked(elapsed.as_nanos() as u64, || {
                telemetry::trace::instant_ref("managed.compress.window_max")
            });
        if let Some(slo) = telemetry::slos().get("managed.compress.latency") {
            slo.record_latency(elapsed.as_nanos() as u64);
            slo.evaluate();
        }
        frame
    }

    /// Decompresses a frame produced by [`Self::compress`] for the same
    /// use case, resolving whichever retained dictionary version the
    /// frame references.
    ///
    /// A frame that misses its dictionary is retried against every
    /// retained version (`managed.decode_retries` counts the extra
    /// attempts). A frame that still fails is pushed into a bounded
    /// per-use-case quarantine ([`Self::quarantined`]) and reported
    /// without affecting service health; the event increments
    /// `managed.quarantined` and drops a `managed.quarantine` instant on
    /// the calling thread's flight-recorder track.
    ///
    /// # Errors
    ///
    /// * [`ManagedError::UnknownUseCase`] for a never-seen use case.
    /// * [`ManagedError::RetiredDictionary`] when the frame's version
    ///   has been rolled past `versions_kept`.
    /// * [`ManagedError::Quarantined`] when the frame fails under every
    ///   retained dictionary version.
    pub fn decompress(&mut self, use_case: &str, frame: &[u8]) -> Result<Vec<u8>> {
        let codec = self.codec.clone();
        let start = Instant::now();
        let req = telemetry::requests().open(use_case, telemetry::Op::Decompress, frame.len());
        if !self.use_cases.contains_key(use_case) {
            req.mark_error("unknown_use_case");
            return Err(ManagedError::UnknownUseCase(use_case.to_string()));
        }
        let labels = [("use_case", use_case)];
        let reg = Arc::clone(&self.registry);
        reg.counter("managed.decompress.calls", &labels).inc();

        // Stored frames decode by stripping the passthrough magic.
        if let Some(raw) = frame.strip_prefix(&PASSTHROUGH_MAGIC) {
            let elapsed = start.elapsed();
            reg.histogram("managed.decompress.nanos", &labels)
                .observe_duration(elapsed);
            telemetry::windows()
                .histogram("managed.decompress.nanos", &labels)
                .observe_linked(elapsed.as_nanos() as u64, || {
                    telemetry::trace::instant_ref("managed.decompress.window_max")
                });
            let slos = telemetry::slos();
            if let Some(slo) = slos.get("managed.decompress.latency") {
                slo.record_latency(elapsed.as_nanos() as u64);
                slo.evaluate();
            }
            if let Some(slo) = slos.get("managed.decompress.errors") {
                slo.record(true);
                slo.evaluate();
            }
            return Ok(raw.to_vec());
        }

        let case = self.use_cases.get_mut(use_case).expect("checked above");
        // Try dict-less first; on a dictionary mismatch error the frame
        // tells us which id it wants.
        let out = match codec.decompress(frame) {
            Ok(data) => Ok(data),
            Err(codecs::CodecError::UnknownDictVersion { expected, .. }) => {
                let version = expected & 0xfffff;
                let exact = case
                    .versions
                    .iter()
                    .find(|(v, d)| *v == version && d.id() == expected)
                    .map(|(_, d)| d);
                match exact {
                    Some(dict) => codec.decompress_with_dict(frame, dict).map_err(Into::into),
                    None => {
                        // Rollout skew: the exact generation is gone (or
                        // the id is foreign). Retry every retained
                        // version newest-first before giving up.
                        let mut last_err = codecs::CodecError::UnknownDictVersion {
                            expected,
                            got: None,
                        };
                        let mut recovered = None;
                        for (_, dict) in case.versions.iter().rev() {
                            reg.counter("managed.decode_retries", &labels).inc();
                            match codec.decompress_with_dict(frame, dict) {
                                Ok(data) => {
                                    recovered = Some(data);
                                    break;
                                }
                                Err(e) => last_err = e,
                            }
                        }
                        match recovered {
                            Some(data) => Ok(data),
                            None if Self::dict_id(use_case, version) == expected
                                && version < case.next_version =>
                            {
                                // A generation this use case really
                                // produced, rolled past versions_kept.
                                Err(ManagedError::RetiredDictionary {
                                    use_case: use_case.to_string(),
                                    version,
                                })
                            }
                            None => Err(last_err.into()),
                        }
                    }
                }
            }
            Err(e) => Err(e.into()),
        };
        // Codec-level failures quarantine the frame; service-level
        // classifications (retired generation) pass through unchanged.
        let out = match out {
            Err(ManagedError::Codec(source)) => {
                case.quarantine.push_back(frame.to_vec());
                while case.quarantine.len() > QUARANTINE_CAP {
                    case.quarantine.pop_front();
                }
                reg.counter("managed.quarantined", &labels).inc();
                telemetry::trace::instant("managed.quarantine");
                Err(ManagedError::Quarantined {
                    use_case: use_case.to_string(),
                    source,
                })
            }
            other => other,
        };
        if let Err(e) = &out {
            req.mark_error(match e {
                ManagedError::UnknownUseCase(_) => "unknown_use_case",
                ManagedError::RetiredDictionary { .. } => "retired_dictionary",
                ManagedError::Quarantined { .. } => "quarantined",
                ManagedError::Codec(_) => "codec",
            });
        }
        let elapsed = start.elapsed();
        reg.histogram("managed.decompress.nanos", &labels)
            .observe_duration(elapsed);
        let win = telemetry::windows();
        win.histogram("managed.decompress.nanos", &labels)
            .observe_linked(elapsed.as_nanos() as u64, || {
                telemetry::trace::instant_ref("managed.decompress.window_max")
            });
        if out.is_err() {
            win.counter("managed.decompress.errors", &labels).inc();
        }
        // Feed globally registered objectives, when the embedding
        // process (e.g. `datacomp monitor`) has declared them; the
        // library itself stays silent otherwise.
        let slos = telemetry::slos();
        if let Some(slo) = slos.get("managed.decompress.latency") {
            slo.record_latency(elapsed.as_nanos() as u64);
            slo.evaluate();
        }
        if let Some(slo) = slos.get("managed.decompress.errors") {
            slo.record(out.is_ok());
            slo.evaluate();
        }
        out
    }

    /// The quarantined frames retained for `use_case`, oldest first
    /// (bounded; oldest entries are dropped past the cap). Empty for an
    /// unknown use case.
    pub fn quarantined(&self, use_case: &str) -> Vec<&[u8]> {
        self.use_cases
            .get(use_case)
            .map(|c| c.quarantine.iter().map(|f| f.as_slice()).collect())
            .unwrap_or_default()
    }

    /// Observability counters for a use case, reconstructed from the
    /// [per-instance registry](Self::telemetry).
    pub fn stats(&self, use_case: &str) -> Option<UseCaseStats> {
        if !self.use_cases.contains_key(use_case) {
            return None;
        }
        let labels = [("use_case", use_case)];
        let snap = self.registry.snapshot();
        Some(UseCaseStats {
            compress_calls: snap.counter("managed.compress.calls", &labels),
            decompress_calls: snap.counter("managed.decompress.calls", &labels),
            versions_trained: snap.counter("managed.versions_trained", &labels) as u32,
            bytes_in: snap.counter("managed.bytes_in", &labels),
            bytes_out: snap.counter("managed.bytes_out", &labels),
            passthrough: snap.counter("managed.passthrough", &labels),
            decode_retries: snap.counter("managed.decode_retries", &labels),
            quarantined: snap.counter("managed.quarantined", &labels),
        })
    }

    /// Names of all use cases the service has seen.
    pub fn use_cases(&self) -> Vec<&str> {
        self.use_cases.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typed_payload(i: usize) -> Vec<u8> {
        format!(
            "{{\"schema\":\"event.click.v7\",\"session\":{},\"target\":\"btn-{}\",\"ts\":{}}}",
            i % 500,
            i % 23,
            1_700_000_000 + i
        )
        .into_bytes()
    }

    #[test]
    fn roundtrip_before_any_dictionary() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // First call: reservoir warm-up threshold not met -> dict-less.
        let p = typed_payload(0);
        let f = svc.compress("events", &p);
        assert_eq!(svc.decompress("events", &f).unwrap(), p);
    }

    #[test]
    fn dictionary_rollout_improves_ratio() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // Warm-up traffic.
        let mut early_out = 0usize;
        let mut early_in = 0usize;
        for i in 0..8 {
            let p = typed_payload(i);
            early_in += p.len();
            early_out += svc.compress("events", &p).len();
        }
        // Post-rollout traffic.
        let mut late_out = 0usize;
        let mut late_in = 0usize;
        for i in 100..150 {
            let p = typed_payload(i);
            late_in += p.len();
            let f = svc.compress("events", &p);
            late_out += f.len();
            assert_eq!(svc.decompress("events", &f).unwrap(), p);
        }
        let early_ratio = early_in as f64 / early_out as f64;
        let late_ratio = late_in as f64 / late_out as f64;
        assert!(
            late_ratio > early_ratio * 1.3,
            "dictionary rollout should lift ratio: {early_ratio:.2} -> {late_ratio:.2}"
        );
        assert!(svc.stats("events").unwrap().versions_trained >= 1);
    }

    #[test]
    fn old_frames_decode_after_retrain() {
        let cfg = ManagedConfig {
            retrain_interval: 20,
            ..Default::default()
        };
        let mut svc = ManagedCompression::new(cfg);
        let mut kept: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..70 {
            let p = typed_payload(i);
            let f = svc.compress("events", &p);
            kept.push((p, f));
        }
        let stats = svc.stats("events").unwrap();
        assert!(stats.versions_trained >= 2, "expected multiple rollouts");
        // Every historical frame still decodes.
        for (p, f) in &kept {
            assert_eq!(&svc.decompress("events", f).unwrap(), p);
        }
    }

    #[test]
    fn retired_versions_are_reported() {
        let cfg = ManagedConfig {
            retrain_interval: 10,
            versions_kept: 1,
            ..Default::default()
        };
        let mut svc = ManagedCompression::new(cfg);
        let p0 = typed_payload(0);
        let mut first_dict_frame = None;
        for i in 0..100 {
            let p = typed_payload(i);
            let f = svc.compress("events", &p);
            if first_dict_frame.is_none() && svc.stats("events").unwrap().versions_trained == 1 {
                first_dict_frame = Some(f);
            }
        }
        let _ = p0;
        let frame = first_dict_frame.expect("a v1 frame was captured");
        assert!(
            matches!(
                svc.decompress("events", &frame),
                Err(ManagedError::RetiredDictionary { .. })
            ),
            "v1 should be retired after many rollouts with versions_kept=1"
        );
    }

    #[test]
    fn use_cases_are_isolated() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        for i in 0..20 {
            svc.compress("a", &typed_payload(i));
            svc.compress("b", &vec![b'#'; 100 + i]);
        }
        let fa = svc.compress("a", &typed_payload(99));
        // Frames from one use case must not decode under another's name
        // once dictionaries are live (different dict ids).
        if svc.stats("a").unwrap().versions_trained > 0 {
            assert!(svc.decompress("b", &fa).is_err());
        }
        assert!(matches!(
            svc.decompress("never-seen", &fa),
            Err(ManagedError::UnknownUseCase(_))
        ));
        let mut names = svc.use_cases();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn stats_track_calls() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        for i in 0..5 {
            let f = svc.compress("s", &typed_payload(i));
            svc.decompress("s", &f).unwrap();
        }
        let st = svc.stats("s").unwrap();
        assert_eq!(st.compress_calls, 5);
        assert_eq!(st.decompress_calls, 5);
        assert!(st.ratio() > 0.5);
    }

    #[test]
    fn incompressible_input_ships_as_passthrough() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // High-entropy bytes: compression cannot pay for itself.
        let mut noise = vec![0u8; 2048];
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for b in noise.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        let frame = svc.compress("noisy", &noise);
        assert_eq!(frame[..4], PASSTHROUGH_MAGIC);
        assert_eq!(frame.len(), noise.len() + 4);
        assert_eq!(svc.decompress("noisy", &frame).unwrap(), noise);
        assert_eq!(svc.stats("noisy").unwrap().passthrough, 1);
    }

    #[test]
    fn payload_starting_with_magic_roundtrips() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        let mut data = PASSTHROUGH_MAGIC.to_vec();
        data.extend_from_slice(&[0xaa; 600]);
        let frame = svc.compress("edge", &data);
        assert_eq!(svc.decompress("edge", &frame).unwrap(), data);
    }

    #[test]
    fn corrupt_frame_is_quarantined_not_fatal() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // Drive a full rollout so the dictionary path is live.
        let mut frames = Vec::new();
        for i in 0..80 {
            frames.push(svc.compress("events", &typed_payload(i)));
        }
        assert!(svc.stats("events").unwrap().versions_trained >= 1);
        // Corrupt a frame body (past magic/flags) and submit it.
        let mut bad = frames[70].clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x41;
        bad[mid + 1] ^= 0x7f;
        match svc.decompress("events", &bad) {
            Err(ManagedError::Quarantined { use_case, .. }) => assert_eq!(use_case, "events"),
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The service stays up: healthy traffic continues to round-trip.
        let p = typed_payload(999);
        let f = svc.compress("events", &p);
        assert_eq!(svc.decompress("events", &f).unwrap(), p);
        // The frame is retained for inspection and counted.
        let q = svc.quarantined("events");
        assert_eq!(q.len(), 1);
        assert_eq!(q[0], bad.as_slice());
        assert_eq!(svc.stats("events").unwrap().quarantined, 1);
    }

    #[test]
    fn quarantine_is_bounded() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        svc.compress("q", &typed_payload(0));
        for i in 0..(QUARANTINE_CAP + 9) {
            // Valid magic, garbage body: always a codec failure.
            let mut bad = vec![0x5a, 0x53, 0x58, 0x44];
            bad.extend_from_slice(&[i as u8; 16]);
            let _ = svc.decompress("q", &bad);
        }
        assert_eq!(svc.quarantined("q").len(), QUARANTINE_CAP);
        assert!(svc.stats("q").unwrap().quarantined >= QUARANTINE_CAP as u64);
        assert!(svc.quarantined("never-seen").is_empty());
    }

    #[test]
    fn decode_retries_recover_version_skew() {
        // versions_kept=2 with frequent retrains: a frame whose exact
        // dictionary generation is still retained decodes via the exact
        // path; a foreign id triggers retries across retained versions.
        let mut svc = ManagedCompression::new(ManagedConfig {
            retrain_interval: 10,
            ..Default::default()
        });
        for i in 0..40 {
            svc.compress("skew", &typed_payload(i));
        }
        assert!(svc.stats("skew").unwrap().versions_trained >= 1);
        // A frame claiming a dict id this use case never issued: the
        // service retries every retained version, then quarantines.
        let mut svc2 = ManagedCompression::new(ManagedConfig::default());
        for i in 0..40 {
            svc2.compress("other", &typed_payload(i));
        }
        let foreign = svc2.compress("other", &typed_payload(1));
        let err = svc.decompress("skew", &foreign);
        assert!(
            matches!(err, Err(ManagedError::Quarantined { .. })),
            "foreign-dictionary frame should quarantine, got {err:?}"
        );
        assert!(svc.stats("skew").unwrap().decode_retries >= 1);
    }

    #[test]
    fn telemetry_registry_is_per_instance() {
        let mut a = ManagedCompression::new(ManagedConfig::default());
        let mut b = ManagedCompression::new(ManagedConfig::default());
        for i in 0..3 {
            a.compress("s", &typed_payload(i));
        }
        b.compress("s", &typed_payload(0));
        // Exact counts hold because each instance owns its registry.
        let sa = a.telemetry().snapshot();
        let sb = b.telemetry().snapshot();
        let labels = [("use_case", "s")];
        assert_eq!(sa.counter("managed.compress.calls", &labels), 3);
        assert_eq!(sb.counter("managed.compress.calls", &labels), 1);
        let h = sa
            .histogram("managed.compress.nanos", &labels)
            .expect("latency histogram");
        assert_eq!(h.count(), 3);
        // The snapshot serializes through both exporters.
        assert!(telemetry::export::to_json(&sa).contains("managed.compress.calls"));
        assert!(telemetry::export::to_prometheus(&sa).contains("managed_compress_calls"));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any payload sequence round-trips across dictionary rollouts.
        #[test]
        fn any_traffic_roundtrips(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..512), 1..60),
            retrain in 5u64..40,
        ) {
            // Retain every version: retirement of old dictionaries is
            // legitimate (and separately tested); this property is about
            // frames decoding across any number of rollouts.
            let mut svc = ManagedCompression::new(ManagedConfig {
                retrain_interval: retrain,
                reservoir_capacity: 16,
                versions_kept: usize::MAX,
                ..Default::default()
            });
            let mut frames = Vec::new();
            for p in &payloads {
                frames.push(svc.compress("case", p));
            }
            for (p, f) in payloads.iter().zip(&frames) {
                prop_assert_eq!(&svc.decompress("case", f).unwrap(), p);
            }
        }

        /// Stats accounting is exact regardless of traffic.
        #[test]
        fn stats_are_exact(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..256), 1..30),
        ) {
            let mut svc = ManagedCompression::new(ManagedConfig::default());
            let mut bytes_in = 0u64;
            for p in &payloads {
                svc.compress("c", p);
                bytes_in += p.len() as u64;
            }
            let st = svc.stats("c").unwrap();
            prop_assert_eq!(st.compress_calls, payloads.len() as u64);
            prop_assert_eq!(st.bytes_in, bytes_in);
            prop_assert!(st.bytes_out > 0);
        }
    }
}
