//! The managed-compression service proper.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

use codecs::zstdx::Zstdx;
use codecs::{Compressor, Dictionary};
use telemetry::Registry;

use crate::reservoir::Reservoir;
use crate::{ManagedError, Result};

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ManagedConfig {
    /// Zstdx level used for all use cases.
    pub level: i32,
    /// Reservoir capacity per use case.
    pub reservoir_capacity: usize,
    /// (Re)train after this many compress calls per use case.
    pub retrain_interval: u64,
    /// Trained dictionary size in bytes.
    pub dict_size: usize,
    /// Dictionary versions retained for decompression.
    pub versions_kept: usize,
    /// Seed for reservoir sampling.
    pub seed: u64,
}

impl Default for ManagedConfig {
    fn default() -> Self {
        Self {
            level: 3,
            reservoir_capacity: 64,
            retrain_interval: 128,
            dict_size: 16 * 1024,
            versions_kept: 4,
            seed: 0x4d43,
        }
    }
}

/// Per-use-case observability counters.
///
/// Backed by the service's per-instance [telemetry registry]
/// ([`ManagedCompression::telemetry`]); this struct is the stable view
/// [`ManagedCompression::stats`] reconstructs from it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UseCaseStats {
    /// Compress calls served.
    pub compress_calls: u64,
    /// Decompress calls served.
    pub decompress_calls: u64,
    /// Dictionary versions trained so far.
    pub versions_trained: u32,
    /// Uncompressed bytes in.
    pub bytes_in: u64,
    /// Compressed bytes out.
    pub bytes_out: u64,
}

impl UseCaseStats {
    /// Achieved compression ratio so far.
    pub fn ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            return 1.0;
        }
        self.bytes_in as f64 / self.bytes_out as f64
    }
}

struct UseCase {
    reservoir: Reservoir,
    /// Retained dictionary versions, oldest first. The last one is
    /// active. Version numbers start at 1; frames before the first
    /// training carry no dictionary.
    versions: Vec<(u32, Dictionary)>,
    next_version: u32,
    calls_since_train: u64,
}

/// The stateful service. See the [crate docs](crate).
pub struct ManagedCompression {
    config: ManagedConfig,
    codec: Zstdx,
    use_cases: HashMap<String, UseCase>,
    /// Per-instance registry: counters under `managed.*{use_case=...}`.
    /// Not the global one, so concurrent service instances (and tests)
    /// never see each other's traffic.
    registry: Arc<Registry>,
}

impl ManagedCompression {
    /// Creates a service with `config`.
    pub fn new(config: ManagedConfig) -> Self {
        Self {
            config,
            codec: Zstdx::new(config.level),
            use_cases: HashMap::new(),
            registry: Arc::new(Registry::new()),
        }
    }

    /// The per-instance telemetry registry backing [`Self::stats`]:
    /// `managed.compress.calls`, `managed.decompress.calls`,
    /// `managed.versions_trained`, `managed.bytes_in`,
    /// `managed.bytes_out` counters and `managed.compress.nanos` /
    /// `managed.decompress.nanos` latency histograms, all labeled
    /// `{use_case=...}`.
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    fn dict_id(use_case: &str, version: u32) -> u32 {
        let mut h = DefaultHasher::new();
        use_case.hash(&mut h);
        // Top 12 bits from the use case, low 20 from the version: cheap
        // collision resistance for mismatched-service bugs.
        ((h.finish() as u32) << 20) | (version & 0xfffff)
    }

    fn case_mut(&mut self, use_case: &str) -> &mut UseCase {
        let config = self.config;
        let mut h = DefaultHasher::new();
        use_case.hash(&mut h);
        let seed = config.seed ^ h.finish();
        self.use_cases
            .entry(use_case.to_string())
            .or_insert_with(|| UseCase {
                reservoir: Reservoir::new(config.reservoir_capacity, seed),
                versions: Vec::new(),
                next_version: 1,
                calls_since_train: 0,
            })
    }

    /// Compresses `data` under `use_case`, transparently using (and
    /// maintaining) the case's dictionary.
    pub fn compress(&mut self, use_case: &str, data: &[u8]) -> Vec<u8> {
        let codec = self.codec.clone();
        let config = self.config;
        let reg = Arc::clone(&self.registry);
        let labels = [("use_case", use_case)];
        let start = Instant::now();
        let case = self.case_mut(use_case);
        case.reservoir.offer(data);
        case.calls_since_train += 1;
        reg.counter("managed.compress.calls", &labels).inc();
        reg.counter("managed.bytes_in", &labels)
            .add(data.len() as u64);

        // Rollout: train a new version when the interval elapses (or on
        // the first warm reservoir).
        let due = case.calls_since_train >= config.retrain_interval
            || (case.versions.is_empty() && case.reservoir.is_warm());
        if due && case.reservoir.is_warm() {
            let refs: Vec<&[u8]> = case
                .reservoir
                .samples()
                .iter()
                .map(|v| v.as_slice())
                .collect();
            let version = case.next_version;
            let dict =
                codecs::dict::train(&refs, config.dict_size, Self::dict_id(use_case, version));
            if !dict.is_empty() {
                case.versions.push((version, dict));
                case.next_version += 1;
                reg.counter("managed.versions_trained", &labels).inc();
                while case.versions.len() > config.versions_kept {
                    case.versions.remove(0);
                }
            }
            case.calls_since_train = 0;
        }

        let frame = match case.versions.last() {
            Some((_, dict)) => codec.compress_with_dict(data, dict),
            None => codec.compress(data),
        };
        reg.counter("managed.bytes_out", &labels)
            .add(frame.len() as u64);
        reg.histogram("managed.compress.nanos", &labels)
            .observe_duration(start.elapsed());
        frame
    }

    /// Decompresses a frame produced by [`Self::compress`] for the same
    /// use case, resolving whichever retained dictionary version the
    /// frame references.
    ///
    /// # Errors
    ///
    /// * [`ManagedError::UnknownUseCase`] for a never-seen use case.
    /// * [`ManagedError::RetiredDictionary`] when the frame's version
    ///   has been rolled past `versions_kept`.
    /// * [`ManagedError::Codec`] for malformed frames.
    pub fn decompress(&mut self, use_case: &str, frame: &[u8]) -> Result<Vec<u8>> {
        let codec = self.codec.clone();
        let start = Instant::now();
        let case = self
            .use_cases
            .get_mut(use_case)
            .ok_or_else(|| ManagedError::UnknownUseCase(use_case.to_string()))?;
        let labels = [("use_case", use_case)];
        self.registry
            .counter("managed.decompress.calls", &labels)
            .inc();

        // Try dict-less first; on a dictionary mismatch error the frame
        // tells us which id it wants.
        let out = match codec.decompress(frame) {
            Ok(data) => Ok(data),
            Err(codecs::CodecError::DictionaryMismatch { expected, .. }) => {
                let version = expected & 0xfffff;
                let dict = case
                    .versions
                    .iter()
                    .find(|(v, d)| *v == version && d.id() == expected)
                    .map(|(_, d)| d)
                    .ok_or_else(|| ManagedError::RetiredDictionary {
                        use_case: use_case.to_string(),
                        version,
                    })?;
                Ok(codec.decompress_with_dict(frame, dict)?)
            }
            Err(e) => Err(e.into()),
        };
        self.registry
            .histogram("managed.decompress.nanos", &labels)
            .observe_duration(start.elapsed());
        out
    }

    /// Observability counters for a use case, reconstructed from the
    /// [per-instance registry](Self::telemetry).
    pub fn stats(&self, use_case: &str) -> Option<UseCaseStats> {
        if !self.use_cases.contains_key(use_case) {
            return None;
        }
        let labels = [("use_case", use_case)];
        let snap = self.registry.snapshot();
        Some(UseCaseStats {
            compress_calls: snap.counter("managed.compress.calls", &labels),
            decompress_calls: snap.counter("managed.decompress.calls", &labels),
            versions_trained: snap.counter("managed.versions_trained", &labels) as u32,
            bytes_in: snap.counter("managed.bytes_in", &labels),
            bytes_out: snap.counter("managed.bytes_out", &labels),
        })
    }

    /// Names of all use cases the service has seen.
    pub fn use_cases(&self) -> Vec<&str> {
        self.use_cases.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typed_payload(i: usize) -> Vec<u8> {
        format!(
            "{{\"schema\":\"event.click.v7\",\"session\":{},\"target\":\"btn-{}\",\"ts\":{}}}",
            i % 500,
            i % 23,
            1_700_000_000 + i
        )
        .into_bytes()
    }

    #[test]
    fn roundtrip_before_any_dictionary() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // First call: reservoir warm-up threshold not met -> dict-less.
        let p = typed_payload(0);
        let f = svc.compress("events", &p);
        assert_eq!(svc.decompress("events", &f).unwrap(), p);
    }

    #[test]
    fn dictionary_rollout_improves_ratio() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // Warm-up traffic.
        let mut early_out = 0usize;
        let mut early_in = 0usize;
        for i in 0..8 {
            let p = typed_payload(i);
            early_in += p.len();
            early_out += svc.compress("events", &p).len();
        }
        // Post-rollout traffic.
        let mut late_out = 0usize;
        let mut late_in = 0usize;
        for i in 100..150 {
            let p = typed_payload(i);
            late_in += p.len();
            let f = svc.compress("events", &p);
            late_out += f.len();
            assert_eq!(svc.decompress("events", &f).unwrap(), p);
        }
        let early_ratio = early_in as f64 / early_out as f64;
        let late_ratio = late_in as f64 / late_out as f64;
        assert!(
            late_ratio > early_ratio * 1.3,
            "dictionary rollout should lift ratio: {early_ratio:.2} -> {late_ratio:.2}"
        );
        assert!(svc.stats("events").unwrap().versions_trained >= 1);
    }

    #[test]
    fn old_frames_decode_after_retrain() {
        let cfg = ManagedConfig {
            retrain_interval: 20,
            ..Default::default()
        };
        let mut svc = ManagedCompression::new(cfg);
        let mut kept: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..70 {
            let p = typed_payload(i);
            let f = svc.compress("events", &p);
            kept.push((p, f));
        }
        let stats = svc.stats("events").unwrap();
        assert!(stats.versions_trained >= 2, "expected multiple rollouts");
        // Every historical frame still decodes.
        for (p, f) in &kept {
            assert_eq!(&svc.decompress("events", f).unwrap(), p);
        }
    }

    #[test]
    fn retired_versions_are_reported() {
        let cfg = ManagedConfig {
            retrain_interval: 10,
            versions_kept: 1,
            ..Default::default()
        };
        let mut svc = ManagedCompression::new(cfg);
        let p0 = typed_payload(0);
        let mut first_dict_frame = None;
        for i in 0..100 {
            let p = typed_payload(i);
            let f = svc.compress("events", &p);
            if first_dict_frame.is_none() && svc.stats("events").unwrap().versions_trained == 1 {
                first_dict_frame = Some(f);
            }
        }
        let _ = p0;
        let frame = first_dict_frame.expect("a v1 frame was captured");
        assert!(
            matches!(
                svc.decompress("events", &frame),
                Err(ManagedError::RetiredDictionary { .. })
            ),
            "v1 should be retired after many rollouts with versions_kept=1"
        );
    }

    #[test]
    fn use_cases_are_isolated() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        for i in 0..20 {
            svc.compress("a", &typed_payload(i));
            svc.compress("b", &vec![b'#'; 100 + i]);
        }
        let fa = svc.compress("a", &typed_payload(99));
        // Frames from one use case must not decode under another's name
        // once dictionaries are live (different dict ids).
        if svc.stats("a").unwrap().versions_trained > 0 {
            assert!(svc.decompress("b", &fa).is_err());
        }
        assert!(matches!(
            svc.decompress("never-seen", &fa),
            Err(ManagedError::UnknownUseCase(_))
        ));
        let mut names = svc.use_cases();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn stats_track_calls() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        for i in 0..5 {
            let f = svc.compress("s", &typed_payload(i));
            svc.decompress("s", &f).unwrap();
        }
        let st = svc.stats("s").unwrap();
        assert_eq!(st.compress_calls, 5);
        assert_eq!(st.decompress_calls, 5);
        assert!(st.ratio() > 0.5);
    }

    #[test]
    fn telemetry_registry_is_per_instance() {
        let mut a = ManagedCompression::new(ManagedConfig::default());
        let mut b = ManagedCompression::new(ManagedConfig::default());
        for i in 0..3 {
            a.compress("s", &typed_payload(i));
        }
        b.compress("s", &typed_payload(0));
        // Exact counts hold because each instance owns its registry.
        let sa = a.telemetry().snapshot();
        let sb = b.telemetry().snapshot();
        let labels = [("use_case", "s")];
        assert_eq!(sa.counter("managed.compress.calls", &labels), 3);
        assert_eq!(sb.counter("managed.compress.calls", &labels), 1);
        let h = sa
            .histogram("managed.compress.nanos", &labels)
            .expect("latency histogram");
        assert_eq!(h.count(), 3);
        // The snapshot serializes through both exporters.
        assert!(telemetry::export::to_json(&sa).contains("managed.compress.calls"));
        assert!(telemetry::export::to_prometheus(&sa).contains("managed_compress_calls"));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any payload sequence round-trips across dictionary rollouts.
        #[test]
        fn any_traffic_roundtrips(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..512), 1..60),
            retrain in 5u64..40,
        ) {
            // Retain every version: retirement of old dictionaries is
            // legitimate (and separately tested); this property is about
            // frames decoding across any number of rollouts.
            let mut svc = ManagedCompression::new(ManagedConfig {
                retrain_interval: retrain,
                reservoir_capacity: 16,
                versions_kept: usize::MAX,
                ..Default::default()
            });
            let mut frames = Vec::new();
            for p in &payloads {
                frames.push(svc.compress("case", p));
            }
            for (p, f) in payloads.iter().zip(&frames) {
                prop_assert_eq!(&svc.decompress("case", f).unwrap(), p);
            }
        }

        /// Stats accounting is exact regardless of traffic.
        #[test]
        fn stats_are_exact(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..256), 1..30),
        ) {
            let mut svc = ManagedCompression::new(ManagedConfig::default());
            let mut bytes_in = 0u64;
            for p in &payloads {
                svc.compress("c", p);
                bytes_in += p.len() as u64;
            }
            let st = svc.stats("c").unwrap();
            prop_assert_eq!(st.compress_calls, payloads.len() as u64);
            prop_assert_eq!(st.bytes_in, bytes_in);
            prop_assert!(st.bytes_out > 0);
        }
    }
}
