//! The managed-compression service proper.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use codecs::zstdx::Zstdx;
use codecs::{Compressor, Dictionary};
use telemetry::{Clock, Registry};

use crate::reservoir::Reservoir;
use crate::resilience::{
    AdmissionController, Backoff, BreakerDecision, BreakerState, CircuitBreaker, Deadline,
    FaultHook, FaultSite, ResiliencePolicy, RetryBudget, ServiceMode, Sleeper,
};
use crate::{ManagedError, Result};

/// Magic prefix of a stored (passthrough) frame: the payload follows
/// uncompressed. Emitted when compression fails or does not pay for
/// itself; distinct from every codec frame magic.
pub const PASSTHROUGH_MAGIC: [u8; 4] = [0x4d, 0x43, 0x50, 0x54]; // "MCPT"

/// Most recent failed frames retained per use case for inspection.
const QUARANTINE_CAP: usize = 32;

/// Default byte bound on the per-use-case quarantine store.
const QUARANTINE_BYTES: usize = 256 * 1024;

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ManagedConfig {
    /// Zstdx level used for all use cases.
    pub level: i32,
    /// Reservoir capacity per use case.
    pub reservoir_capacity: usize,
    /// (Re)train after this many compress calls per use case.
    pub retrain_interval: u64,
    /// Trained dictionary size in bytes.
    pub dict_size: usize,
    /// Dictionary versions retained for decompression.
    pub versions_kept: usize,
    /// Seed for reservoir sampling.
    pub seed: u64,
    /// Byte bound on the per-use-case quarantine store (entries are
    /// additionally capped in count); oldest frames are evicted first.
    pub quarantine_bytes: usize,
    /// Operational resilience policy: deadlines, retries, breakers,
    /// and the admission/brownout ladder. The default is permissive
    /// (no deadline, generous concurrency) so library use is unchanged
    /// until a policy is dialed in.
    pub resilience: ResiliencePolicy,
}

impl Default for ManagedConfig {
    fn default() -> Self {
        Self {
            level: 3,
            reservoir_capacity: 64,
            retrain_interval: 128,
            dict_size: 16 * 1024,
            versions_kept: 4,
            seed: 0x4d43,
            quarantine_bytes: QUARANTINE_BYTES,
            resilience: ResiliencePolicy::default(),
        }
    }
}

/// Per-use-case observability counters.
///
/// Backed by the service's per-instance [telemetry registry]
/// ([`ManagedCompression::telemetry`]); this struct is the stable view
/// [`ManagedCompression::stats`] reconstructs from it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UseCaseStats {
    /// Compress calls served.
    pub compress_calls: u64,
    /// Decompress calls served.
    pub decompress_calls: u64,
    /// Dictionary versions trained so far.
    pub versions_trained: u32,
    /// Uncompressed bytes in.
    pub bytes_in: u64,
    /// Compressed bytes out.
    pub bytes_out: u64,
    /// Frames emitted stored (compression failed or did not pay).
    pub passthrough: u64,
    /// Extra dictionary versions tried on decode after a miss.
    pub decode_retries: u64,
    /// Frames quarantined after failing every decode attempt.
    pub quarantined: u64,
    /// Requests shed by admission control ([`ManagedError::Overloaded`]).
    pub shed: u64,
    /// Requests abandoned on their deadline
    /// ([`ManagedError::DeadlineExceeded`]).
    pub deadline_exceeded: u64,
    /// Backoff retries granted for transient (injected) failures.
    pub retry_attempts: u64,
    /// Retries denied because the token-bucket budget ran dry.
    pub retry_budget_denied: u64,
    /// Operations degraded to passthrough because a breaker was open.
    pub breaker_fast_fail: u64,
    /// Decode-retry fan-outs that ultimately recovered via a retained
    /// dictionary generation.
    pub decode_retry_recovered: u64,
    /// Quarantined frames evicted by the count or byte bound.
    pub quarantine_evicted: u64,
}

impl UseCaseStats {
    /// Achieved compression ratio so far.
    pub fn ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            return 1.0;
        }
        self.bytes_in as f64 / self.bytes_out as f64
    }
}

struct UseCase {
    reservoir: Reservoir,
    /// Retained dictionary versions, oldest first. The last one is
    /// active. Version numbers start at 1; frames before the first
    /// training carry no dictionary.
    versions: Vec<(u32, Dictionary)>,
    next_version: u32,
    calls_since_train: u64,
    /// Most recent frames that failed every decode attempt, newest last.
    quarantine: VecDeque<Vec<u8>>,
    /// Bytes currently held in `quarantine`.
    quarantine_bytes: usize,
}

/// The stateful service. See the [crate docs](crate).
pub struct ManagedCompression {
    config: ManagedConfig,
    codec: Zstdx,
    use_cases: HashMap<String, UseCase>,
    /// Per-instance registry: counters under `managed.*{use_case=...}`.
    /// Not the global one, so concurrent service instances (and tests)
    /// never see each other's traffic.
    registry: Arc<Registry>,
    /// Clock behind deadlines and breakers; injectable for tests.
    clock: Arc<dyn Clock>,
    /// Concurrency limiter + brownout ladder, shared so harnesses can
    /// hold permits externally to simulate load.
    admission: Arc<AdmissionController>,
    /// Service-wide token-bucket retry budget.
    retry_budget: Arc<RetryBudget>,
    /// One breaker per (use case, op) over the zstdx codec.
    breakers: HashMap<(String, &'static str), Arc<CircuitBreaker>>,
    /// Operational fault hook (chaos harness); `None` in production.
    fault_hook: Option<FaultHook>,
    /// How backoff delays are waited out; injectable for determinism.
    sleeper: Sleeper,
    /// Last ladder mode, for transition instants/counters.
    last_mode: ServiceMode,
    /// Per-operation salt so each retry loop gets a fresh backoff seed.
    retry_seq: u64,
}

impl ManagedCompression {
    /// Creates a service with `config` on the process monotonic clock.
    pub fn new(config: ManagedConfig) -> Self {
        Self::with_clock(config, telemetry::global_clock())
    }

    /// Creates a service with `config` on an injected clock, so tests
    /// and chaos harnesses drive deadlines and breaker cooldowns with a
    /// [`ManualClock`](telemetry::ManualClock).
    pub fn with_clock(config: ManagedConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            config,
            codec: Zstdx::new(config.level),
            use_cases: HashMap::new(),
            registry: Arc::new(Registry::new()),
            clock,
            admission: AdmissionController::new(config.resilience.admission),
            retry_budget: Arc::new(RetryBudget::new(&config.resilience.retry)),
            breakers: HashMap::new(),
            fault_hook: None,
            sleeper: Arc::new(|nanos| std::thread::sleep(std::time::Duration::from_nanos(nanos))),
            last_mode: ServiceMode::Normal,
            retry_seq: 0,
        }
    }

    /// Installs an operational fault hook, consulted before every codec
    /// attempt ([`FaultSite`]). Chaos harnesses inject transient
    /// failures, latency spikes, and clock skew here.
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.fault_hook = hook;
    }

    /// Replaces how backoff delays are waited out. Deterministic
    /// harnesses install a sleeper that advances a manual clock instead
    /// of blocking the thread.
    pub fn set_sleeper(&mut self, sleeper: Sleeper) {
        self.sleeper = sleeper;
    }

    /// The admission controller, shared: holding permits on the
    /// returned handle simulates concurrent load against this service.
    pub fn admission(&self) -> Arc<AdmissionController> {
        Arc::clone(&self.admission)
    }

    /// Replaces the admission controller with a shared one, so several
    /// service instances (e.g. per-tenant shards behind one server)
    /// count against a single concurrency limit and walk the same
    /// brownout ladder instead of each browning out independently.
    pub fn set_admission(&mut self, admission: Arc<AdmissionController>) {
        self.admission = admission;
    }

    /// Retry-budget tokens currently available.
    pub fn retry_budget_tokens(&self) -> f64 {
        self.retry_budget.tokens()
    }

    /// The state of the breaker guarding `(use_case, op)` — `op` is
    /// `"compress"` or `"decompress"` — or `None` before any traffic.
    pub fn breaker_state(&self, use_case: &str, op: &'static str) -> Option<BreakerState> {
        self.breakers
            .get(&(use_case.to_string(), op))
            .map(|b| b.state())
    }

    /// The recorded state transitions of the breaker guarding
    /// `(use_case, op)`, oldest first; empty before any traffic. Chaos
    /// harnesses assert the Closed → Open → HalfOpen → Closed walk here.
    pub fn breaker_transitions(
        &self,
        use_case: &str,
        op: &'static str,
    ) -> Vec<crate::resilience::BreakerTransition> {
        self.breakers
            .get(&(use_case.to_string(), op))
            .map(|b| b.transitions())
            .unwrap_or_default()
    }

    fn breaker(&mut self, use_case: &str, op: &'static str) -> Arc<CircuitBreaker> {
        let cfg = self.config.resilience.breaker;
        let clock = Arc::clone(&self.clock);
        Arc::clone(
            self.breakers
                .entry((use_case.to_string(), op))
                .or_insert_with(|| Arc::new(CircuitBreaker::new(cfg, clock))),
        )
    }

    /// Publishes breaker state to the global gauge the scrape endpoint
    /// exports (`resilience_breaker_state{use_case,op,codec}`).
    fn publish_breaker_gauge(use_case: &str, op: &'static str, state: BreakerState) {
        telemetry::global()
            .gauge(
                "resilience.breaker.state",
                &[("use_case", use_case), ("op", op), ("codec", "zstdx")],
            )
            .set(state.as_gauge());
    }

    /// Records the ladder mode chosen for a request: global gauges
    /// every time, a trace instant + transition counter on change.
    fn note_mode(&mut self, mode: ServiceMode) {
        let g = telemetry::global();
        g.gauge("resilience.admission.mode", &[])
            .set(mode.as_gauge());
        g.gauge("resilience.admission.inflight", &[])
            .set(self.admission.inflight() as f64);
        if mode != self.last_mode {
            telemetry::trace::instant(mode.trace_name());
            telemetry::windows()
                .counter("resilience.mode.transitions", &[("to", mode.as_str())])
                .inc();
            self.last_mode = mode;
        }
    }

    /// The per-instance telemetry registry backing [`Self::stats`]:
    /// `managed.compress.calls`, `managed.decompress.calls`,
    /// `managed.versions_trained`, `managed.bytes_in`,
    /// `managed.bytes_out` counters and `managed.compress.nanos` /
    /// `managed.decompress.nanos` latency histograms, all labeled
    /// `{use_case=...}`.
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    fn dict_id(use_case: &str, version: u32) -> u32 {
        let mut h = DefaultHasher::new();
        use_case.hash(&mut h);
        // Top 12 bits from the use case, low 20 from the version: cheap
        // collision resistance for mismatched-service bugs.
        ((h.finish() as u32) << 20) | (version & 0xfffff)
    }

    fn case_mut(&mut self, use_case: &str) -> &mut UseCase {
        let config = self.config;
        let mut h = DefaultHasher::new();
        use_case.hash(&mut h);
        let seed = config.seed ^ h.finish();
        self.use_cases
            .entry(use_case.to_string())
            .or_insert_with(|| UseCase {
                reservoir: Reservoir::new(config.reservoir_capacity, seed),
                versions: Vec::new(),
                next_version: 1,
                calls_since_train: 0,
                quarantine: VecDeque::new(),
                quarantine_bytes: 0,
            })
    }

    /// Compresses `data` under `use_case`, transparently using (and
    /// maintaining) the case's dictionary.
    ///
    /// The resilience policy runs first: admission control walks the
    /// request down the brownout ladder under load (cheaper level →
    /// stored passthrough frames → shed), an open circuit breaker
    /// degrades to passthrough, and the per-request deadline is checked
    /// between the training and codec stages. A degraded frame is still
    /// a valid frame — every non-error return round-trips.
    ///
    /// # Errors
    ///
    /// * [`ManagedError::Overloaded`] when admission control sheds the
    ///   request (concurrency limit reached).
    /// * [`ManagedError::DeadlineExceeded`] when the request's time
    ///   budget runs out between stages.
    pub fn compress(&mut self, use_case: &str, data: &[u8]) -> Result<Vec<u8>> {
        let codec = self.codec.clone();
        let config = self.config;
        let policy = config.resilience;
        let reg = Arc::clone(&self.registry);
        let labels = [("use_case", use_case)];
        let start = Instant::now();
        // Request-scoped causal trace: stages recorded below (codec
        // block loops, dict training) nest under this context until it
        // drops at return; the tail sampler then decides keep-or-drop.
        let req = telemetry::requests().open(use_case, telemetry::Op::Compress, data.len());
        req.arm_deadline(policy.deadline_nanos);
        let deadline = Deadline::new(Arc::clone(&self.clock), policy.deadline_nanos);

        // Admission first: a shed request does no work at all.
        let Some(permit) = self.admission.try_acquire() else {
            self.note_mode(ServiceMode::Shed);
            reg.counter("managed.shed", &labels).inc();
            telemetry::windows().counter("resilience.shed", &[]).inc();
            telemetry::trace::instant("resilience.shed");
            req.mark_error("overloaded");
            return Err(ManagedError::Overloaded {
                use_case: use_case.to_string(),
            });
        };
        let mode = permit.mode();
        self.note_mode(mode);
        telemetry::windows()
            .counter("resilience.admitted", &[])
            .inc();
        self.retry_budget.deposit();
        let breaker = self.breaker(use_case, "compress");
        let hook = self.fault_hook.clone();

        let case = self.case_mut(use_case);
        case.reservoir.offer(data);
        case.calls_since_train += 1;
        reg.counter("managed.compress.calls", &labels).inc();
        reg.counter("managed.bytes_in", &labels)
            .add(data.len() as u64);

        // Rollout: train a new version when the interval elapses (or on
        // the first warm reservoir) — but only at full service; the
        // brownout ladder sheds this optional work first.
        let due = case.calls_since_train >= config.retrain_interval
            || (case.versions.is_empty() && case.reservoir.is_warm());
        if mode == ServiceMode::Normal && due && case.reservoir.is_warm() {
            let refs: Vec<&[u8]> = case
                .reservoir
                .samples()
                .iter()
                .map(|v| v.as_slice())
                .collect();
            let version = case.next_version;
            let dict =
                codecs::dict::train(&refs, config.dict_size, Self::dict_id(use_case, version));
            if !dict.is_empty() {
                case.versions.push((version, dict));
                case.next_version += 1;
                reg.counter("managed.versions_trained", &labels).inc();
                while case.versions.len() > config.versions_kept {
                    case.versions.remove(0);
                }
            }
            case.calls_since_train = 0;
        }

        // Deadline check between the two heavy stages (training above,
        // codec below): abandon rather than run long.
        if deadline.expired() || req.deadline_exceeded() {
            reg.counter("managed.deadline_exceeded", &labels).inc();
            telemetry::windows()
                .counter("resilience.deadline_exceeded", &[])
                .inc();
            telemetry::trace::instant("resilience.deadline");
            req.mark_error("deadline");
            let wall = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            return Err(ManagedError::DeadlineExceeded {
                use_case: use_case.to_string(),
                elapsed_nanos: deadline.elapsed_nanos().max(wall),
                budget_nanos: policy.deadline_nanos,
            });
        }

        let stored = |data: &[u8]| {
            let mut f = Vec::with_capacity(PASSTHROUGH_MAGIC.len() + data.len());
            f.extend_from_slice(&PASSTHROUGH_MAGIC);
            f.extend_from_slice(data);
            f
        };
        // A compressor panic (hostile input tripping a codec bug), an
        // incompressible payload, an open breaker, and deep brownout
        // all degrade to a stored frame: an admitted compress call
        // never fails on codec grounds.
        let dict = case.versions.last().map(|(_, d)| d);
        let decision = breaker.admit();
        let frame = if mode == ServiceMode::Passthrough || decision == BreakerDecision::FastFail {
            if decision == BreakerDecision::FastFail {
                reg.counter("managed.breaker_fast_fail", &labels).inc();
                telemetry::windows()
                    .counter("resilience.breaker.fast_fail", &[])
                    .inc();
            }
            reg.counter("managed.passthrough", &labels).inc();
            stored(data)
        } else if hook.is_some_and(|h| {
            h(&FaultSite {
                use_case,
                op: "compress",
                attempt: 0,
            })
        }) {
            // Injected operational fault: the codec attempt "fails";
            // compress degrades to a stored frame and the breaker sees
            // the failure.
            breaker.record(false);
            reg.counter("managed.faults_injected", &labels).inc();
            reg.counter("managed.passthrough", &labels).inc();
            stored(data)
        } else {
            let level = if mode == ServiceMode::CheapLevel {
                reg.counter("managed.degraded", &labels).inc();
                telemetry::windows()
                    .counter("resilience.degraded", &[])
                    .inc();
                policy.admission.cheap_level
            } else {
                config.level
            };
            let compressed = panic::catch_unwind(AssertUnwindSafe(|| {
                let codec = if level == config.level {
                    codec
                } else {
                    Zstdx::new(level)
                };
                match dict {
                    Some(dict) => codec.compress_with_dict(data, dict),
                    None => codec.compress(data),
                }
            }))
            .ok();
            breaker.record(compressed.is_some());
            match compressed {
                Some(f) if f.len() < data.len() + PASSTHROUGH_MAGIC.len() => f,
                _ => {
                    reg.counter("managed.passthrough", &labels).inc();
                    stored(data)
                }
            }
        };
        Self::publish_breaker_gauge(use_case, "compress", breaker.state());
        reg.counter("managed.bytes_out", &labels)
            .add(frame.len() as u64);
        let elapsed = start.elapsed();
        reg.histogram("managed.compress.nanos", &labels)
            .observe_duration(elapsed);
        // Sliding-window view for the live scrape endpoint, with the
        // per-sub-window max sample carrying a trace exemplar.
        telemetry::windows()
            .histogram("managed.compress.nanos", &labels)
            .observe_linked(elapsed.as_nanos() as u64, || {
                telemetry::trace::instant_ref("managed.compress.window_max")
            });
        if let Some(slo) = telemetry::slos().get("managed.compress.latency") {
            slo.record_latency(elapsed.as_nanos() as u64);
            slo.evaluate();
        }
        Ok(frame)
    }

    /// Decompresses a frame produced by [`Self::compress`] for the same
    /// use case, resolving whichever retained dictionary version the
    /// frame references.
    ///
    /// A checksummed frame that misses its dictionary is retried
    /// against every retained version's content rebound to the
    /// requested id (`managed.decode_retries` counts the extra
    /// attempts; a recovery is attributed to the generation that
    /// decoded it via `managed.decode_retry_recovered_generation`). A
    /// frame that still fails is pushed into a bounded
    /// per-use-case quarantine ([`Self::quarantined`]) and reported
    /// without affecting service health; the event increments
    /// `managed.quarantined` and drops a `managed.quarantine` instant on
    /// the calling thread's flight-recorder track.
    ///
    /// # Errors
    ///
    /// * [`ManagedError::UnknownUseCase`] for a never-seen use case.
    /// * [`ManagedError::RetiredDictionary`] when the frame's version
    ///   has been rolled past `versions_kept` and no retained
    ///   generation's content decodes it.
    /// * [`ManagedError::Quarantined`] when the frame fails under every
    ///   retained dictionary version.
    /// * [`ManagedError::Overloaded`] when admission control sheds.
    /// * [`ManagedError::DeadlineExceeded`] when the budget runs out
    ///   between decode attempts.
    pub fn decompress(&mut self, use_case: &str, frame: &[u8]) -> Result<Vec<u8>> {
        let codec = self.codec.clone();
        let config = self.config;
        let policy = config.resilience;
        let start = Instant::now();
        let req = telemetry::requests().open(use_case, telemetry::Op::Decompress, frame.len());
        req.arm_deadline(policy.deadline_nanos);
        let deadline = Deadline::new(Arc::clone(&self.clock), policy.deadline_nanos);
        if !self.use_cases.contains_key(use_case) {
            req.mark_error("unknown_use_case");
            return Err(ManagedError::UnknownUseCase(use_case.to_string()));
        }
        let labels = [("use_case", use_case)];
        let reg = Arc::clone(&self.registry);

        // Admission: decode work sits behind the same shed boundary.
        // (There is no cheaper decode — the frame dictates the work —
        // so the ladder's intermediate rungs do not apply here.)
        let Some(_permit) = self.admission.try_acquire() else {
            self.note_mode(ServiceMode::Shed);
            reg.counter("managed.shed", &labels).inc();
            telemetry::windows().counter("resilience.shed", &[]).inc();
            telemetry::trace::instant("resilience.shed");
            req.mark_error("overloaded");
            return Err(ManagedError::Overloaded {
                use_case: use_case.to_string(),
            });
        };
        telemetry::windows()
            .counter("resilience.admitted", &[])
            .inc();
        self.retry_budget.deposit();
        reg.counter("managed.decompress.calls", &labels).inc();

        // Stored frames decode by stripping the passthrough magic.
        if let Some(raw) = frame.strip_prefix(&PASSTHROUGH_MAGIC) {
            let elapsed = start.elapsed();
            reg.histogram("managed.decompress.nanos", &labels)
                .observe_duration(elapsed);
            telemetry::windows()
                .histogram("managed.decompress.nanos", &labels)
                .observe_linked(elapsed.as_nanos() as u64, || {
                    telemetry::trace::instant_ref("managed.decompress.window_max")
                });
            let slos = telemetry::slos();
            if let Some(slo) = slos.get("managed.decompress.latency") {
                slo.record_latency(elapsed.as_nanos() as u64);
                slo.evaluate();
            }
            if let Some(slo) = slos.get("managed.decompress.errors") {
                slo.record(true);
                slo.evaluate();
            }
            return Ok(raw.to_vec());
        }

        let breaker = self.breaker(use_case, "decompress");
        let hook = self.fault_hook.clone();
        let sleeper = Arc::clone(&self.sleeper);
        let budget = Arc::clone(&self.retry_budget);
        let decision = breaker.admit();

        // Operational fault hook: an injected transient failure retries
        // under decorrelated-jitter backoff while the token-bucket
        // budget allows and the breaker/deadline permit. An open
        // breaker fails the attempt immediately instead of hammering a
        // known-bad dependency.
        self.retry_seq = self.retry_seq.wrapping_add(1);
        let mut backoff = Backoff::new(&policy.retry, config.seed ^ self.retry_seq);
        let mut injected_failure = false;
        if let Some(h) = &hook {
            let mut attempt = 0u32;
            loop {
                let faulted = h(&FaultSite {
                    use_case,
                    op: "decompress",
                    attempt,
                });
                if !faulted {
                    break;
                }
                breaker.record(false);
                reg.counter("managed.faults_injected", &labels).inc();
                attempt += 1;
                if decision == BreakerDecision::FastFail
                    || attempt >= policy.retry.max_attempts
                    || deadline.expired()
                {
                    injected_failure = true;
                    break;
                }
                if !budget.try_spend() {
                    reg.counter("managed.retry_budget_denied", &labels).inc();
                    telemetry::windows()
                        .counter("resilience.retry.denied", &[])
                        .inc();
                    injected_failure = true;
                    break;
                }
                reg.counter("managed.retry_attempts", &labels).inc();
                telemetry::windows()
                    .counter("resilience.retry.attempts", &[])
                    .inc();
                sleeper(backoff.next_delay_nanos());
            }
        }

        let case = self.use_cases.get_mut(use_case).expect("checked above");
        // Try dict-less first; on a dictionary mismatch error the frame
        // tells us which id it wants.
        let out = if injected_failure {
            Err(ManagedError::Codec(codecs::CodecError::Corrupt {
                stage: "injected operational fault",
                offset: 0,
            }))
        } else {
            let attempt = match codec.decompress(frame) {
                Ok(data) => Ok(data),
                Err(codecs::CodecError::UnknownDictVersion { expected, .. }) => {
                    let version = expected & 0xfffff;
                    let exact = case
                        .versions
                        .iter()
                        .find(|(v, d)| *v == version && d.id() == expected)
                        .map(|(_, d)| d);
                    match exact {
                        Some(dict) => codec.decompress_with_dict(frame, dict).map_err(Into::into),
                        None => {
                            // Rollout skew: the exact generation is gone
                            // (or the id is foreign). Retry every
                            // retained version newest-first, rebinding
                            // its *content* to the id the frame asks
                            // for — the frame's trailing checksum is
                            // the correctness guard, so only
                            // checksummed frames fan out. Each extra
                            // attempt costs a retry-budget token, and
                            // an open breaker sheds the whole fan-out.
                            let mut last_err = codecs::CodecError::UnknownDictVersion {
                                expected,
                                got: None,
                            };
                            let mut recovered = None;
                            let mut expired = false;
                            if decision == BreakerDecision::FastFail {
                                reg.counter("managed.breaker_fast_fail", &labels).inc();
                                telemetry::windows()
                                    .counter("resilience.breaker.fast_fail", &[])
                                    .inc();
                            } else if Zstdx::frame_has_checksum(frame) {
                                for (v, dict) in case.versions.iter().rev() {
                                    if deadline.expired() || req.deadline_exceeded() {
                                        expired = true;
                                        break;
                                    }
                                    if !budget.try_spend() {
                                        reg.counter("managed.retry_budget_denied", &labels).inc();
                                        telemetry::windows()
                                            .counter("resilience.retry.denied", &[])
                                            .inc();
                                        break;
                                    }
                                    reg.counter("managed.decode_retries", &labels).inc();
                                    let rebound =
                                        Dictionary::new(dict.as_bytes().to_vec(), expected);
                                    match codec.decompress_with_dict(frame, &rebound) {
                                        Ok(data) => {
                                            recovered = Some((*v, data));
                                            break;
                                        }
                                        Err(e) => last_err = e,
                                    }
                                }
                            }
                            match recovered {
                                Some((v, data)) => {
                                    // Retry causality: which retained
                                    // generation saved this frame.
                                    telemetry::trace::instant("managed.decode_retry.recovered");
                                    reg.counter("managed.decode_retry_recovered", &labels).inc();
                                    let generation = format!("v{v}");
                                    reg.counter(
                                        "managed.decode_retry_recovered_generation",
                                        &[
                                            ("use_case", use_case),
                                            ("generation", generation.as_str()),
                                        ],
                                    )
                                    .inc();
                                    Ok(data)
                                }
                                None if expired => {
                                    let wall =
                                        start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                                    Err(ManagedError::DeadlineExceeded {
                                        use_case: use_case.to_string(),
                                        elapsed_nanos: deadline.elapsed_nanos().max(wall),
                                        budget_nanos: policy.deadline_nanos,
                                    })
                                }
                                None if Self::dict_id(use_case, version) == expected
                                    && version < case.next_version =>
                                {
                                    // A generation this use case really
                                    // produced, rolled past versions_kept.
                                    Err(ManagedError::RetiredDictionary {
                                        use_case: use_case.to_string(),
                                        version,
                                    })
                                }
                                None => Err(last_err.into()),
                            }
                        }
                    }
                }
                Err(e) => Err(e.into()),
            };
            // Codec-level failures are breaker failures; service-level
            // classifications (retired generation, deadline) are not a
            // dependency-health signal.
            breaker.record(!matches!(&attempt, Err(ManagedError::Codec(_))));
            attempt
        };
        Self::publish_breaker_gauge(use_case, "decompress", breaker.state());
        // Codec-level failures quarantine the frame; service-level
        // classifications (retired generation) pass through unchanged.
        let out = match out {
            Err(ManagedError::Codec(source)) => {
                case.quarantine.push_back(frame.to_vec());
                case.quarantine_bytes += frame.len();
                // Bounded by entries and bytes: evict oldest first.
                while case.quarantine.len() > QUARANTINE_CAP
                    || case.quarantine_bytes > config.quarantine_bytes
                {
                    let Some(old) = case.quarantine.pop_front() else {
                        break;
                    };
                    case.quarantine_bytes = case.quarantine_bytes.saturating_sub(old.len());
                    reg.counter("managed.quarantine_evicted", &labels).inc();
                }
                reg.counter("managed.quarantined", &labels).inc();
                telemetry::trace::instant("managed.quarantine");
                Err(ManagedError::Quarantined {
                    use_case: use_case.to_string(),
                    source,
                })
            }
            other => other,
        };
        if let Err(e) = &out {
            req.mark_error(match e {
                ManagedError::UnknownUseCase(_) => "unknown_use_case",
                ManagedError::RetiredDictionary { .. } => "retired_dictionary",
                ManagedError::Quarantined { .. } => "quarantined",
                ManagedError::Codec(_) => "codec",
                ManagedError::DeadlineExceeded { .. } => "deadline",
                ManagedError::Overloaded { .. } => "overloaded",
            });
        }
        let elapsed = start.elapsed();
        reg.histogram("managed.decompress.nanos", &labels)
            .observe_duration(elapsed);
        let win = telemetry::windows();
        win.histogram("managed.decompress.nanos", &labels)
            .observe_linked(elapsed.as_nanos() as u64, || {
                telemetry::trace::instant_ref("managed.decompress.window_max")
            });
        if out.is_err() {
            win.counter("managed.decompress.errors", &labels).inc();
        }
        // Feed globally registered objectives, when the embedding
        // process (e.g. `datacomp monitor`) has declared them; the
        // library itself stays silent otherwise.
        let slos = telemetry::slos();
        if let Some(slo) = slos.get("managed.decompress.latency") {
            slo.record_latency(elapsed.as_nanos() as u64);
            slo.evaluate();
        }
        if let Some(slo) = slos.get("managed.decompress.errors") {
            slo.record(out.is_ok());
            slo.evaluate();
        }
        out
    }

    /// The quarantined frames retained for `use_case`, oldest first
    /// (bounded; oldest entries are dropped past the cap). Empty for an
    /// unknown use case.
    pub fn quarantined(&self, use_case: &str) -> Vec<&[u8]> {
        self.use_cases
            .get(use_case)
            .map(|c| c.quarantine.iter().map(|f| f.as_slice()).collect())
            .unwrap_or_default()
    }

    /// Observability counters for a use case, reconstructed from the
    /// [per-instance registry](Self::telemetry).
    pub fn stats(&self, use_case: &str) -> Option<UseCaseStats> {
        if !self.use_cases.contains_key(use_case) {
            return None;
        }
        let labels = [("use_case", use_case)];
        let snap = self.registry.snapshot();
        Some(UseCaseStats {
            compress_calls: snap.counter("managed.compress.calls", &labels),
            decompress_calls: snap.counter("managed.decompress.calls", &labels),
            versions_trained: snap.counter("managed.versions_trained", &labels) as u32,
            bytes_in: snap.counter("managed.bytes_in", &labels),
            bytes_out: snap.counter("managed.bytes_out", &labels),
            passthrough: snap.counter("managed.passthrough", &labels),
            decode_retries: snap.counter("managed.decode_retries", &labels),
            quarantined: snap.counter("managed.quarantined", &labels),
            shed: snap.counter("managed.shed", &labels),
            deadline_exceeded: snap.counter("managed.deadline_exceeded", &labels),
            retry_attempts: snap.counter("managed.retry_attempts", &labels),
            retry_budget_denied: snap.counter("managed.retry_budget_denied", &labels),
            breaker_fast_fail: snap.counter("managed.breaker_fast_fail", &labels),
            decode_retry_recovered: snap.counter("managed.decode_retry_recovered", &labels),
            quarantine_evicted: snap.counter("managed.quarantine_evicted", &labels),
        })
    }

    /// Names of all use cases the service has seen.
    pub fn use_cases(&self) -> Vec<&str> {
        self.use_cases.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typed_payload(i: usize) -> Vec<u8> {
        format!(
            "{{\"schema\":\"event.click.v7\",\"session\":{},\"target\":\"btn-{}\",\"ts\":{}}}",
            i % 500,
            i % 23,
            1_700_000_000 + i
        )
        .into_bytes()
    }

    #[test]
    fn roundtrip_before_any_dictionary() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // First call: reservoir warm-up threshold not met -> dict-less.
        let p = typed_payload(0);
        let f = svc.compress("events", &p).unwrap();
        assert_eq!(svc.decompress("events", &f).unwrap(), p);
    }

    #[test]
    fn dictionary_rollout_improves_ratio() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // Warm-up traffic.
        let mut early_out = 0usize;
        let mut early_in = 0usize;
        for i in 0..8 {
            let p = typed_payload(i);
            early_in += p.len();
            early_out += svc.compress("events", &p).unwrap().len();
        }
        // Post-rollout traffic.
        let mut late_out = 0usize;
        let mut late_in = 0usize;
        for i in 100..150 {
            let p = typed_payload(i);
            late_in += p.len();
            let f = svc.compress("events", &p).unwrap();
            late_out += f.len();
            assert_eq!(svc.decompress("events", &f).unwrap(), p);
        }
        let early_ratio = early_in as f64 / early_out as f64;
        let late_ratio = late_in as f64 / late_out as f64;
        assert!(
            late_ratio > early_ratio * 1.3,
            "dictionary rollout should lift ratio: {early_ratio:.2} -> {late_ratio:.2}"
        );
        assert!(svc.stats("events").unwrap().versions_trained >= 1);
    }

    #[test]
    fn old_frames_decode_after_retrain() {
        let cfg = ManagedConfig {
            retrain_interval: 20,
            ..Default::default()
        };
        let mut svc = ManagedCompression::new(cfg);
        let mut kept: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..70 {
            let p = typed_payload(i);
            let f = svc.compress("events", &p).unwrap();
            kept.push((p, f));
        }
        let stats = svc.stats("events").unwrap();
        assert!(stats.versions_trained >= 2, "expected multiple rollouts");
        // Every historical frame still decodes.
        for (p, f) in &kept {
            assert_eq!(&svc.decompress("events", f).unwrap(), p);
        }
    }

    #[test]
    fn retired_versions_are_reported() {
        let cfg = ManagedConfig {
            retrain_interval: 10,
            versions_kept: 1,
            ..Default::default()
        };
        let mut svc = ManagedCompression::new(cfg);
        let mut first_dict_frame = None;
        for i in 0..100 {
            let p = typed_payload(i);
            let f = svc.compress("events", &p).unwrap();
            if first_dict_frame.is_none()
                && svc.stats("events").unwrap().versions_trained == 1
                && f.get(..4) != Some(&PASSTHROUGH_MAGIC)
                && f.get(4).is_some_and(|flags| flags & 1 != 0)
            {
                first_dict_frame = Some(f);
            }
        }
        let mut frame = first_dict_frame.expect("a dictionary-compressed v1 frame was captured");
        // Strip the content checksum flag: a non-checksummed frame is
        // ineligible for rebind recovery (no correctness guard), so its
        // rolled-past generation must surface as RetiredDictionary.
        // (With the checksum intact the service may legitimately
        // recover the frame through a newer generation whose trained
        // content converged — that path is covered separately.)
        frame[4] &= !0x02;
        let out = svc.decompress("events", &frame);
        assert!(
            matches!(out, Err(ManagedError::RetiredDictionary { .. })),
            "v1 should be retired after many rollouts with versions_kept=1, got {out:?}"
        );
    }

    #[test]
    fn use_cases_are_isolated() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        for i in 0..20 {
            svc.compress("a", &typed_payload(i)).unwrap();
            svc.compress("b", &vec![b'#'; 100 + i]).unwrap();
        }
        let fa = svc.compress("a", &typed_payload(99)).unwrap();
        // Frames from one use case must not decode under another's name
        // once dictionaries are live (different dict ids).
        if svc.stats("a").unwrap().versions_trained > 0 {
            assert!(svc.decompress("b", &fa).is_err());
        }
        assert!(matches!(
            svc.decompress("never-seen", &fa),
            Err(ManagedError::UnknownUseCase(_))
        ));
        let mut names = svc.use_cases();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn stats_track_calls() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        for i in 0..5 {
            let f = svc.compress("s", &typed_payload(i)).unwrap();
            svc.decompress("s", &f).unwrap();
        }
        let st = svc.stats("s").unwrap();
        assert_eq!(st.compress_calls, 5);
        assert_eq!(st.decompress_calls, 5);
        assert!(st.ratio() > 0.5);
    }

    #[test]
    fn incompressible_input_ships_as_passthrough() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // High-entropy bytes: compression cannot pay for itself.
        let mut noise = vec![0u8; 2048];
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for b in noise.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        let frame = svc.compress("noisy", &noise).unwrap();
        assert_eq!(frame[..4], PASSTHROUGH_MAGIC);
        assert_eq!(frame.len(), noise.len() + 4);
        assert_eq!(svc.decompress("noisy", &frame).unwrap(), noise);
        assert_eq!(svc.stats("noisy").unwrap().passthrough, 1);
    }

    #[test]
    fn payload_starting_with_magic_roundtrips() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        let mut data = PASSTHROUGH_MAGIC.to_vec();
        data.extend_from_slice(&[0xaa; 600]);
        let frame = svc.compress("edge", &data).unwrap();
        assert_eq!(svc.decompress("edge", &frame).unwrap(), data);
    }

    #[test]
    fn corrupt_frame_is_quarantined_not_fatal() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        // Drive a full rollout so the dictionary path is live.
        let mut frames = Vec::new();
        for i in 0..80 {
            frames.push(svc.compress("events", &typed_payload(i)).unwrap());
        }
        assert!(svc.stats("events").unwrap().versions_trained >= 1);
        // Corrupt a frame body (past magic/flags) and submit it.
        let mut bad = frames[70].clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x41;
        bad[mid + 1] ^= 0x7f;
        match svc.decompress("events", &bad) {
            Err(ManagedError::Quarantined { use_case, .. }) => assert_eq!(use_case, "events"),
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The service stays up: healthy traffic continues to round-trip.
        let p = typed_payload(999);
        let f = svc.compress("events", &p).unwrap();
        assert_eq!(svc.decompress("events", &f).unwrap(), p);
        // The frame is retained for inspection and counted.
        let q = svc.quarantined("events");
        assert_eq!(q.len(), 1);
        assert_eq!(q[0], bad.as_slice());
        assert_eq!(svc.stats("events").unwrap().quarantined, 1);
    }

    #[test]
    fn quarantine_is_bounded() {
        let mut svc = ManagedCompression::new(ManagedConfig::default());
        svc.compress("q", &typed_payload(0)).unwrap();
        for i in 0..(QUARANTINE_CAP + 9) {
            // Valid magic, garbage body: always a codec failure.
            let mut bad = vec![0x5a, 0x53, 0x58, 0x44];
            bad.extend_from_slice(&[i as u8; 16]);
            let _ = svc.decompress("q", &bad);
        }
        assert_eq!(svc.quarantined("q").len(), QUARANTINE_CAP);
        assert!(svc.stats("q").unwrap().quarantined >= QUARANTINE_CAP as u64);
        assert!(svc.quarantined("never-seen").is_empty());
    }

    #[test]
    fn decode_retries_recover_version_skew() {
        // versions_kept=2 with frequent retrains: a frame whose exact
        // dictionary generation is still retained decodes via the exact
        // path; a foreign id triggers retries across retained versions.
        let mut svc = ManagedCompression::new(ManagedConfig {
            retrain_interval: 10,
            ..Default::default()
        });
        for i in 0..40 {
            svc.compress("skew", &typed_payload(i)).unwrap();
        }
        assert!(svc.stats("skew").unwrap().versions_trained >= 1);
        // A frame claiming a dict id this use case never issued, cut
        // with dictionary content "skew" never trained (a different
        // schema, so the rebound fan-out cannot checksum-match): the
        // service retries every retained version, then quarantines.
        let mut svc2 = ManagedCompression::new(ManagedConfig {
            retrain_interval: 10,
            ..Default::default()
        });
        let xml = |i: usize| {
            format!(
                "<row id='{i}'><metric name='cpu' value='{}'/></row>",
                i * 37
            )
            .into_bytes()
        };
        for i in 0..40 {
            svc2.compress("other", &xml(i)).unwrap();
        }
        assert!(svc2.stats("other").unwrap().versions_trained >= 1);
        let foreign = svc2.compress("other", &xml(1)).unwrap();
        let err = svc.decompress("skew", &foreign);
        assert!(
            matches!(err, Err(ManagedError::Quarantined { .. })),
            "foreign-dictionary frame should quarantine, got {err:?}"
        );
        assert!(svc.stats("skew").unwrap().decode_retries >= 1);
    }

    #[test]
    fn admission_full_sheds_with_typed_overloaded() {
        let mut svc = ManagedCompression::new(ManagedConfig {
            resilience: crate::resilience::ResiliencePolicy {
                admission: crate::resilience::AdmissionConfig {
                    max_inflight: 2,
                    degrade_at: 2,
                    passthrough_at: 2,
                    cheap_level: 1,
                },
                ..Default::default()
            },
            ..Default::default()
        });
        // Establish the use case at full service first.
        let warm = svc.compress("busy", &typed_payload(0)).unwrap();
        // Simulate two concurrent requests by holding their permits.
        let admission = svc.admission();
        let _p1 = admission.try_acquire().expect("slot 1");
        let _p2 = admission.try_acquire().expect("slot 2");
        let err = svc.compress("busy", &typed_payload(1));
        assert!(
            matches!(err, Err(ManagedError::Overloaded { ref use_case }) if use_case == "busy"),
            "expected typed Overloaded, got {err:?}"
        );
        // Decompress sits behind the same boundary.
        let err = svc.decompress("busy", &warm);
        assert!(matches!(err, Err(ManagedError::Overloaded { .. })));
        assert_eq!(svc.stats("busy").unwrap().shed, 2);
        // Releasing the load resumes service untouched.
        drop(_p1);
        drop(_p2);
        let p = typed_payload(2);
        let f = svc.compress("busy", &p).unwrap();
        assert_eq!(svc.decompress("busy", &f).unwrap(), p);
    }

    #[test]
    fn brownout_ladder_degrades_before_shedding() {
        let mut svc = ManagedCompression::new(ManagedConfig {
            resilience: crate::resilience::ResiliencePolicy {
                admission: crate::resilience::AdmissionConfig {
                    max_inflight: 8,
                    degrade_at: 1,
                    passthrough_at: 2,
                    cheap_level: 1,
                },
                ..Default::default()
            },
            ..Default::default()
        });
        let admission = svc.admission();
        // One concurrent request: occupancy 2 > degrade_at -> cheaper
        // level, still a real compressed frame that round-trips. The
        // payload is large and repetitive so every level compresses it.
        let hold1 = admission.try_acquire().expect("slot");
        let p = typed_payload(0).repeat(20);
        let f = svc.compress("load", &p).unwrap();
        assert_eq!(svc.decompress("load", &f).unwrap(), p);
        let snap = svc.telemetry().snapshot();
        assert_eq!(snap.counter("managed.degraded", &[("use_case", "load")]), 1);
        // Two concurrent requests: occupancy 3 > passthrough_at -> the
        // codec is skipped entirely; the stored frame still round-trips.
        let hold2 = admission.try_acquire().expect("slot");
        let f = svc.compress("load", &p).unwrap();
        assert_eq!(f[..4], PASSTHROUGH_MAGIC);
        assert_eq!(svc.decompress("load", &f).unwrap(), p);
        drop(hold1);
        drop(hold2);
        // Load gone: full service again (dictionary-quality frames).
        let f = svc.compress("load", &p).unwrap();
        assert_ne!(f[..4], PASSTHROUGH_MAGIC);
        assert_eq!(svc.decompress("load", &f).unwrap(), p);
    }

    #[test]
    fn exhausted_deadline_is_typed() {
        // A 1ns budget cannot survive the training/codec stages; the
        // wall-clock request context trips it deterministically.
        let mut svc = ManagedCompression::new(ManagedConfig {
            resilience: crate::resilience::ResiliencePolicy {
                deadline_nanos: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let err = svc.compress("slow", &typed_payload(0));
        match err {
            Err(ManagedError::DeadlineExceeded {
                use_case,
                budget_nanos,
                ..
            }) => {
                assert_eq!(use_case, "slow");
                assert_eq!(budget_nanos, 1);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(svc.stats("slow").unwrap().deadline_exceeded, 1);
    }

    #[test]
    fn quarantine_is_bounded_by_bytes_with_eviction_counter() {
        let mut svc = ManagedCompression::new(ManagedConfig {
            quarantine_bytes: 64,
            ..Default::default()
        });
        svc.compress("q", &typed_payload(0)).unwrap();
        // Three 52-byte corrupt frames (dict flag set, an id this use
        // case never issued: guaranteed codec failure): the second and
        // third inserts must evict under the 64-byte bound.
        for i in 0..3u8 {
            // magic, flags=dict, content varint, bogus dict id, junk.
            let mut bad = vec![0x5a, 0x53, 0x58, 0x44, 0x01, 0x05, 0xaa, 0xab, 0xac, 0xad];
            bad.extend_from_slice(&[i; 42]);
            let _ = svc.decompress("q", &bad);
        }
        let held: usize = svc.quarantined("q").iter().map(|f| f.len()).sum();
        assert!(held <= 64, "quarantine holds {held} bytes past the bound");
        let st = svc.stats("q").unwrap();
        assert_eq!(st.quarantined, 3);
        assert!(
            st.quarantine_evicted >= 1,
            "byte-bound eviction was not counted"
        );
    }

    #[test]
    fn decode_retry_recovery_is_attributed_to_generation() {
        let mut svc = ManagedCompression::new(ManagedConfig {
            retrain_interval: 10,
            ..Default::default()
        });
        for i in 0..30 {
            svc.compress("g", &typed_payload(i)).unwrap();
        }
        let p = typed_payload(500);
        let mut f = svc.compress("g", &p).unwrap();
        // Read the generation count after cutting the frame: that
        // compress call may itself have retrained, and the frame is
        // always cut with the newest dictionary.
        let trained = svc.stats("g").unwrap().versions_trained;
        assert!(trained >= 1);
        assert_ne!(f[..4], PASSTHROUGH_MAGIC);
        assert_eq!(f[4] & 1, 1, "frame should be dictionary-compressed");
        // Forge the frame's dictionary id into a generation this
        // service never trained — a writer one rollout ahead whose
        // dictionary content matched ours. The exact-id lookup misses;
        // the fan-out rebinds retained content under the wanted id and
        // the trailing checksum confirms the decode. (Payload < 128
        // bytes, so the length varint is one byte and the id sits at
        // bytes 6..10.)
        assert!(p.len() < 128);
        let forged = (u32::from_le_bytes(f[6..10].try_into().unwrap()) & !0xfffff) | 999;
        f[6..10].copy_from_slice(&forged.to_le_bytes());
        assert_eq!(svc.decompress("g", &f).unwrap(), p);
        let st = svc.stats("g").unwrap();
        assert!(st.decode_retries >= 1);
        assert_eq!(st.decode_retry_recovered, 1);
        // The frame was cut with the newest dictionary, so recovery is
        // attributed to that generation.
        let snap = svc.telemetry().snapshot();
        let generation = format!("v{trained}");
        assert_eq!(
            snap.counter(
                "managed.decode_retry_recovered_generation",
                &[("use_case", "g"), ("generation", generation.as_str())],
            ),
            1,
            "recovery not attributed to generation {generation}"
        );
    }

    #[test]
    fn telemetry_registry_is_per_instance() {
        let mut a = ManagedCompression::new(ManagedConfig::default());
        let mut b = ManagedCompression::new(ManagedConfig::default());
        for i in 0..3 {
            a.compress("s", &typed_payload(i)).unwrap();
        }
        b.compress("s", &typed_payload(0)).unwrap();
        // Exact counts hold because each instance owns its registry.
        let sa = a.telemetry().snapshot();
        let sb = b.telemetry().snapshot();
        let labels = [("use_case", "s")];
        assert_eq!(sa.counter("managed.compress.calls", &labels), 3);
        assert_eq!(sb.counter("managed.compress.calls", &labels), 1);
        let h = sa
            .histogram("managed.compress.nanos", &labels)
            .expect("latency histogram");
        assert_eq!(h.count(), 3);
        // The snapshot serializes through both exporters.
        assert!(telemetry::export::to_json(&sa).contains("managed.compress.calls"));
        assert!(telemetry::export::to_prometheus(&sa).contains("managed_compress_calls"));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any payload sequence round-trips across dictionary rollouts.
        #[test]
        fn any_traffic_roundtrips(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..512), 1..60),
            retrain in 5u64..40,
        ) {
            // Retain every version: retirement of old dictionaries is
            // legitimate (and separately tested); this property is about
            // frames decoding across any number of rollouts.
            let mut svc = ManagedCompression::new(ManagedConfig {
                retrain_interval: retrain,
                reservoir_capacity: 16,
                versions_kept: usize::MAX,
                ..Default::default()
            });
            let mut frames = Vec::new();
            for p in &payloads {
                frames.push(svc.compress("case", p).unwrap());
            }
            for (p, f) in payloads.iter().zip(&frames) {
                prop_assert_eq!(&svc.decompress("case", f).unwrap(), p);
            }
        }

        /// Stats accounting is exact regardless of traffic.
        #[test]
        fn stats_are_exact(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..256), 1..30),
        ) {
            let mut svc = ManagedCompression::new(ManagedConfig::default());
            let mut bytes_in = 0u64;
            for p in &payloads {
                svc.compress("c", p).unwrap();
                bytes_in += p.len() as u64;
            }
            let st = svc.stats("c").unwrap();
            prop_assert_eq!(st.compress_calls, payloads.len() as u64);
            prop_assert_eq!(st.bytes_in, bytes_in);
            prop_assert!(st.bytes_out > 0);
        }
    }
}
