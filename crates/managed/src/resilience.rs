//! Operational resilience policies for the managed service.
//!
//! The paper frames compression as a fleet service absorbing millions
//! of requests per second; at that scale overload and partial failure
//! are the steady state, not the exception. This module supplies the
//! control-plane guardrails the data-plane hardening (`faultline`,
//! PR 3) deliberately left out:
//!
//! * [`Deadline`] — a per-request time budget on an injectable
//!   [`Clock`], checked between service stages so an operation returns
//!   a typed [`ManagedError::DeadlineExceeded`] instead of running
//!   long.
//! * [`Backoff`] + [`RetryBudget`] — decorrelated-jitter exponential
//!   backoff (deterministic per seed, always within `[base, cap]`)
//!   gated by a token-bucket budget, so retryable failures (e.g.
//!   dict-generation decode misses) never amplify into retry storms.
//! * [`CircuitBreaker`] — a per-(use case, op) Closed → Open →
//!   HalfOpen state machine over rolling error-rate windows
//!   ([`WindowedCounter`]), driven by the same injectable clock so
//!   tests walk it deterministically with a
//!   [`ManualClock`](telemetry::ManualClock).
//! * [`AdmissionController`] — a concurrency limiter with a brownout
//!   degradation ladder: under load the service first drops to a
//!   cheaper compression level, then to passthrough frames, then
//!   sheds with a typed [`ManagedError::Overloaded`].
//!
//! Everything here is policy + mechanism only; the wiring through
//! `compress`/`decompress` lives in [`crate::service`].
//!
//! [`ManagedError::DeadlineExceeded`]: crate::ManagedError::DeadlineExceeded
//! [`ManagedError::Overloaded`]: crate::ManagedError::Overloaded

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use telemetry::{Clock, WindowConfig, WindowedCounter};

/// Breaker transitions retained for inspection (oldest dropped first).
const MAX_TRANSITIONS: usize = 256;

// ---------------------------------------------------------------------
// Policy configuration
// ---------------------------------------------------------------------

/// The full resilience policy attached to a managed service instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResiliencePolicy {
    /// Per-request time budget in nanoseconds; 0 disables deadlines.
    pub deadline_nanos: u64,
    /// Retry/backoff policy for retryable decode failures.
    pub retry: RetryPolicy,
    /// Circuit-breaker policy, one breaker per (use case, op).
    pub breaker: BreakerConfig,
    /// Admission control and the brownout degradation ladder.
    pub admission: AdmissionConfig,
}

/// Retry policy: attempt count, backoff shape, and token-bucket budget.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum retries of one transiently failing attempt.
    pub max_attempts: u32,
    /// Backoff lower bound in nanoseconds.
    pub base_nanos: u64,
    /// Backoff upper bound in nanoseconds.
    pub cap_nanos: u64,
    /// Tokens earned per admitted request (classic retry-budget ratio:
    /// 0.1 allows retry volume up to 10% of request volume).
    pub budget_ratio: f64,
    /// Token-bucket burst capacity.
    pub budget_cap: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_nanos: 100_000,   // 100 µs
            cap_nanos: 10_000_000, // 10 ms
            budget_ratio: 0.1,
            budget_cap: 10.0,
        }
    }
}

/// Circuit-breaker policy.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Rolling window the error rate is computed over.
    pub window: WindowConfig,
    /// Minimum samples in the window before the breaker may open.
    pub min_samples: u64,
    /// Error-rate threshold in `[0, 1]` that opens the breaker.
    pub open_error_rate: f64,
    /// Time the breaker stays open before probing (HalfOpen).
    pub cooldown_nanos: u64,
    /// Consecutive HalfOpen probe successes required to close.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: WindowConfig::new(500_000_000, 10), // 5 s rolling
            min_samples: 10,
            open_error_rate: 0.5,
            cooldown_nanos: 2_000_000_000, // 2 s
            probe_successes: 3,
        }
    }
}

/// Admission-control policy. Thresholds are occupancy (in-flight
/// requests including the one being admitted): occupancy above
/// `degrade_at` drops to `cheap_level`, above `passthrough_at` skips
/// the codec entirely (stored MCPT frames), above `max_inflight` the
/// request is shed with [`crate::ManagedError::Overloaded`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Hard concurrency limit; acquisition beyond it sheds.
    pub max_inflight: usize,
    /// Occupancy above which compression drops to `cheap_level`.
    pub degrade_at: usize,
    /// Occupancy above which frames ship as passthrough.
    pub passthrough_at: usize,
    /// The cheaper zstdx level used on the first ladder step.
    pub cheap_level: i32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            degrade_at: 32,
            passthrough_at: 48,
            cheap_level: 1,
        }
    }
}

// ---------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------

/// A per-request time budget on an injectable clock. A zero budget
/// means "no deadline" and never expires.
#[derive(Debug, Clone)]
pub struct Deadline {
    clock: Arc<dyn Clock>,
    start_nanos: u64,
    budget_nanos: u64,
}

impl Deadline {
    /// Starts a deadline of `budget_nanos` from "now" on `clock`.
    pub fn new(clock: Arc<dyn Clock>, budget_nanos: u64) -> Self {
        let start_nanos = clock.now_nanos();
        Self {
            clock,
            start_nanos,
            budget_nanos,
        }
    }

    /// Nanoseconds elapsed since the deadline started.
    pub fn elapsed_nanos(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start_nanos)
    }

    /// The configured budget (0 = unlimited).
    pub fn budget_nanos(&self) -> u64 {
        self.budget_nanos
    }

    /// Whether the budget has been exceeded.
    pub fn expired(&self) -> bool {
        self.budget_nanos > 0 && self.elapsed_nanos() > self.budget_nanos
    }
}

// ---------------------------------------------------------------------
// Decorrelated-jitter backoff
// ---------------------------------------------------------------------

/// Decorrelated-jitter exponential backoff: each delay is drawn
/// uniformly from `[base, min(cap, prev * 3)]`, so consecutive delays
/// decorrelate across callers while growing geometrically. The RNG is
/// a seeded SplitMix64, making the sequence deterministic per seed —
/// the property the chaos harness and proptests pin.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: u64,
    cap: u64,
    prev: u64,
    state: u64,
}

impl Backoff {
    /// Creates a backoff for `policy`, seeded with `seed`.
    pub fn new(policy: &RetryPolicy, seed: u64) -> Self {
        let base = policy.base_nanos;
        let cap = policy.cap_nanos.max(base);
        Self {
            base,
            cap,
            prev: base,
            state: seed,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next delay in nanoseconds, always within `[base, cap]`.
    pub fn next_delay_nanos(&mut self) -> u64 {
        let upper = self.prev.saturating_mul(3).clamp(self.base, self.cap);
        let span = upper - self.base;
        let jitter = if span == 0 {
            0
        } else {
            self.next_u64() % (span + 1)
        };
        let delay = self.base + jitter;
        self.prev = delay;
        delay
    }
}

// ---------------------------------------------------------------------
// Retry budget (token bucket)
// ---------------------------------------------------------------------

/// A token-bucket retry budget: every admitted request deposits
/// `budget_ratio` tokens (up to `budget_cap`); every retry withdraws
/// one. When the bucket runs dry retries are denied, bounding total
/// retry volume to `ratio × requests + cap` — the classic no-retry-storm
/// guarantee. Token arithmetic is in milli-tokens on one atomic, so the
/// budget is exact under concurrent use.
#[derive(Debug)]
pub struct RetryBudget {
    tokens_milli: AtomicU64,
    ratio_milli: u64,
    cap_milli: u64,
}

impl RetryBudget {
    /// Creates a budget from the policy knobs, starting full.
    pub fn new(policy: &RetryPolicy) -> Self {
        let cap_milli = (policy.budget_cap.max(0.0) * 1000.0) as u64;
        Self {
            tokens_milli: AtomicU64::new(cap_milli),
            ratio_milli: (policy.budget_ratio.max(0.0) * 1000.0) as u64,
            cap_milli,
        }
    }

    /// Deposits the per-request earn, saturating at the cap.
    pub fn deposit(&self) {
        let _ = self
            .tokens_milli
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some((cur + self.ratio_milli).min(self.cap_milli))
            });
    }

    /// Withdraws one token; `false` when the budget denies the retry.
    pub fn try_spend(&self) -> bool {
        self.tokens_milli
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                cur.checked_sub(1000)
            })
            .is_ok()
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens_milli.load(Ordering::Acquire) as f64 / 1000.0
    }
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; outcomes feed the rolling error-rate window.
    Closed,
    /// Tripped: attempts fast-fail until the cooldown elapses.
    Open,
    /// Probing: a limited number of attempts are let through; enough
    /// successes close the breaker, any failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable label (`closed` / `open` / `half_open`).
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Gauge encoding: closed 0, open 1, half-open 2.
    pub fn as_gauge(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        }
    }
}

/// What the breaker allows for the next attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed: proceed normally.
    Allow,
    /// HalfOpen: proceed, but this attempt is a recovery probe.
    Probe,
    /// Open: skip the guarded work and degrade.
    FastFail,
}

/// One recorded state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Clock time of the transition, nanoseconds.
    pub at_nanos: u64,
    /// The state entered.
    pub to: BreakerState,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    good: WindowedCounter,
    bad: WindowedCounter,
    opened_at: u64,
    probes_ok: u32,
    transitions: Vec<BreakerTransition>,
}

/// A Closed → Open → HalfOpen circuit breaker over rolling error-rate
/// windows. All time comes from the injected [`Clock`], so tests drive
/// the full state walk with a [`ManualClock`](telemetry::ManualClock).
/// Every transition drops a `resilience.breaker.*` instant on the
/// calling thread's flight-recorder track.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// Creates a closed breaker on `clock`.
    pub fn new(cfg: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        let inner = BreakerInner {
            state: BreakerState::Closed,
            good: WindowedCounter::new(cfg.window, Arc::clone(&clock)),
            bad: WindowedCounter::new(cfg.window, Arc::clone(&clock)),
            opened_at: 0,
            probes_ok: 0,
            transitions: Vec::new(),
        };
        Self {
            cfg,
            clock,
            inner: Mutex::new(inner),
        }
    }

    fn transition(inner: &mut BreakerInner, now: u64, to: BreakerState) {
        inner.state = to;
        if inner.transitions.len() >= MAX_TRANSITIONS {
            inner.transitions.remove(0);
        }
        inner
            .transitions
            .push(BreakerTransition { at_nanos: now, to });
        telemetry::trace::instant(match to {
            BreakerState::Closed => "resilience.breaker.closed",
            BreakerState::Open => "resilience.breaker.open",
            BreakerState::HalfOpen => "resilience.breaker.half_open",
        });
    }

    /// Consults the breaker before an attempt.
    pub fn admit(&self) -> BreakerDecision {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::HalfOpen => BreakerDecision::Probe,
            BreakerState::Open => {
                let now = self.clock.now_nanos();
                if now.saturating_sub(inner.opened_at) >= self.cfg.cooldown_nanos {
                    inner.probes_ok = 0;
                    Self::transition(&mut inner, now, BreakerState::HalfOpen);
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::FastFail
                }
            }
        }
    }

    /// Records an attempt outcome and advances the state machine.
    pub fn record(&self, ok: bool) {
        let now = self.clock.now_nanos();
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                if ok {
                    inner.good.inc();
                } else {
                    inner.bad.inc();
                }
                let bad = inner.bad.total();
                let total = bad + inner.good.total();
                if total >= self.cfg.min_samples
                    && bad as f64 / total as f64 >= self.cfg.open_error_rate
                {
                    inner.opened_at = now;
                    Self::transition(&mut inner, now, BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    inner.probes_ok += 1;
                    if inner.probes_ok >= self.cfg.probe_successes {
                        // Fresh windows: the error burst that opened the
                        // breaker must not instantly re-trip it.
                        inner.good = WindowedCounter::new(self.cfg.window, Arc::clone(&self.clock));
                        inner.bad = WindowedCounter::new(self.cfg.window, Arc::clone(&self.clock));
                        Self::transition(&mut inner, now, BreakerState::Closed);
                    }
                } else {
                    inner.opened_at = now;
                    inner.probes_ok = 0;
                    Self::transition(&mut inner, now, BreakerState::Open);
                }
            }
            BreakerState::Open => {
                // Late outcomes of attempts admitted before the trip:
                // failures refresh the cooldown, successes are moot.
                if !ok {
                    inner.opened_at = now;
                }
            }
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// The recorded transitions, oldest first (bounded).
    pub fn transitions(&self) -> Vec<BreakerTransition> {
        self.inner.lock().transitions.clone()
    }
}

// ---------------------------------------------------------------------
// Admission control + brownout ladder
// ---------------------------------------------------------------------

/// The service mode the brownout ladder selected for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Full service: configured level, dictionary path, training.
    Normal,
    /// First ladder step: cheaper compression level, no retraining.
    CheapLevel,
    /// Second step: stored (MCPT) frames, no codec work at all.
    Passthrough,
    /// Final step: the request was shed with a typed error.
    Shed,
}

impl ServiceMode {
    /// Stable label (`normal` / `cheap_level` / `passthrough` / `shed`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ServiceMode::Normal => "normal",
            ServiceMode::CheapLevel => "cheap_level",
            ServiceMode::Passthrough => "passthrough",
            ServiceMode::Shed => "shed",
        }
    }

    /// Gauge encoding: normal 0, cheap 1, passthrough 2, shed 3.
    pub fn as_gauge(&self) -> f64 {
        match self {
            ServiceMode::Normal => 0.0,
            ServiceMode::CheapLevel => 1.0,
            ServiceMode::Passthrough => 2.0,
            ServiceMode::Shed => 3.0,
        }
    }

    /// Flight-recorder instant name for a transition into this mode.
    pub fn trace_name(&self) -> &'static str {
        match self {
            ServiceMode::Normal => "resilience.mode.normal",
            ServiceMode::CheapLevel => "resilience.mode.cheap_level",
            ServiceMode::Passthrough => "resilience.mode.passthrough",
            ServiceMode::Shed => "resilience.mode.shed",
        }
    }
}

/// A concurrency limiter with the brownout ladder. The counter is a
/// single atomic: acquisition increments, the permit's drop decrements,
/// and an over-limit acquisition backs its increment out — so permits
/// are never lost under concurrency (the 8-thread stress test pins
/// this).
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    inflight: AtomicUsize,
}

impl AdmissionController {
    /// Creates a shareable controller.
    pub fn new(cfg: AdmissionConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            inflight: AtomicUsize::new(0),
        })
    }

    /// Tries to admit one request. `None` means shed.
    pub fn try_acquire(self: &Arc<Self>) -> Option<AdmissionPermit> {
        let occ = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        if occ > self.cfg.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        let mode = if occ > self.cfg.passthrough_at {
            ServiceMode::Passthrough
        } else if occ > self.cfg.degrade_at {
            ServiceMode::CheapLevel
        } else {
            ServiceMode::Normal
        };
        Some(AdmissionPermit {
            ctl: Arc::clone(self),
            mode,
        })
    }

    /// Requests currently holding permits.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// The configured thresholds.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }
}

/// A held admission slot; dropping it releases the slot.
#[derive(Debug)]
pub struct AdmissionPermit {
    ctl: Arc<AdmissionController>,
    mode: ServiceMode,
}

impl AdmissionPermit {
    /// The ladder mode selected at admission time.
    pub fn mode(&self) -> ServiceMode {
        self.mode
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.ctl.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------
// Operational fault hook
// ---------------------------------------------------------------------

/// Where an operational fault hook is being consulted: one codec
/// attempt of one operation.
#[derive(Debug, Clone, Copy)]
pub struct FaultSite<'a> {
    /// The use case being served.
    pub use_case: &'a str,
    /// `"compress"` or `"decompress"`.
    pub op: &'static str,
    /// 0 for the first attempt, incrementing per retry.
    pub attempt: u32,
}

/// An injectable operational fault hook, consulted before every codec
/// attempt. Returning `true` injects a transient failure for that
/// attempt (the codec is not called). Hooks own their side effects —
/// the chaos injectors advance a shared [`ManualClock`]
/// (telemetry::ManualClock) here to model latency spikes and clock
/// skew. Production services leave the hook unset; it costs one
/// `Option` check.
pub type FaultHook = Arc<dyn Fn(&FaultSite<'_>) -> bool + Send + Sync>;

/// How the service waits out a backoff delay. The default sleeps the
/// thread; deterministic harnesses install one that advances a
/// [`ManualClock`](telemetry::ManualClock) instead.
pub type Sleeper = Arc<dyn Fn(u64) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::ManualClock;

    const MS: u64 = 1_000_000;

    fn manual() -> (Arc<ManualClock>, Arc<dyn Clock>) {
        let c = ManualClock::shared();
        let d = Arc::clone(&c) as Arc<dyn Clock>;
        (c, d)
    }

    #[test]
    fn deadline_expires_on_the_injected_clock() {
        let (manual, clock) = manual();
        let d = Deadline::new(clock, 10 * MS);
        assert!(!d.expired());
        manual.advance(10 * MS);
        assert!(!d.expired(), "exactly at budget is not over it");
        manual.advance(1);
        assert!(d.expired());
        assert_eq!(d.elapsed_nanos(), 10 * MS + 1);
    }

    #[test]
    fn zero_deadline_never_expires() {
        let (manual, clock) = manual();
        let d = Deadline::new(clock, 0);
        manual.advance(u64::MAX / 2);
        assert!(!d.expired());
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let policy = RetryPolicy::default();
        let a: Vec<u64> = {
            let mut b = Backoff::new(&policy, 7);
            (0..32).map(|_| b.next_delay_nanos()).collect()
        };
        let b: Vec<u64> = {
            let mut b = Backoff::new(&policy, 7);
            (0..32).map(|_| b.next_delay_nanos()).collect()
        };
        let c: Vec<u64> = {
            let mut b = Backoff::new(&policy, 8);
            (0..32).map(|_| b.next_delay_nanos()).collect()
        };
        assert_eq!(a, b, "same seed replays identically");
        assert_ne!(a, c, "different seeds differ");
        for d in &a {
            assert!(*d >= policy.base_nanos && *d <= policy.cap_nanos);
        }
    }

    #[test]
    fn retry_budget_bounds_retry_volume() {
        let budget = RetryBudget::new(&RetryPolicy {
            budget_ratio: 0.5,
            budget_cap: 2.0,
            ..RetryPolicy::default()
        });
        // Burst capacity: 2 tokens.
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "bucket is dry");
        // Two requests earn one token.
        budget.deposit();
        assert!(!budget.try_spend(), "half a token is not a retry");
        budget.deposit();
        assert!(budget.try_spend());
        // Deposits saturate at the cap.
        for _ in 0..100 {
            budget.deposit();
        }
        assert!((budget.tokens() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let (manual, clock) = manual();
        let cfg = BreakerConfig {
            min_samples: 4,
            open_error_rate: 0.5,
            cooldown_nanos: 100 * MS,
            probe_successes: 2,
            ..BreakerConfig::default()
        };
        let b = CircuitBreaker::new(cfg, clock);
        assert_eq!(b.state(), BreakerState::Closed);
        // Below min_samples nothing trips, even at 100% errors.
        for _ in 0..3 {
            assert_eq!(b.admit(), BreakerDecision::Allow);
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false); // 4th failure: 4/4 >= 0.5 with min samples met
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), BreakerDecision::FastFail);
        // Cooldown not yet elapsed.
        manual.advance(99 * MS);
        assert_eq!(b.admit(), BreakerDecision::FastFail);
        // Cooldown elapses: probing starts.
        manual.advance(MS);
        assert_eq!(b.admit(), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A probe failure re-opens and restarts the cooldown.
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        manual.advance(100 * MS);
        assert_eq!(b.admit(), BreakerDecision::Probe);
        b.record(true);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        assert_eq!(b.admit(), BreakerDecision::Probe);
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        // The recovery reset the windows: one immediate failure does
        // not re-trip on the stale burst.
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed);
        // The whole walk is on the transition log.
        let walk: Vec<BreakerState> = b.transitions().iter().map(|t| t.to).collect();
        assert_eq!(
            walk,
            vec![
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed,
            ]
        );
    }

    #[test]
    fn breaker_needs_error_rate_not_just_errors() {
        let (_manual, clock) = manual();
        let b = CircuitBreaker::new(
            BreakerConfig {
                min_samples: 10,
                open_error_rate: 0.5,
                ..BreakerConfig::default()
            },
            clock,
        );
        // 30% errors over plenty of samples: stays closed.
        for i in 0..100 {
            b.record(i % 10 >= 3);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn admission_ladder_steps_with_occupancy() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 6,
            degrade_at: 2,
            passthrough_at: 4,
            cheap_level: 1,
        });
        let mut permits = Vec::new();
        let mut modes = Vec::new();
        for _ in 0..6 {
            let p = ctl.try_acquire().expect("within limit");
            modes.push(p.mode());
            permits.push(p);
        }
        assert_eq!(
            modes,
            vec![
                ServiceMode::Normal,
                ServiceMode::Normal,
                ServiceMode::CheapLevel,
                ServiceMode::CheapLevel,
                ServiceMode::Passthrough,
                ServiceMode::Passthrough,
            ]
        );
        assert!(ctl.try_acquire().is_none(), "7th is shed");
        permits.pop();
        let reacquired = ctl.try_acquire();
        assert!(reacquired.is_some(), "released slot re-admits");
        drop(permits);
        assert_eq!(ctl.inflight(), 1, "one re-acquired permit still live");
        drop(reacquired);
        assert_eq!(ctl.inflight(), 0);
    }

    #[test]
    fn admission_accounting_loses_no_permits_under_8_threads() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight: 5,
            degrade_at: 2,
            passthrough_at: 4,
            cheap_level: 1,
        });
        let shed = Arc::new(AtomicUsize::new(0));
        let served = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ctl = Arc::clone(&ctl);
                let shed = Arc::clone(&shed);
                let served = Arc::new(Arc::clone(&served));
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        match ctl.try_acquire() {
                            Some(p) => {
                                assert!(ctl.inflight() <= 5, "limit breached");
                                served.fetch_add(1, Ordering::Relaxed);
                                drop(p);
                            }
                            None => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(ctl.inflight(), 0, "every permit was returned");
        assert_eq!(
            served.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed),
            8 * 2000
        );
        // With limit 5 and 8 spinning threads, both outcomes occurred.
        assert!(served.load(Ordering::Relaxed) > 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Decorrelated-jitter backoff is deterministic per seed and
        /// every delay stays within [base, cap].
        #[test]
        fn backoff_deterministic_and_bounded(
            seed in any::<u64>(),
            base in 0u64..10_000_000,
            cap_extra in 0u64..100_000_000,
            n in 1usize..64,
        ) {
            let policy = RetryPolicy {
                base_nanos: base,
                cap_nanos: base + cap_extra,
                ..RetryPolicy::default()
            };
            let mut a = Backoff::new(&policy, seed);
            let mut b = Backoff::new(&policy, seed);
            for _ in 0..n {
                let da = a.next_delay_nanos();
                let db = b.next_delay_nanos();
                prop_assert_eq!(da, db);
                prop_assert!(da >= policy.base_nanos);
                prop_assert!(da <= policy.cap_nanos.max(policy.base_nanos));
            }
        }

        /// Total granted retries never exceed ratio × requests + cap.
        #[test]
        fn retry_budget_never_overruns(
            requests in 0u64..500,
            attempts_per in 1u64..5,
            ratio in 0.0f64..1.0,
            cap in 0.0f64..20.0,
        ) {
            let policy = RetryPolicy {
                budget_ratio: ratio,
                budget_cap: cap,
                ..RetryPolicy::default()
            };
            let budget = RetryBudget::new(&policy);
            let mut granted = 0u64;
            for _ in 0..requests {
                budget.deposit();
                for _ in 0..attempts_per {
                    if budget.try_spend() {
                        granted += 1;
                    }
                }
            }
            let allowance = ratio * requests as f64 + cap;
            prop_assert!(
                granted as f64 <= allowance + 1e-6,
                "granted {} > allowance {}", granted, allowance
            );
        }
    }
}
