//! Managed Compression — a stateful dictionary-lifecycle service.
//!
//! The paper (§I, §II-B) describes Meta's *Managed Compression*:
//! "services like Managed Compression expose a stateless interface to
//! users while the service keeps the states to train dictionaries using
//! previous samples to provide a better performance." This crate
//! implements that architecture over the [`codecs`] stack:
//!
//! * Clients call [`ManagedCompression::compress`]/[`decompress`] with a
//!   *use case* name and bytes — no dictionary handling on their side.
//! * The service reservoir-samples a fraction of the traffic per use
//!   case, periodically (re)trains a dictionary from the reservoir, and
//!   rolls it out as a new **version**.
//! * Frames embed the dictionary version; older versions are retained
//!   so in-flight and at-rest data stays decodable across rollouts.
//! * The service degrades gracefully under hostile or damaged input:
//!   incompressible (or codec-failing) payloads ship as stored
//!   *passthrough* frames, a frame that misses its dictionary is retried
//!   against every retained version, and a frame that still fails is
//!   **quarantined** ([`ManagedError::Quarantined`]) rather than taking
//!   the service down — all of it visible in telemetry
//!   (`managed.passthrough`, `managed.decode_retries`,
//!   `managed.quarantined`) and on the flight recorder.
//!
//! [`decompress`]: ManagedCompression::decompress
//!
//! # Example
//!
//! ```
//! use managed::{ManagedCompression, ManagedConfig};
//!
//! let mut svc = ManagedCompression::new(ManagedConfig::default());
//! let payload = br#"{"type":"user.profile","name":"n","flags":[1,2]}"#;
//! let frame = svc.compress("user-profiles", payload).unwrap();
//! assert_eq!(svc.decompress("user-profiles", &frame).unwrap(), payload);
//! ```

#![warn(missing_docs)]

mod reservoir;
pub mod resilience;
mod service;

pub use reservoir::Reservoir;
pub use resilience::{
    AdmissionConfig, AdmissionController, AdmissionPermit, Backoff, BreakerConfig, BreakerDecision,
    BreakerState, BreakerTransition, CircuitBreaker, Deadline, FaultHook, FaultSite,
    ResiliencePolicy, RetryBudget, RetryPolicy, ServiceMode, Sleeper,
};
pub use service::{ManagedCompression, ManagedConfig, UseCaseStats, PASSTHROUGH_MAGIC};

/// Errors returned by the managed service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagedError {
    /// The named use case has never been seen by this service instance.
    UnknownUseCase(String),
    /// The frame references a dictionary version that has been retired.
    RetiredDictionary {
        /// The use case the frame belongs to.
        use_case: String,
        /// The retired dictionary version the frame references.
        version: u32,
    },
    /// The underlying codec rejected the frame.
    Codec(codecs::CodecError),
    /// The frame failed to decode under every retained dictionary
    /// version and was quarantined for offline inspection. The service
    /// stays up; the frame is retrievable via
    /// [`ManagedCompression::quarantined`].
    Quarantined {
        /// The use case the frame was submitted under.
        use_case: String,
        /// The codec error from the final decode attempt.
        source: codecs::CodecError,
    },
    /// The request's time budget ran out between service stages. The
    /// work already done is abandoned; no partial frame is returned.
    DeadlineExceeded {
        /// The use case the request was submitted under.
        use_case: String,
        /// Nanoseconds elapsed when the deadline check fired.
        elapsed_nanos: u64,
        /// The configured budget in nanoseconds.
        budget_nanos: u64,
    },
    /// Admission control shed the request: the service is past its
    /// concurrency limit and the brownout ladder is exhausted.
    Overloaded {
        /// The use case the request was submitted under.
        use_case: String,
    },
}

impl std::fmt::Display for ManagedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagedError::UnknownUseCase(u) => write!(f, "unknown use case: {u}"),
            ManagedError::RetiredDictionary { use_case, version } => {
                write!(f, "dictionary v{version} of {use_case} has been retired")
            }
            ManagedError::Codec(e) => write!(f, "codec error: {e}"),
            ManagedError::Quarantined { use_case, source } => {
                write!(f, "frame quarantined for {use_case}: {source}")
            }
            ManagedError::DeadlineExceeded {
                use_case,
                elapsed_nanos,
                budget_nanos,
            } => write!(
                f,
                "deadline exceeded for {use_case}: {elapsed_nanos}ns elapsed of {budget_nanos}ns budget"
            ),
            ManagedError::Overloaded { use_case } => {
                write!(f, "request for {use_case} shed: service overloaded")
            }
        }
    }
}

impl std::error::Error for ManagedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManagedError::Codec(e) => Some(e),
            ManagedError::Quarantined { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<codecs::CodecError> for ManagedError {
    fn from(e: codecs::CodecError) -> Self {
        ManagedError::Codec(e)
    }
}

/// Result alias for managed-service operations.
pub type Result<T> = std::result::Result<T, ManagedError>;
