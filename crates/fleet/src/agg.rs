//! Aggregation queries turning raw observations into the paper's
//! figures.
//!
//! Each function corresponds to one fleet-level figure; the figure
//! benches print their outputs as tables. Cycle shares are computed by
//! weighting each service's measured time distribution by its declared
//! fleet weight and compression tax, mirroring how the paper's profiler
//! aggregates sampled cycles across heterogeneous services.

use std::collections::BTreeMap;

use codecs::Algorithm;

use crate::profiler::FleetProfile;
use crate::services::Category;

/// A service's contribution to fleet compression cycles: its fleet
/// weight times its compression tax, distributed over its observations
/// proportionally to measured time.
fn service_fleet_share(p: &FleetProfile, service: &str) -> f64 {
    p.services
        .iter()
        .find(|s| s.name == service)
        .map(|s| s.fleet_weight * s.compression_tax)
        .unwrap_or(0.0)
}

/// Fraction of a service's compression time in a predicate-selected
/// subset of its observations.
fn fraction_of_service<F>(p: &FleetProfile, service: &str, f: F) -> f64
where
    F: Fn(&crate::profiler::Observation) -> f64,
{
    let total = p.compression_secs(service);
    if total == 0.0 {
        return 0.0;
    }
    let part: f64 = p
        .observations
        .iter()
        .filter(|o| o.service == service)
        .map(f)
        .sum();
    part / total
}

/// Fleet-wide compression tax (paper §III-B: 4.6% of compute cycles).
pub fn fleet_compression_tax(p: &FleetProfile) -> f64 {
    p.services
        .iter()
        .map(|s| s.fleet_weight * s.compression_tax)
        .sum()
}

/// Fleet cycle share per algorithm (paper §III-B: Zstd 3.9%, LZ4 0.4%,
/// Zlib 0.3%). Returns (algorithm, fraction-of-fleet-cycles).
pub fn algorithm_split(p: &FleetProfile) -> Vec<(Algorithm, f64)> {
    Algorithm::ALL
        .iter()
        .map(|&a| {
            let share: f64 = p
                .services
                .iter()
                .map(|s| {
                    let frac = fraction_of_service(p, s.name, |o| {
                        if o.algorithm == a {
                            o.compress_secs + o.decompress_secs
                        } else {
                            0.0
                        }
                    });
                    service_fleet_share(p, s.name) * frac
                })
                .sum();
            (a, share)
        })
        .collect()
}

/// Figure 2: compute cycles (%) used by zstdx per service category.
pub fn category_zstd_cycles(p: &FleetProfile) -> Vec<(Category, f64)> {
    Category::ALL
        .iter()
        .map(|&cat| {
            let (zstd_cycles, total_cycles) =
                p.services
                    .iter()
                    .filter(|s| s.category == cat)
                    .fold((0.0, 0.0), |(z, t), s| {
                        let zfrac = fraction_of_service(p, s.name, |o| {
                            if o.algorithm == Algorithm::Zstdx {
                                o.compress_secs + o.decompress_secs
                            } else {
                                0.0
                            }
                        });
                        (
                            z + s.fleet_weight * s.compression_tax * zfrac,
                            t + s.fleet_weight,
                        )
                    });
            (
                cat,
                if total_cycles > 0.0 {
                    zstd_cycles / total_cycles
                } else {
                    0.0
                },
            )
        })
        .collect()
}

/// Figure 3: compression vs decompression cycle split, per category and
/// fleet-wide. Returns (label, compression-fraction) with the fleet row
/// last.
pub fn comp_decomp_split(p: &FleetProfile) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let frac_for = |services: Vec<&str>| {
        let (c, d) = p
            .observations
            .iter()
            .filter(|o| services.contains(&o.service))
            .fold((0.0, 0.0), |(c, d), o| {
                // Weight observation time by the service's fleet share so
                // big services dominate, as in sampled profiling.
                let w = service_fleet_share(p, o.service)
                    / p.compression_secs(o.service).max(f64::MIN_POSITIVE);
                (c + w * o.compress_secs, d + w * o.decompress_secs)
            });
        if c + d > 0.0 {
            c / (c + d)
        } else {
            0.0
        }
    };
    for cat in Category::ALL {
        let names: Vec<&str> = p
            .services
            .iter()
            .filter(|s| s.category == cat)
            .map(|s| s.name)
            .collect();
        rows.push((cat.name().to_string(), frac_for(names)));
    }
    let all: Vec<&str> = p.services.iter().map(|s| s.name).collect();
    rows.push(("Fleet".to_string(), frac_for(all)));
    rows
}

/// Figure 4: zstdx level usage by cycles, bucketed as the paper plots
/// it. Returns (bucket label, fraction of zstd cycles).
pub fn level_usage(p: &FleetProfile) -> Vec<(String, f64)> {
    let mut buckets: BTreeMap<u8, f64> = BTreeMap::new();
    let mut total = 0.0;
    for o in &p.observations {
        if o.algorithm != Algorithm::Zstdx {
            continue;
        }
        let w = service_fleet_share(p, o.service)
            / p.compression_secs(o.service).max(f64::MIN_POSITIVE);
        let secs = w * (o.compress_secs + o.decompress_secs);
        let bucket = match o.level {
            i32::MIN..=0 => 0,
            1..=4 => 1,
            5..=9 => 2,
            _ => 3,
        };
        *buckets.entry(bucket).or_default() += secs;
        total += secs;
    }
    let labels = ["negative", "1-4", "5-9", "10+"];
    labels
        .iter()
        .enumerate()
        .map(|(i, l)| {
            (
                l.to_string(),
                buckets.get(&(i as u8)).copied().unwrap_or(0.0) / total.max(1e-12),
            )
        })
        .collect()
}

/// Figure 5: average compression input size per service (bytes/call).
pub fn service_block_sizes(p: &FleetProfile) -> Vec<(&'static str, f64)> {
    p.services
        .iter()
        .map(|s| {
            let (bytes, calls) = p
                .observations
                .iter()
                .filter(|o| o.service == s.name)
                .fold((0u64, 0u64), |(b, c), o| (b + o.bytes, c + o.comp_calls));
            (
                s.name,
                if calls > 0 {
                    bytes as f64 / calls as f64
                } else {
                    0.0
                },
            )
        })
        .collect()
}

/// Figure 6: compute cycles (%) used by zstdx for the Table I services.
pub fn service_zstd_cycles(p: &FleetProfile) -> Vec<(&'static str, f64)> {
    crate::services::table1()
        .iter()
        .map(|s| {
            let zfrac = fraction_of_service(p, s.name, |o| {
                if o.algorithm == Algorithm::Zstdx {
                    o.compress_secs + o.decompress_secs
                } else {
                    0.0
                }
            });
            (s.name, s.compression_tax * zfrac)
        })
        .collect()
}

/// One row of Figure 7: a warehouse service's zstd time split.
#[derive(Debug, Clone)]
pub struct WarehouseSplit {
    /// Service name (DW1–DW4).
    pub service: &'static str,
    /// Fraction of zstd time spent compressing (vs decompressing).
    pub compression_fraction: f64,
    /// Of compression time: fraction in the match-finding stage.
    pub match_find_fraction: f64,
}

/// Figure 7: compression/decompression and match-find/entropy splits
/// for the warehouse services.
pub fn warehouse_split(p: &FleetProfile) -> Vec<WarehouseSplit> {
    ["DW1", "DW2", "DW3", "DW4"]
        .iter()
        .map(|&name| {
            let obs: Vec<&crate::profiler::Observation> = p
                .observations
                .iter()
                .filter(|o| o.service == name)
                .collect();
            let comp: f64 = obs.iter().map(|o| o.compress_secs).sum();
            let decomp: f64 = obs.iter().map(|o| o.decompress_secs).sum();
            let mf: f64 = obs.iter().map(|o| o.match_find_secs).sum();
            let ent: f64 = obs.iter().map(|o| o.entropy_secs).sum();
            WarehouseSplit {
                service: name,
                compression_fraction: comp / (comp + decomp).max(f64::MIN_POSITIVE),
                match_find_fraction: mf / (mf + ent).max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile_fleet, ProfileConfig};
    use std::sync::OnceLock;

    fn profile() -> &'static FleetProfile {
        static P: OnceLock<FleetProfile> = OnceLock::new();
        P.get_or_init(|| {
            profile_fleet(&ProfileConfig {
                work_units: 3,
                seed: 99,
                stage_deadline_nanos: 0,
            })
        })
    }

    #[test]
    fn fleet_tax_in_paper_range() {
        let tax = fleet_compression_tax(profile());
        assert!((0.03..=0.06).contains(&tax), "tax {tax}");
    }

    #[test]
    fn zstd_dominates_algorithm_split() {
        let split = algorithm_split(profile());
        let get = |a: Algorithm| split.iter().find(|(x, _)| *x == a).unwrap().1;
        let z = get(Algorithm::Zstdx);
        let l = get(Algorithm::Lz4x);
        let g = get(Algorithm::Zlibx);
        assert!(z > 5.0 * l, "zstd {z} vs lz4 {l}");
        assert!(z > 5.0 * g, "zstd {z} vs zlib {g}");
        assert!(l > 0.0 && g > 0.0);
        // The three shares sum to (at most) the fleet tax.
        assert!(z + l + g <= fleet_compression_tax(profile()) + 1e-9);
    }

    #[test]
    fn warehouse_leads_categories() {
        let rows = category_zstd_cycles(profile());
        let get = |c: Category| rows.iter().find(|(x, _)| *x == c).unwrap().1;
        let dw = get(Category::DataWarehouse);
        for c in [
            Category::Web,
            Category::Feed,
            Category::Ads,
            Category::Cache,
        ] {
            assert!(dw > get(c), "DW {dw} should exceed {c}");
        }
        // Paper range: 1.8% to 21.2%.
        assert!(dw > 0.10 && dw < 0.30, "DW category cycles {dw}");
    }

    #[test]
    fn decompression_calls_outnumber_compression_calls() {
        // The paper's Figure 3 discussion: "the number of decompression
        // calls is substantially higher than the number of compression
        // calls across services" — while cycles can still lean toward
        // compression because decompression is 3-100x faster.
        let p = profile();
        let (comp_calls, decomp_calls) = p.observations.iter().fold((0u64, 0u64), |(c, d), o| {
            (c + o.comp_calls, d + o.decomp_calls)
        });
        assert!(
            decomp_calls > comp_calls * 2,
            "decomp calls {decomp_calls} vs comp calls {comp_calls}"
        );
        let rows = comp_decomp_split(p);
        let fleet = rows.last().unwrap();
        assert_eq!(fleet.0, "Fleet");
        // Cycle split stays in a sane band and every category varies.
        assert!(
            (0.2..=0.9).contains(&fleet.1),
            "fleet compression fraction {}",
            fleet.1
        );
        let dw = rows.iter().find(|(n, _)| n == "Data Warehouse").unwrap();
        assert!(dw.1 > 0.4, "write-heavy warehouse split {}", dw.1);
    }

    #[test]
    fn low_levels_dominate_usage() {
        let rows = level_usage(profile());
        let frac = |label: &str| rows.iter().find(|(l, _)| l == label).unwrap().1;
        assert!(frac("1-4") > 0.5, "levels 1-4 hold {}", frac("1-4"));
        let total: f64 = rows.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_sizes_vary_across_services() {
        let rows = service_block_sizes(profile());
        let get = |n: &str| rows.iter().find(|(s, _)| *s == n).unwrap().1;
        // Warehouse blocks are orders of magnitude bigger than cache items.
        assert!(
            get("DW1") > 50.0 * get("CACHE1"),
            "DW1 {} CACHE1 {}",
            get("DW1"),
            get("CACHE1")
        );
        assert!(get("ADS1") > get("CACHE2"));
    }

    #[test]
    fn service_cycles_match_declared_taxes() {
        let rows = service_zstd_cycles(profile());
        let get = |n: &str| rows.iter().find(|(s, _)| *s == n).unwrap().1;
        assert!(get("DW2") > get("DW4"));
        assert!(get("DW1") > 0.2);
        assert!(get("CACHE2") < 0.03);
    }

    #[test]
    fn match_finding_tracks_level() {
        let rows = warehouse_split(profile());
        let get = |n: &str| rows.iter().find(|r| r.service == n).unwrap().clone();
        let dw1 = get("DW1"); // level 7
        let dw4 = get("DW4"); // level 1
                              // Paper: up to ~80% for DW1, ~30% for DW4. The ordering is a
                              // *relative speed* property of the two stages, which unoptimized
                              // builds distort (the fast single-probe finder is
                              // disproportionately slowed by debug checks); assert it only on
                              // optimized builds — the fig07 bench demonstrates it at scale.
        if !cfg!(debug_assertions) {
            assert!(
                dw1.match_find_fraction > dw4.match_find_fraction,
                "DW1 (level 7) mf {} should exceed DW4 (level 1) mf {}",
                dw1.match_find_fraction,
                dw4.match_find_fraction
            );
        }
        assert!(dw1.match_find_fraction > 0.5);
        assert!((0.0..=1.0).contains(&dw4.match_find_fraction));
        // Write-light DW1 vs read-heavy DW4.
        assert!(dw1.compression_fraction > dw4.compression_fraction);
    }
}
