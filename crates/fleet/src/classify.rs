//! The paper's §VI-A service taxonomy and §VI-B offload guidance.
//!
//! "We have also found that the datacenter applications can be
//! categorized into A) Compression speed-sensitive (which prefers low
//! compression levels), B) Decompression speed-sensitive (which prefers
//! small block sizes), C) Latency-insensitive (which prefers high
//! compression levels), D) Small data-friendly (which prefers dictionary
//! compression)."
//!
//! And §VI-B: categories A and C suit hardware offload; B and D should
//! stay on CPU "since offloading overhead would be significant for
//! small blocks/data unless the accelerator is located very closely".

use crate::services::{ServiceSpec, Workload};

/// The four application categories of §VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServiceClass {
    /// A: compression speed-sensitive — prefers low levels.
    CompressionSpeedSensitive,
    /// B: decompression speed-sensitive — prefers small blocks.
    DecompressionSpeedSensitive,
    /// C: latency-insensitive — prefers high levels.
    LatencyInsensitive,
    /// D: small-data-friendly — prefers dictionary compression.
    SmallDataFriendly,
}

impl ServiceClass {
    /// The paper's single-letter label.
    pub fn letter(&self) -> char {
        match self {
            ServiceClass::CompressionSpeedSensitive => 'A',
            ServiceClass::DecompressionSpeedSensitive => 'B',
            ServiceClass::LatencyInsensitive => 'C',
            ServiceClass::SmallDataFriendly => 'D',
        }
    }

    /// §VI-B: whether a discrete compression accelerator helps this
    /// category (A and C), or offload overhead dominates (B and D).
    pub fn suits_hardware_offload(&self) -> bool {
        matches!(
            self,
            ServiceClass::CompressionSpeedSensitive | ServiceClass::LatencyInsensitive
        )
    }
}

impl std::fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ServiceClass::CompressionSpeedSensitive => "A: compression speed-sensitive",
            ServiceClass::DecompressionSpeedSensitive => "B: decompression speed-sensitive",
            ServiceClass::LatencyInsensitive => "C: latency-insensitive",
            ServiceClass::SmallDataFriendly => "D: small data-friendly",
        };
        f.write_str(name)
    }
}

/// Classifies a service by its usage profile. A service can land in
/// several categories (the paper's categories are not exclusive).
pub fn classify(spec: &ServiceSpec) -> Vec<ServiceClass> {
    let mut classes = Vec::new();

    // Weighted average zstd level tells the speed/ratio preference.
    let avg_level: f64 = spec
        .level_mix
        .iter()
        .map(|&(l, f)| l as f64 * f)
        .sum::<f64>();
    if avg_level <= 2.0 {
        classes.push(ServiceClass::CompressionSpeedSensitive);
    }
    if avg_level >= 5.0 {
        classes.push(ServiceClass::LatencyInsensitive);
    }

    // Read-dominated block workloads care about per-block decompression.
    if spec.reads_per_write >= 3.0
        && matches!(
            spec.workload,
            Workload::SstBlocks | Workload::CacheItems1 | Workload::CacheItems2
        )
    {
        classes.push(ServiceClass::DecompressionSpeedSensitive);
    }

    // Small typed items want dictionaries.
    if spec.workload.uses_dictionary() {
        classes.push(ServiceClass::SmallDataFriendly);
    }

    // Mixed-level services (e.g. Spark workers running several job
    // types) lean toward whichever side their average level sits on.
    if classes.is_empty() {
        classes.push(if avg_level < 3.5 {
            ServiceClass::CompressionSpeedSensitive
        } else {
            ServiceClass::LatencyInsensitive
        });
    }

    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services::registry;

    fn classes_of(name: &str) -> Vec<ServiceClass> {
        let reg = registry();
        let spec = reg.iter().find(|s| s.name == name).expect("known service");
        classify(spec)
    }

    #[test]
    fn dw1_is_latency_insensitive() {
        // Level 7 ingestion for long-term storage.
        let c = classes_of("DW1");
        assert!(c.contains(&ServiceClass::LatencyInsensitive), "{c:?}");
        assert!(!c.contains(&ServiceClass::CompressionSpeedSensitive));
    }

    #[test]
    fn dw2_shuffle_is_speed_sensitive() {
        let c = classes_of("DW2");
        assert!(
            c.contains(&ServiceClass::CompressionSpeedSensitive),
            "{c:?}"
        );
    }

    #[test]
    fn caches_are_small_data_friendly() {
        for name in ["CACHE1", "CACHE2"] {
            let c = classes_of(name);
            assert!(
                c.contains(&ServiceClass::SmallDataFriendly),
                "{name}: {c:?}"
            );
        }
    }

    #[test]
    fn kvstore_is_decompression_sensitive() {
        let c = classes_of("KVSTORE1");
        assert!(
            c.contains(&ServiceClass::DecompressionSpeedSensitive),
            "{c:?}"
        );
    }

    #[test]
    fn offload_guidance_matches_paper() {
        assert!(ServiceClass::CompressionSpeedSensitive.suits_hardware_offload());
        assert!(ServiceClass::LatencyInsensitive.suits_hardware_offload());
        assert!(!ServiceClass::DecompressionSpeedSensitive.suits_hardware_offload());
        assert!(!ServiceClass::SmallDataFriendly.suits_hardware_offload());
    }

    #[test]
    fn every_table1_service_gets_a_class() {
        for spec in crate::services::table1() {
            assert!(
                !classify(&spec).is_empty(),
                "{} fell through the taxonomy",
                spec.name
            );
        }
    }

    #[test]
    fn letters_are_stable() {
        assert_eq!(ServiceClass::CompressionSpeedSensitive.letter(), 'A');
        assert_eq!(ServiceClass::SmallDataFriendly.letter(), 'D');
    }
}
