//! Fleet model and sampling profiler — the substrate behind the paper's
//! fleet-level characterization (Figures 2–7, Table I).
//!
//! The paper profiles hundreds of thousands of production servers for 30
//! days, samples call stacks, filters for compression APIs, and
//! aggregates cycles (§III-A). We cannot run Meta's fleet, so this crate
//! reproduces the *pipeline* over a modeled fleet:
//!
//! * [`services`] — the service registry: Table I's eight case-study
//!   services plus representative Web/Feed/long-tail services, each with
//!   a usage profile (algorithm mix, level mix, reads-per-write, block
//!   size, workload generator, fleet weight).
//! * [`profiler`] — runs each service's workload through the real
//!   [`codecs`], attributing measured compression/decompression (and
//!   match-find vs entropy) time per `(service, algorithm, level)`.
//! * [`agg`] — the aggregation queries that produce each figure's data
//!   series from the raw observations.
//!
//! ## What is measured vs. declared
//!
//! Production facts the paper *observes* and we cannot re-derive without
//! Meta's traffic are **declared** in the registry and documented as
//! such: each service's fleet weight and its compression tax (the
//! fraction of its cycles spent in compression — Figure 6's heights).
//! Everything *downstream* of those facts is **measured** by actually
//! running the codecs on the service's synthetic workload: the
//! compression/decompression split (Figure 3), level usage by cycles
//! (Figure 4), block sizes (Figure 5), match-finding vs entropy split
//! (Figure 7), and the algorithm cycle shares (§III-B).

#![warn(missing_docs)]

pub mod agg;
pub mod classify;
pub mod drift;
pub mod profiler;
pub mod services;

pub use classify::{classify, ServiceClass};
pub use profiler::{profile_fleet, FleetProfile, Observation, ProfileConfig};
pub use services::{registry, table1, Category, ServiceSpec, Workload};
