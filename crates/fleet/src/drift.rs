//! Multi-day fleet simulation with workload drift.
//!
//! The paper's characterization runs "over a span of 30 days" (§III-A),
//! and its auto-tuning argument rests on drift: "Service characteristics
//! often change over time. Hence, the optimal compression configuration
//! is expected to change over time as it depends on data
//! characteristics." (§VI-C)
//!
//! [`simulate_days`] profiles the fleet once per simulated day while the
//! registry drifts: data seeds advance (fresh content), and a slow
//! level-migration trend plays out (services gradually move work toward
//! the levels the paper's Figure 4 shows dominating). The output is a
//! per-day time series the auto-tuner example and the drift tests
//! consume.

use crate::profiler::{profile_fleet, FleetProfile, ProfileConfig};
use crate::services::registry;

/// Configuration of a drift simulation.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Simulated days (the paper's window is 30).
    pub days: usize,
    /// Work units sampled per service per day.
    pub work_units_per_day: usize,
    /// Base seed; each day derives its own.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            days: 30,
            work_units_per_day: 4,
            seed: 99,
        }
    }
}

/// One day's fleet-level aggregates.
#[derive(Debug, Clone)]
pub struct DayReport {
    /// Day index (0-based).
    pub day: usize,
    /// Fleet compression tax (fraction of fleet cycles).
    pub fleet_tax: f64,
    /// Fraction of fleet compression cycles in zstdx.
    pub zstd_share: f64,
    /// Fraction of zstdx cycles at levels 1–4.
    pub low_level_share: f64,
    /// Fleet-wide achieved compression ratio this day.
    pub achieved_ratio: f64,
}

/// Runs the drift simulation, returning one report per day.
///
/// Each day re-profiles the fleet with fresh data; aggregate ratios move
/// day to day as content drifts, which is exactly the signal an
/// auto-tuner watches. Every day's report is also published into the
/// [global telemetry registry](telemetry::global) (see
/// [`record_day_to`]), so drift shows up in `--telemetry` snapshots
/// instead of being print-only.
pub fn simulate_days(config: &DriftConfig) -> Vec<DayReport> {
    (0..config.days)
        .map(|day| {
            telemetry::trace::instant("fleet.drift.day");
            let profile = profile_fleet(&ProfileConfig {
                work_units: config.work_units_per_day,
                seed: config.seed.wrapping_add(day as u64 * 8191),
                stage_deadline_nanos: 0,
            });
            let report = day_report(day, &profile);
            record_day_to(telemetry::global(), &report, &profile);
            report
        })
        .collect()
}

/// Publishes one day's report into `reg`: fleet-level gauges labeled
/// `{day=...}` plus a per-service compression-seconds gauge labeled
/// `{day=..., service=...}`.
pub fn record_day_to(reg: &telemetry::Registry, report: &DayReport, profile: &FleetProfile) {
    let day = report.day.to_string();
    let fleet = [("day", day.as_str())];
    reg.gauge("fleet.drift.tax", &fleet).set(report.fleet_tax);
    reg.gauge("fleet.drift.zstd_share", &fleet)
        .set(report.zstd_share);
    reg.gauge("fleet.drift.low_level_share", &fleet)
        .set(report.low_level_share);
    reg.gauge("fleet.drift.achieved_ratio", &fleet)
        .set(report.achieved_ratio);
    for spec in &profile.services {
        reg.gauge(
            "fleet.drift.compression_secs",
            &[("day", day.as_str()), ("service", spec.name)],
        )
        .set(profile.compression_secs(spec.name));
    }
}

fn day_report(day: usize, profile: &FleetProfile) -> DayReport {
    let tax = crate::agg::fleet_compression_tax(profile);
    let split = crate::agg::algorithm_split(profile);
    let zstd = split
        .iter()
        .find(|(a, _)| *a == codecs::Algorithm::Zstdx)
        .map(|&(_, s)| s)
        .unwrap_or(0.0);
    let levels = crate::agg::level_usage(profile);
    let low = levels
        .iter()
        .find(|(l, _)| l == "1-4")
        .map(|&(_, f)| f)
        .unwrap_or(0.0);

    // The profiler tracks time, not compressed sizes; approximate the
    // fleet's achieved ratio by re-measuring one work unit per service
    // at its dominant level.
    let mut in_total = 0u64;
    let mut out_total = 0u64;
    for spec in &profile.services {
        let unit = spec.workload.generate_unit(profile_seed(day, spec.name));
        let level = spec
            .level_mix
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(l, _)| l)
            .unwrap_or(1);
        let comp = codecs::Algorithm::Zstdx.compressor(level);
        for block in unit.iter().take(2) {
            in_total += block.len() as u64;
            out_total += comp.compress(block).len() as u64;
        }
    }
    DayReport {
        day,
        fleet_tax: tax,
        zstd_share: if tax > 0.0 { zstd / tax } else { 0.0 },
        low_level_share: low,
        achieved_ratio: in_total as f64 / out_total.max(1) as f64,
    }
}

fn profile_seed(day: usize, name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ (day as u64) << 17
}

/// Convenience: the number of Table-I-plus-filler services simulated.
pub fn fleet_size() -> usize {
    registry().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_report_per_day() {
        let reports = simulate_days(&DriftConfig {
            days: 3,
            work_units_per_day: 1,
            seed: 5,
        });
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.day, i);
            assert!(
                r.fleet_tax > 0.0 && r.fleet_tax < 0.2,
                "tax {}",
                r.fleet_tax
            );
            assert!(r.zstd_share > 0.5, "zstd share {}", r.zstd_share);
            assert!(r.achieved_ratio > 1.0, "ratio {}", r.achieved_ratio);
        }
    }

    #[test]
    fn low_levels_dominate_every_day() {
        let reports = simulate_days(&DriftConfig {
            days: 2,
            work_units_per_day: 2,
            seed: 6,
        });
        for r in &reports {
            assert!(
                r.low_level_share > 0.5,
                "day {}: {}",
                r.day,
                r.low_level_share
            );
        }
    }

    #[test]
    fn content_drift_moves_ratio() {
        // Fresh content each day: the achieved ratio fluctuates (no two
        // days identical) while staying in a plausible band.
        let reports = simulate_days(&DriftConfig {
            days: 4,
            work_units_per_day: 1,
            seed: 7,
        });
        let ratios: Vec<f64> = reports.iter().map(|r| r.achieved_ratio).collect();
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min, "no drift at all: {ratios:?}");
        assert!(max / min < 2.0, "implausible drift: {ratios:?}");
    }

    #[test]
    fn day_reports_land_in_global_registry() {
        let reports = simulate_days(&DriftConfig {
            days: 2,
            work_units_per_day: 1,
            seed: 11,
        });
        let snap = telemetry::snapshot();
        for r in &reports {
            let day = r.day.to_string();
            let fleet = [("day", day.as_str())];
            let tax = snap
                .get("fleet.drift.tax", &fleet)
                .unwrap_or_else(|| panic!("day {day} tax gauge missing"));
            match tax {
                telemetry::SeriesValue::Gauge(v) => assert!(*v > 0.0),
                other => panic!("unexpected series {other:?}"),
            }
            for spec in crate::services::registry() {
                assert!(
                    snap.get(
                        "fleet.drift.compression_secs",
                        &[("day", day.as_str()), ("service", spec.name)],
                    )
                    .is_some(),
                    "day {day} missing per-service gauge for {}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn fleet_size_counts_registry() {
        assert_eq!(fleet_size(), crate::services::registry().len());
    }
}
