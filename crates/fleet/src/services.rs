//! The service registry: Table I plus fleet filler services.

use codecs::Algorithm;

/// Service categories of the paper's §III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Advertisement serving / prediction.
    Ads,
    /// Distributed caching tiers.
    Cache,
    /// Warm/cold analytic storage.
    DataWarehouse,
    /// Feed ranking and delivery.
    Feed,
    /// Persistent key-value stores.
    KeyValueStore,
    /// Front-end web serving.
    Web,
}

impl Category {
    /// All categories.
    pub const ALL: [Category; 6] = [
        Category::Ads,
        Category::Cache,
        Category::DataWarehouse,
        Category::Feed,
        Category::KeyValueStore,
        Category::Web,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Category::Ads => "Ads",
            Category::Cache => "Cache",
            Category::DataWarehouse => "Data Warehouse",
            Category::Feed => "Feed",
            Category::KeyValueStore => "Key-Value Store",
            Category::Web => "Web",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The synthetic workload a service compresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// ORC columnar stripes in <=256 KiB blocks (DW1, DW3, DW4).
    WarehouseOrc,
    /// Row-major shuffle partitions (DW2).
    WarehouseShuffle,
    /// Small typed cache items, CACHE1 shape (dictionary-compressed).
    CacheItems1,
    /// Small typed cache items, CACHE2 shape (dictionary-compressed).
    CacheItems2,
    /// ML inference requests, model mix (ADS1/ADS2).
    AdsRequests,
    /// Sorted SST data in fixed-size blocks (KVSTORE1).
    SstBlocks,
    /// Markup/text payloads, small blocks (Web).
    WebPayloads,
    /// Cold 4 KiB memory pages (far-memory tier, lz4-compressed).
    MemPages,
    /// Medium feed story payloads.
    FeedPayloads,
}

impl Workload {
    /// Generates one unit of work: the byte blobs one request/job
    /// compresses. Deterministic in `seed`.
    pub fn generate_unit(&self, seed: u64) -> Vec<Vec<u8>> {
        use corpus::silesia::{generate, FileClass};
        match self {
            Workload::WarehouseOrc => corpus::orc::generate_blocks(512 * 1024, seed),
            Workload::WarehouseShuffle => corpus::orc::shuffle_partitions(12_000, 8, seed),
            Workload::CacheItems1 => {
                corpus::cache::generate_items(&corpus::cache::cache1_profile(), 24, seed)
                    .into_iter()
                    .map(|i| i.data)
                    .collect()
            }
            Workload::CacheItems2 => {
                corpus::cache::generate_items(&corpus::cache::cache2_profile(), 16, seed)
                    .into_iter()
                    .map(|i| i.data)
                    .collect()
            }
            Workload::AdsRequests => {
                use corpus::mlreq::Model;
                let m = match seed % 4 {
                    0 | 1 => Model::A,
                    2 => Model::B,
                    _ => Model::C,
                };
                vec![corpus::mlreq::generate_request(m, seed)]
            }
            Workload::SstBlocks => {
                let sst = corpus::sst::generate_sst(128 * 1024, seed);
                sst.chunks(16 * 1024).map(|c| c.to_vec()).collect()
            }
            Workload::WebPayloads => (0..8)
                .map(|i| generate(FileClass::Xml, 4 * 1024, seed.wrapping_add(i)))
                .collect(),
            Workload::MemPages => {
                corpus::mempage::generate_pages(&corpus::mempage::PageMix::cold_memory(), 48, seed)
                    .into_iter()
                    .map(|(_, p)| p)
                    .collect()
            }
            Workload::FeedPayloads => (0..6)
                .map(|i| generate(FileClass::Text, 8 * 1024, seed.wrapping_add(i * 31)))
                .collect(),
        }
    }

    /// Whether the paper's dictionary-compression path applies (typed
    /// small items, §IV-C).
    pub fn uses_dictionary(&self) -> bool {
        matches!(self, Workload::CacheItems1 | Workload::CacheItems2)
    }
}

/// A service's compression usage profile.
///
/// `fleet_weight` and `compression_tax` are production facts declared
/// from the paper (see the crate docs); the rest parameterizes real
/// codec runs.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Service name (Table I naming).
    pub name: &'static str,
    /// Service category.
    pub category: Category,
    /// Table I description.
    pub description: &'static str,
    /// Table I resource boundedness.
    pub resource_bound: &'static str,
    /// Table I key takeaway.
    pub key_takeaway: &'static str,
    /// Share of total fleet compute this service represents.
    pub fleet_weight: f64,
    /// Fraction of the service's cycles spent in (de)compression —
    /// declared from the paper's observations (Figures 2/6).
    pub compression_tax: f64,
    /// Algorithm usage mix by call share (must sum to 1).
    pub algorithm_mix: &'static [(Algorithm, f64)],
    /// Zstd level mix by call share (must sum to 1).
    pub level_mix: &'static [(i32, f64)],
    /// Decompression calls per compression call (drives Figure 3).
    pub reads_per_write: f64,
    /// The data this service compresses.
    pub workload: Workload,
}

const ZSTD_ONLY: &[(Algorithm, f64)] = &[(Algorithm::Zstdx, 1.0)];

/// The full modeled fleet: Table I's eight services plus Web/Feed/Ads
/// fillers and a long-tail aggregate, with weights summing to 1.
pub fn registry() -> Vec<ServiceSpec> {
    vec![
        ServiceSpec {
            name: "DW1",
            category: Category::DataWarehouse,
            description: "Distributed data delivery service",
            resource_bound: "Storage bound",
            key_takeaway: "Compute-storage cost trade-offs",
            fleet_weight: 0.025,
            compression_tax: 0.285,
            algorithm_mix: ZSTD_ONLY,
            level_mix: &[(7, 1.0)],
            reads_per_write: 0.3,
            workload: Workload::WarehouseOrc,
        },
        ServiceSpec {
            name: "DW2",
            category: Category::DataWarehouse,
            description: "Distributed data shuffle service",
            resource_bound: "Storage bound",
            key_takeaway: "Compute-storage cost trade-offs",
            fleet_weight: 0.02,
            compression_tax: 0.305,
            algorithm_mix: ZSTD_ONLY,
            level_mix: &[(1, 1.0)],
            reads_per_write: 1.4,
            workload: Workload::WarehouseShuffle,
        },
        ServiceSpec {
            name: "DW3",
            category: Category::DataWarehouse,
            description: "Distributed scheduling framework for data warehouse jobs",
            resource_bound: "Storage bound",
            key_takeaway: "Compute-storage cost trade-offs",
            fleet_weight: 0.03,
            compression_tax: 0.135,
            algorithm_mix: ZSTD_ONLY,
            level_mix: &[(1, 0.5), (3, 0.3), (7, 0.2)],
            reads_per_write: 2.0,
            workload: Workload::WarehouseOrc,
        },
        ServiceSpec {
            name: "DW4",
            category: Category::DataWarehouse,
            description: "Distributed scheduling framework for machine learning jobs",
            resource_bound: "Storage bound",
            key_takeaway: "Compute-storage cost trade-offs",
            fleet_weight: 0.02,
            compression_tax: 0.08,
            algorithm_mix: ZSTD_ONLY,
            level_mix: &[(1, 1.0)],
            reads_per_write: 2.5,
            workload: Workload::WarehouseOrc,
        },
        ServiceSpec {
            name: "ADS1",
            category: Category::Ads,
            description: "Ads serving machine learning inference service",
            resource_bound: "Network bound",
            key_takeaway: "Network compression and model variance",
            fleet_weight: 0.06,
            compression_tax: 0.05,
            algorithm_mix: &[(Algorithm::Zstdx, 0.9), (Algorithm::Lz4x, 0.1)],
            level_mix: &[(-1, 0.3), (1, 0.5), (4, 0.2)],
            reads_per_write: 1.0,
            workload: Workload::AdsRequests,
        },
        ServiceSpec {
            name: "CACHE1",
            category: Category::Cache,
            description: "Distributed memory object caching service",
            resource_bound: "Compute/memory bound",
            key_takeaway: "Small data compression",
            fleet_weight: 0.05,
            compression_tax: 0.04,
            algorithm_mix: &[(Algorithm::Zstdx, 0.8), (Algorithm::Lz4x, 0.2)],
            level_mix: &[(1, 0.7), (3, 0.3)],
            reads_per_write: 5.0,
            workload: Workload::CacheItems1,
        },
        ServiceSpec {
            name: "CACHE2",
            category: Category::Cache,
            description: "Distributed social graph data store service",
            resource_bound: "Compute/memory bound",
            key_takeaway: "Small data compression",
            fleet_weight: 0.04,
            compression_tax: 0.017,
            algorithm_mix: ZSTD_ONLY,
            level_mix: &[(1, 0.6), (3, 0.4)],
            reads_per_write: 8.0,
            workload: Workload::CacheItems2,
        },
        ServiceSpec {
            name: "KVSTORE1",
            category: Category::KeyValueStore,
            description: "Large distributed key-value store",
            resource_bound: "Storage bound",
            key_takeaway: "Different block sizes",
            fleet_weight: 0.04,
            compression_tax: 0.10,
            algorithm_mix: &[(Algorithm::Zstdx, 0.7), (Algorithm::Lz4x, 0.3)],
            level_mix: &[(1, 0.8), (3, 0.2)],
            reads_per_write: 4.0,
            workload: Workload::SstBlocks,
        },
        ServiceSpec {
            name: "WEB1",
            category: Category::Web,
            description: "Front-end web rendering tier",
            resource_bound: "Compute bound",
            key_takeaway: "Zlib retained for backward compatibility",
            fleet_weight: 0.20,
            compression_tax: 0.018,
            algorithm_mix: &[(Algorithm::Zstdx, 0.75), (Algorithm::Zlibx, 0.25)],
            level_mix: &[(1, 0.6), (3, 0.4)],
            reads_per_write: 6.0,
            workload: Workload::WebPayloads,
        },
        ServiceSpec {
            name: "FEED1",
            category: Category::Feed,
            description: "Feed ranking and delivery service",
            resource_bound: "Compute bound",
            key_takeaway: "Low levels dominate (speed-sensitive)",
            fleet_weight: 0.12,
            compression_tax: 0.025,
            algorithm_mix: &[(Algorithm::Zstdx, 0.9), (Algorithm::Lz4x, 0.1)],
            level_mix: &[(1, 0.85), (2, 0.15)],
            reads_per_write: 6.0,
            workload: Workload::FeedPayloads,
        },
        ServiceSpec {
            name: "FEED2",
            category: Category::Feed,
            description: "Feed story aggregation service",
            resource_bound: "Compute bound",
            key_takeaway: "Low levels dominate (speed-sensitive)",
            fleet_weight: 0.04,
            compression_tax: 0.02,
            algorithm_mix: ZSTD_ONLY,
            level_mix: &[(1, 0.9), (4, 0.1)],
            reads_per_write: 4.0,
            workload: Workload::FeedPayloads,
        },
        ServiceSpec {
            name: "ADS2",
            category: Category::Ads,
            description: "Ads event logging pipeline",
            resource_bound: "Network bound",
            key_takeaway: "Network compression",
            fleet_weight: 0.03,
            compression_tax: 0.03,
            algorithm_mix: &[(Algorithm::Zstdx, 0.8), (Algorithm::Zlibx, 0.2)],
            level_mix: &[(3, 0.6), (5, 0.4)],
            reads_per_write: 1.0,
            workload: Workload::AdsRequests,
        },
        ServiceSpec {
            name: "MEM1",
            category: Category::Cache,
            description: "Far-memory tier compressing cold pages (lz4)",
            resource_bound: "Memory bound",
            key_takeaway: "Page compression favors the fastest codec",
            fleet_weight: 0.08,
            compression_tax: 0.04,
            algorithm_mix: &[(Algorithm::Lz4x, 1.0)],
            level_mix: &[(1, 1.0)],
            reads_per_write: 1.5,
            workload: Workload::MemPages,
        },
        ServiceSpec {
            name: "LONGTAIL",
            category: Category::Web,
            description: "Aggregate of thousands of low-compression services",
            resource_bound: "Mixed",
            key_takeaway: "Most services spend little on compression",
            fleet_weight: 0.245,
            compression_tax: 0.028,
            algorithm_mix: &[
                (Algorithm::Zstdx, 0.8),
                (Algorithm::Lz4x, 0.1),
                (Algorithm::Zlibx, 0.1),
            ],
            level_mix: &[(1, 0.5), (3, 0.3), (6, 0.2)],
            reads_per_write: 5.0,
            workload: Workload::WebPayloads,
        },
    ]
}

/// The eight case-study services of Table I, in paper order.
pub fn table1() -> Vec<ServiceSpec> {
    let names = [
        "DW1", "DW2", "DW3", "DW4", "ADS1", "CACHE1", "CACHE2", "KVSTORE1",
    ];
    let all = registry();
    names
        .iter()
        .map(|n| {
            all.iter()
                .find(|s| s.name == *n)
                .expect("table1 service in registry")
                .clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = registry().iter().map(|s| s.fleet_weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn mixes_sum_to_one() {
        for s in registry() {
            let algo: f64 = s.algorithm_mix.iter().map(|(_, f)| f).sum();
            assert!(
                (algo - 1.0).abs() < 1e-9,
                "{}: algorithm mix sums to {algo}",
                s.name
            );
            let lvl: f64 = s.level_mix.iter().map(|(_, f)| f).sum();
            assert!(
                (lvl - 1.0).abs() < 1e-9,
                "{}: level mix sums to {lvl}",
                s.name
            );
        }
    }

    #[test]
    fn fleet_tax_near_paper() {
        // Weighted fleet-wide compression tax must land near the
        // paper's 4.6%.
        let tax: f64 = registry()
            .iter()
            .map(|s| s.fleet_weight * s.compression_tax)
            .sum();
        assert!((0.035..=0.06).contains(&tax), "fleet tax {tax}");
    }

    #[test]
    fn table1_matches_paper_rows() {
        let t = table1();
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].name, "DW1");
        assert_eq!(t[4].name, "ADS1");
        assert!(t.iter().all(|s| !s.description.is_empty()));
        // Paper: service-level taxes range 1.7% to 30.5%.
        let min = t.iter().map(|s| s.compression_tax).fold(f64::MAX, f64::min);
        let max = t.iter().map(|s| s.compression_tax).fold(f64::MIN, f64::max);
        assert!((min - 0.017).abs() < 1e-9);
        assert!((max - 0.305).abs() < 1e-9);
    }

    #[test]
    fn workloads_generate_nonempty_units() {
        for s in registry() {
            let unit = s.workload.generate_unit(1);
            assert!(!unit.is_empty(), "{}", s.name);
            assert!(unit.iter().all(|b| !b.is_empty()), "{}", s.name);
            // Deterministic.
            assert_eq!(unit, s.workload.generate_unit(1));
        }
    }

    #[test]
    fn all_categories_covered() {
        let reg = registry();
        for c in Category::ALL {
            assert!(reg.iter().any(|s| s.category == c), "no service in {c}");
        }
    }
}
