//! The sampling profiler: runs every service's workload through the
//! real codecs and attributes time per `(service, algorithm, level)`.
//!
//! Mirrors the paper's methodology (§III-A): "We look at sampled
//! application call stacks in the profiling result, filter the call
//! stacks for compression APIs, and aggregate cycles spent in relevant
//! compression function calls including Zstd, Zlib, and LZ4." Here the
//! "call stacks" are real invocations of our codecs; services profile in
//! parallel (one thread each, via crossbeam) and the observations are
//! merged under a `parking_lot` mutex, like a profiling daemon's
//! aggregation table.

use std::collections::HashMap;
use std::time::Instant;

use codecs::zstdx::Zstdx;
use codecs::{Algorithm, Compressor, Dictionary};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::services::{registry, Category, ServiceSpec};

/// Profiling run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProfileConfig {
    /// Work units sampled per service (one unit = one request/job's
    /// compression activity).
    pub work_units: usize,
    /// Base seed for workload generation and mix sampling.
    pub seed: u64,
    /// Per-request stage deadline armed on every profiled request
    /// (nanoseconds). A stage that ends past the budget marks the
    /// request with a `deadline` error and bumps the
    /// `fleet.deadline_stage_expired{service=...}` counter, so the
    /// attribution report shows which services blow their budgets.
    /// Zero (the default) disarms: profiling runs unbounded.
    pub stage_deadline_nanos: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            work_units: 12,
            seed: 30,
            stage_deadline_nanos: 0,
        }
    }
}

/// Accumulated measurements for one `(service, algorithm, level)` cell.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Service name.
    pub service: &'static str,
    /// Service category.
    pub category: Category,
    /// Compression algorithm observed.
    pub algorithm: Algorithm,
    /// Compression level observed.
    pub level: i32,
    /// Seconds in compression calls.
    pub compress_secs: f64,
    /// Seconds in decompression calls.
    pub decompress_secs: f64,
    /// Of `compress_secs` (zstdx only): match-finding stage seconds.
    pub match_find_secs: f64,
    /// Of `compress_secs` (zstdx only): entropy-stage seconds.
    pub entropy_secs: f64,
    /// Blocks whose stage split was measured (zstdx only, both plain
    /// and dictionary paths). Deterministic, unlike the stage clocks,
    /// which can round to zero on tiny work units.
    pub stage_blocks: u64,
    /// Uncompressed bytes compressed.
    pub bytes: u64,
    /// Compression calls.
    pub comp_calls: u64,
    /// Decompression calls.
    pub decomp_calls: u64,
}

/// The result of a fleet profiling run.
#[derive(Debug, Clone)]
pub struct FleetProfile {
    /// Per-(service, algorithm, level) measurements.
    pub observations: Vec<Observation>,
    /// Modeled non-compression application seconds per service, derived
    /// from the declared compression tax (see crate docs).
    pub app_secs: HashMap<&'static str, f64>,
    /// The registry snapshot this profile was taken over.
    pub services: Vec<ServiceSpec>,
}

impl FleetProfile {
    /// Total (de)compression seconds of a service.
    pub fn compression_secs(&self, service: &str) -> f64 {
        self.observations
            .iter()
            .filter(|o| o.service == service)
            .map(|o| o.compress_secs + o.decompress_secs)
            .sum()
    }

    /// Total modeled seconds (compression + application) of a service.
    pub fn total_secs(&self, service: &str) -> f64 {
        self.compression_secs(service) + self.app_secs.get(service).copied().unwrap_or(0.0)
    }

    /// Publishes this profile into a telemetry registry: per-service
    /// call/byte counters and seconds gauges, labeled `{service=...}`.
    /// Per-call latency histograms (`fleet.compress.nanos`,
    /// `fleet.decompress.nanos`) are recorded live during profiling into
    /// the global registry; this publishes the aggregated totals, so a
    /// snapshot taken afterwards carries the whole profile.
    pub fn record_to(&self, reg: &telemetry::Registry) {
        for spec in &self.services {
            let labels = [("service", spec.name)];
            let mut comp = 0.0;
            let mut decomp = 0.0;
            let mut mf = 0.0;
            let mut ent = 0.0;
            let (mut bytes, mut ccalls, mut dcalls, mut blocks) = (0u64, 0u64, 0u64, 0u64);
            for o in self.observations.iter().filter(|o| o.service == spec.name) {
                comp += o.compress_secs;
                decomp += o.decompress_secs;
                mf += o.match_find_secs;
                ent += o.entropy_secs;
                bytes += o.bytes;
                ccalls += o.comp_calls;
                dcalls += o.decomp_calls;
                blocks += o.stage_blocks;
            }
            reg.counter("fleet.compress.calls", &labels).add(ccalls);
            reg.counter("fleet.decompress.calls", &labels).add(dcalls);
            reg.counter("fleet.bytes", &labels).add(bytes);
            reg.counter("fleet.stage_blocks", &labels).add(blocks);
            reg.gauge("fleet.compress.secs", &labels).set(comp);
            reg.gauge("fleet.decompress.secs", &labels).set(decomp);
            reg.gauge("fleet.match_find.secs", &labels).set(mf);
            reg.gauge("fleet.entropy.secs", &labels).set(ent);
            reg.gauge("fleet.app.secs", &labels)
                .set(self.app_secs.get(spec.name).copied().unwrap_or(0.0));
        }
    }
}

/// Profiles the whole modeled fleet in parallel (one thread per
/// service).
pub fn profile_fleet(config: &ProfileConfig) -> FleetProfile {
    let services = registry();
    let results: Mutex<Vec<Observation>> = Mutex::new(Vec::new());

    crossbeam::thread::scope(|scope| {
        for (si, spec) in services.iter().enumerate() {
            let results = &results;
            let config = *config;
            scope.spawn(move |_| {
                let obs = profile_service(spec, &config, si as u64);
                results.lock().extend(obs);
            });
        }
    })
    .expect("profiler threads do not panic");

    let observations = results.into_inner();

    // Derive each service's application time from its declared tax:
    // tax = comp / (comp + app)  =>  app = comp * (1 - tax) / tax.
    let mut app_secs = HashMap::new();
    for spec in &services {
        let comp: f64 = observations
            .iter()
            .filter(|o| o.service == spec.name)
            .map(|o| o.compress_secs + o.decompress_secs)
            .sum();
        let app = comp * (1.0 - spec.compression_tax) / spec.compression_tax;
        app_secs.insert(spec.name, app);
    }

    FleetProfile {
        observations,
        app_secs,
        services,
    }
}

fn profile_service(spec: &ServiceSpec, config: &ProfileConfig, salt: u64) -> Vec<Observation> {
    // One flight-recorder track per service: this runs on its own
    // crossbeam thread, so naming the thread's track gives the Perfetto
    // export one timeline row per service.
    telemetry::trace::set_track_name(&format!("svc:{}", spec.name));
    let mut rng = StdRng::seed_from_u64(config.seed ^ (salt << 32));
    let mut cells: HashMap<(Algorithm, i32), Observation> = HashMap::new();

    // Dictionary-compressed services train one dictionary up front from
    // a held-out unit (paper §IV-C: one dictionary per data type; we
    // fold types into one dictionary for profiling purposes).
    let dictionary: Option<Dictionary> = spec.workload.uses_dictionary().then(|| {
        let training_unit = spec.workload.generate_unit(config.seed ^ 0xd1c7);
        let refs: Vec<&[u8]> = training_unit.iter().map(|v| v.as_slice()).collect();
        codecs::dict::train(&refs, 16 * 1024, 1)
    });

    for unit_idx in 0..config.work_units {
        let unit = spec
            .workload
            .generate_unit(config.seed ^ (salt << 32) ^ unit_idx as u64);
        let algorithm = sample_mix(spec.algorithm_mix, &mut rng);
        let level = if algorithm == Algorithm::Zstdx {
            sample_mix(spec.level_mix, &mut rng)
        } else {
            1
        };

        let cell = cells
            .entry((algorithm, level))
            .or_insert_with(|| Observation {
                service: spec.name,
                category: spec.category,
                algorithm,
                level,
                compress_secs: 0.0,
                decompress_secs: 0.0,
                match_find_secs: 0.0,
                entropy_secs: 0.0,
                stage_blocks: 0,
                bytes: 0,
                comp_calls: 0,
                decomp_calls: 0,
            });

        for block in &unit {
            // Block boundary on the service's timeline; dictionary
            // blocks additionally mark the dict hit.
            telemetry::trace::instant("fleet.block");
            if dictionary.is_some() && algorithm == Algorithm::Zstdx {
                telemetry::trace::instant("fleet.dict_hit");
            }
            let reads = sample_reads(spec.reads_per_write, &mut rng);
            let comp_elapsed;
            // Each block write is one compress request: the stage spans
            // the codec records (match-find, entropy, whole-call) nest
            // under this context, so `datacomp profile` populates the
            // p99 attribution report and the tail sampler sees fleet
            // traffic. The guard is scoped to the compression only —
            // the read-back decompressions below are their own
            // requests.
            let frame = {
                let req =
                    telemetry::requests().open(spec.name, telemetry::Op::Compress, block.len());
                req.arm_deadline(config.stage_deadline_nanos);
                let frame = match (algorithm, &dictionary) {
                    (Algorithm::Zstdx, None) => {
                        let z = Zstdx::new(level);
                        let (frame, timing) = z.compress_timed(block);
                        cell.compress_secs += timing.total.as_secs_f64();
                        cell.match_find_secs += timing.match_find.as_secs_f64();
                        cell.entropy_secs += timing.entropy.as_secs_f64();
                        cell.stage_blocks += timing.blocks;
                        comp_elapsed = timing.total;
                        frame
                    }
                    (Algorithm::Zstdx, Some(d)) => {
                        let z = Zstdx::new(level);
                        let (frame, timing) = z.compress_with_dict_timed(block, d);
                        cell.compress_secs += timing.total.as_secs_f64();
                        cell.match_find_secs += timing.match_find.as_secs_f64();
                        cell.entropy_secs += timing.entropy.as_secs_f64();
                        cell.stage_blocks += timing.blocks;
                        comp_elapsed = timing.total;
                        frame
                    }
                    (algo, _) => {
                        let c = algo.compressor(level);
                        let t0 = Instant::now();
                        let frame = c.compress(block);
                        comp_elapsed = t0.elapsed();
                        cell.compress_secs += comp_elapsed.as_secs_f64();
                        frame
                    }
                };
                if config.stage_deadline_nanos > 0 && req.deadline_exceeded() {
                    req.mark_error("deadline");
                    telemetry::global()
                        .counter("fleet.deadline_stage_expired", &[("service", spec.name)])
                        .add(1);
                }
                frame
            };
            let reader = algorithm.compressor(level);
            let read_dict = if algorithm == Algorithm::Zstdx {
                dictionary.as_ref()
            } else {
                None
            };
            decompress_n(
                reader.as_ref(),
                &frame,
                read_dict,
                reads,
                cell,
                config.stage_deadline_nanos,
            );
            let svc_labels = [("service", spec.name)];
            telemetry::global()
                .histogram("fleet.compress.nanos", &svc_labels)
                .observe_duration(comp_elapsed);
            // Live windowed view of the same series: the scrape
            // endpoint reports a sliding-window p99 per service, and
            // the slowest block in each sub-window keeps a trace
            // exemplar pointing at its flight-recorder instant.
            let win = telemetry::windows();
            win.counter("fleet.compress.bytes", &svc_labels)
                .add(block.len() as u64);
            win.histogram("fleet.compress.nanos", &svc_labels)
                .observe_linked(comp_elapsed.as_nanos() as u64, || {
                    telemetry::trace::instant_ref("fleet.compress.window_max")
                });
            cell.bytes += block.len() as u64;
            cell.comp_calls += 1;
            telemetry::trace::counter("fleet.bytes", cell.bytes as f64);
        }
    }
    cells.into_values().collect()
}

fn decompress_n(
    comp: &dyn Compressor,
    frame: &[u8],
    dict: Option<&Dictionary>,
    reads: u64,
    cell: &mut Observation,
    stage_deadline_nanos: u64,
) {
    for _ in 0..reads {
        // Every read-back is a decompress request of its own, so read
        // amplification shows up as request volume in the attribution
        // report exactly as it does in the paper's fleet mix.
        let req = telemetry::requests().open(cell.service, telemetry::Op::Decompress, frame.len());
        req.arm_deadline(stage_deadline_nanos);
        let t0 = Instant::now();
        let out = match dict {
            Some(d) => comp.decompress_with_dict(frame, d),
            None => comp.decompress(frame),
        };
        let elapsed = t0.elapsed();
        cell.decompress_secs += elapsed.as_secs_f64();
        out.expect("own frames round-trip");
        if stage_deadline_nanos > 0 && req.deadline_exceeded() {
            req.mark_error("deadline");
            telemetry::global()
                .counter("fleet.deadline_stage_expired", &[("service", cell.service)])
                .add(1);
        }
        let svc_labels = [("service", cell.service)];
        telemetry::global()
            .histogram("fleet.decompress.nanos", &svc_labels)
            .observe_duration(elapsed);
        telemetry::windows()
            .histogram("fleet.decompress.nanos", &svc_labels)
            .observe_linked(elapsed.as_nanos() as u64, || {
                telemetry::trace::instant_ref("fleet.decompress.window_max")
            });
        cell.decomp_calls += 1;
    }
}

fn sample_mix<T: Copy>(mix: &[(T, f64)], rng: &mut StdRng) -> T {
    let mut u: f64 = rng.gen();
    for &(v, f) in mix {
        if u < f {
            return v;
        }
        u -= f;
    }
    mix.last().expect("mix is non-empty").0
}

fn sample_reads(reads_per_write: f64, rng: &mut StdRng) -> u64 {
    let base = reads_per_write.floor() as u64;
    let frac = reads_per_write - reads_per_write.floor();
    base + u64::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profile() -> FleetProfile {
        profile_fleet(&ProfileConfig {
            work_units: 2,
            seed: 7,
            stage_deadline_nanos: 0,
        })
    }

    #[test]
    fn profile_covers_all_services() {
        let p = quick_profile();
        for spec in &p.services {
            assert!(
                p.observations.iter().any(|o| o.service == spec.name),
                "{} missing",
                spec.name
            );
            // Deterministic: call counts cannot round to zero the way
            // wall-clock sums can on very fast work units.
            let calls: u64 = p
                .observations
                .iter()
                .filter(|o| o.service == spec.name)
                .map(|o| o.comp_calls)
                .sum();
            assert!(calls > 0, "{} recorded no compression calls", spec.name);
        }
    }

    #[test]
    fn app_time_respects_declared_tax() {
        let p = quick_profile();
        for spec in &p.services {
            let tax = p.compression_secs(spec.name) / p.total_secs(spec.name);
            assert!(
                (tax - spec.compression_tax).abs() < 1e-9,
                "{}: derived tax {tax} vs declared {}",
                spec.name,
                spec.compression_tax
            );
        }
    }

    #[test]
    fn read_heavy_services_decompress_more_often() {
        let p = quick_profile();
        let calls = |name: &str| {
            let (c, d) = p
                .observations
                .iter()
                .filter(|o| o.service == name)
                .fold((0u64, 0u64), |(c, d), o| {
                    (c + o.comp_calls, d + o.decomp_calls)
                });
            (c, d)
        };
        let (c, d) = calls("CACHE2"); // reads_per_write = 8
        assert!(d > c * 6, "CACHE2 reads {d} vs writes {c}");
        let (c, d) = calls("DW1"); // reads_per_write = 0.3
        assert!(d < c, "DW1 reads {d} vs writes {c}");
    }

    #[test]
    fn zstd_observations_carry_stage_split() {
        let p = quick_profile();
        let dw1: Vec<&Observation> = p
            .observations
            .iter()
            .filter(|o| o.service == "DW1")
            .collect();
        assert!(!dw1.is_empty());
        for o in dw1 {
            assert_eq!(o.algorithm, Algorithm::Zstdx);
            // The block counter is the deterministic witness that the
            // stage split was measured; the second sums can round to
            // zero on a timer with coarse granularity.
            assert!(o.stage_blocks > 0, "DW1 cell measured no blocks");
            assert!(o.match_find_secs >= 0.0 && o.entropy_secs >= 0.0);
            assert!(o.match_find_secs + o.entropy_secs <= o.compress_secs + 1e-6);
        }
    }

    #[test]
    fn dictionary_services_carry_stage_split_too() {
        // CACHE1/CACHE2 compress through the dictionary path, which used
        // to report zero stage time; it now goes through
        // `compress_with_dict_timed` and measures blocks like the rest.
        let p = quick_profile();
        for svc in ["CACHE1", "CACHE2"] {
            let blocks: u64 = p
                .observations
                .iter()
                .filter(|o| o.service == svc && o.algorithm == Algorithm::Zstdx)
                .map(|o| o.stage_blocks)
                .sum();
            assert!(blocks > 0, "{svc} dict path measured no stage blocks");
        }
    }

    #[test]
    fn record_to_publishes_per_service_series() {
        let p = quick_profile();
        let reg = telemetry::Registry::new();
        p.record_to(&reg);
        let snap = reg.snapshot();
        for spec in &p.services {
            let labels = [("service", spec.name)];
            assert!(
                snap.counter("fleet.compress.calls", &labels) > 0,
                "{} missing call counter",
                spec.name
            );
            assert!(
                snap.get("fleet.compress.secs", &labels).is_some(),
                "{}",
                spec.name
            );
            assert!(
                snap.get("fleet.app.secs", &labels).is_some(),
                "{}",
                spec.name
            );
        }
        // Live per-call latency histograms land in the global registry.
        let global = telemetry::snapshot();
        assert!(
            global
                .histogram("fleet.compress.nanos", &[("service", "DW1")])
                .is_some_and(|h| h.count() > 0),
            "profiling left no latency histogram for DW1"
        );
    }

    #[test]
    fn profiling_records_one_trace_track_per_service() {
        // The only test in this binary that drains the global tracer
        // (a drain steals events from concurrent assertions).
        let p = quick_profile();
        let snap = telemetry::global_tracer().drain();
        for spec in &p.services {
            let name = format!("svc:{}", spec.name);
            let track = snap
                .tracks
                .iter()
                .find(|t| t.name == name)
                .unwrap_or_else(|| panic!("no trace track for {name}"));
            assert!(
                track.events.iter().any(|e| matches!(
                    e.kind,
                    telemetry::trace::EventKind::Instant {
                        name: "fleet.block"
                    }
                )),
                "{name} has no block-boundary instants"
            );
            assert!(
                track
                    .events
                    .windows(2)
                    .all(|w| w[0].ts_nanos <= w[1].ts_nanos),
                "{name} events out of order"
            );
        }
    }

    #[test]
    fn stage_deadline_marks_and_counts_expiries() {
        // A 1ns budget cannot survive any real codec call, so every
        // service must record at least one expiry. Counters are
        // cumulative per process; assert on the delta.
        let labels = [("service", "DW1")];
        let before = telemetry::snapshot().counter("fleet.deadline_stage_expired", &labels);
        profile_fleet(&ProfileConfig {
            work_units: 1,
            seed: 13,
            stage_deadline_nanos: 1,
        });
        let after = telemetry::snapshot().counter("fleet.deadline_stage_expired", &labels);
        assert!(after > before, "1ns stage budget never expired for DW1");
    }

    #[test]
    fn sample_mix_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = [(0u8, 0.9), (1u8, 0.1)];
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[sample_mix(&mix, &mut rng) as usize] += 1;
        }
        assert!(counts[0] > 1600 && counts[1] > 50, "{counts:?}");
    }

    #[test]
    fn sample_reads_mean_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4000;
        let total: u64 = (0..n).map(|_| sample_reads(2.5, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }
}
