//! The sampling profiler: runs every service's workload through the
//! real codecs and attributes time per `(service, algorithm, level)`.
//!
//! Mirrors the paper's methodology (§III-A): "We look at sampled
//! application call stacks in the profiling result, filter the call
//! stacks for compression APIs, and aggregate cycles spent in relevant
//! compression function calls including Zstd, Zlib, and LZ4." Here the
//! "call stacks" are real invocations of our codecs; services profile in
//! parallel (one thread each, via crossbeam) and the observations are
//! merged under a `parking_lot` mutex, like a profiling daemon's
//! aggregation table.

use std::collections::HashMap;
use std::time::Instant;

use codecs::zstdx::Zstdx;
use codecs::{Algorithm, Compressor, Dictionary};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::services::{registry, Category, ServiceSpec};

/// Profiling run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProfileConfig {
    /// Work units sampled per service (one unit = one request/job's
    /// compression activity).
    pub work_units: usize,
    /// Base seed for workload generation and mix sampling.
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self { work_units: 12, seed: 30 }
    }
}

/// Accumulated measurements for one `(service, algorithm, level)` cell.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Service name.
    pub service: &'static str,
    /// Service category.
    pub category: Category,
    /// Compression algorithm observed.
    pub algorithm: Algorithm,
    /// Compression level observed.
    pub level: i32,
    /// Seconds in compression calls.
    pub compress_secs: f64,
    /// Seconds in decompression calls.
    pub decompress_secs: f64,
    /// Of `compress_secs` (zstdx only): match-finding stage seconds.
    pub match_find_secs: f64,
    /// Of `compress_secs` (zstdx only): entropy-stage seconds.
    pub entropy_secs: f64,
    /// Uncompressed bytes compressed.
    pub bytes: u64,
    /// Compression calls.
    pub comp_calls: u64,
    /// Decompression calls.
    pub decomp_calls: u64,
}

/// The result of a fleet profiling run.
#[derive(Debug, Clone)]
pub struct FleetProfile {
    /// Per-(service, algorithm, level) measurements.
    pub observations: Vec<Observation>,
    /// Modeled non-compression application seconds per service, derived
    /// from the declared compression tax (see crate docs).
    pub app_secs: HashMap<&'static str, f64>,
    /// The registry snapshot this profile was taken over.
    pub services: Vec<ServiceSpec>,
}

impl FleetProfile {
    /// Total (de)compression seconds of a service.
    pub fn compression_secs(&self, service: &str) -> f64 {
        self.observations
            .iter()
            .filter(|o| o.service == service)
            .map(|o| o.compress_secs + o.decompress_secs)
            .sum()
    }

    /// Total modeled seconds (compression + application) of a service.
    pub fn total_secs(&self, service: &str) -> f64 {
        self.compression_secs(service) + self.app_secs.get(service).copied().unwrap_or(0.0)
    }
}

/// Profiles the whole modeled fleet in parallel (one thread per
/// service).
pub fn profile_fleet(config: &ProfileConfig) -> FleetProfile {
    let services = registry();
    let results: Mutex<Vec<Observation>> = Mutex::new(Vec::new());

    crossbeam::thread::scope(|scope| {
        for (si, spec) in services.iter().enumerate() {
            let results = &results;
            let config = *config;
            scope.spawn(move |_| {
                let obs = profile_service(spec, &config, si as u64);
                results.lock().extend(obs);
            });
        }
    })
    .expect("profiler threads do not panic");

    let observations = results.into_inner();

    // Derive each service's application time from its declared tax:
    // tax = comp / (comp + app)  =>  app = comp * (1 - tax) / tax.
    let mut app_secs = HashMap::new();
    for spec in &services {
        let comp: f64 = observations
            .iter()
            .filter(|o| o.service == spec.name)
            .map(|o| o.compress_secs + o.decompress_secs)
            .sum();
        let app = comp * (1.0 - spec.compression_tax) / spec.compression_tax;
        app_secs.insert(spec.name, app);
    }

    FleetProfile { observations, app_secs, services }
}

fn profile_service(spec: &ServiceSpec, config: &ProfileConfig, salt: u64) -> Vec<Observation> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (salt << 32));
    let mut cells: HashMap<(Algorithm, i32), Observation> = HashMap::new();

    // Dictionary-compressed services train one dictionary up front from
    // a held-out unit (paper §IV-C: one dictionary per data type; we
    // fold types into one dictionary for profiling purposes).
    let dictionary: Option<Dictionary> = spec.workload.uses_dictionary().then(|| {
        let training_unit = spec.workload.generate_unit(config.seed ^ 0xd1c7);
        let refs: Vec<&[u8]> = training_unit.iter().map(|v| v.as_slice()).collect();
        codecs::dict::train(&refs, 16 * 1024, 1)
    });

    for unit_idx in 0..config.work_units {
        let unit = spec.workload.generate_unit(config.seed ^ (salt << 32) ^ unit_idx as u64);
        let algorithm = sample_mix(spec.algorithm_mix, &mut rng);
        let level = if algorithm == Algorithm::Zstdx {
            sample_mix(spec.level_mix, &mut rng)
        } else {
            1
        };

        let cell = cells.entry((algorithm, level)).or_insert_with(|| Observation {
            service: spec.name,
            category: spec.category,
            algorithm,
            level,
            compress_secs: 0.0,
            decompress_secs: 0.0,
            match_find_secs: 0.0,
            entropy_secs: 0.0,
            bytes: 0,
            comp_calls: 0,
            decomp_calls: 0,
        });

        for block in &unit {
            let reads = sample_reads(spec.reads_per_write, &mut rng);
            match (algorithm, &dictionary) {
                (Algorithm::Zstdx, None) => {
                    let z = Zstdx::new(level);
                    let (frame, timing) = z.compress_timed(block);
                    cell.compress_secs += timing.total.as_secs_f64();
                    cell.match_find_secs += timing.match_find.as_secs_f64();
                    cell.entropy_secs += timing.entropy.as_secs_f64();
                    decompress_n(&z, &frame, None, reads, cell, block.len());
                }
                (Algorithm::Zstdx, Some(d)) => {
                    let z = Zstdx::new(level);
                    let t0 = Instant::now();
                    let frame = z.compress_with_dict(block, d);
                    let dt = t0.elapsed().as_secs_f64();
                    cell.compress_secs += dt;
                    // Stage split is not instrumented on the dict path;
                    // approximate with the level's typical share later
                    // (these cells are excluded from Figure 7, which
                    // covers warehouse services only).
                    decompress_n(&z, &frame, Some(d), reads, cell, block.len());
                }
                (algo, _) => {
                    let c = algo.compressor(level);
                    let t0 = Instant::now();
                    let frame = c.compress(block);
                    cell.compress_secs += t0.elapsed().as_secs_f64();
                    decompress_n(c.as_ref(), &frame, None, reads, cell, block.len());
                }
            }
            cell.bytes += block.len() as u64;
            cell.comp_calls += 1;
        }
    }
    cells.into_values().collect()
}

fn decompress_n(
    comp: &dyn Compressor,
    frame: &[u8],
    dict: Option<&Dictionary>,
    reads: u64,
    cell: &mut Observation,
    _original_len: usize,
) {
    for _ in 0..reads {
        let t0 = Instant::now();
        let out = match dict {
            Some(d) => comp.decompress_with_dict(frame, d),
            None => comp.decompress(frame),
        };
        cell.decompress_secs += t0.elapsed().as_secs_f64();
        out.expect("own frames round-trip");
        cell.decomp_calls += 1;
    }
}

fn sample_mix<T: Copy>(mix: &[(T, f64)], rng: &mut StdRng) -> T {
    let mut u: f64 = rng.gen();
    for &(v, f) in mix {
        if u < f {
            return v;
        }
        u -= f;
    }
    mix.last().expect("mix is non-empty").0
}

fn sample_reads(reads_per_write: f64, rng: &mut StdRng) -> u64 {
    let base = reads_per_write.floor() as u64;
    let frac = reads_per_write - reads_per_write.floor();
    base + u64::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profile() -> FleetProfile {
        profile_fleet(&ProfileConfig { work_units: 2, seed: 7 })
    }

    #[test]
    fn profile_covers_all_services() {
        let p = quick_profile();
        for spec in &p.services {
            assert!(
                p.observations.iter().any(|o| o.service == spec.name),
                "{} missing",
                spec.name
            );
            assert!(p.compression_secs(spec.name) > 0.0, "{}", spec.name);
        }
    }

    #[test]
    fn app_time_respects_declared_tax() {
        let p = quick_profile();
        for spec in &p.services {
            let tax = p.compression_secs(spec.name) / p.total_secs(spec.name);
            assert!(
                (tax - spec.compression_tax).abs() < 1e-9,
                "{}: derived tax {tax} vs declared {}",
                spec.name,
                spec.compression_tax
            );
        }
    }

    #[test]
    fn read_heavy_services_decompress_more_often() {
        let p = quick_profile();
        let calls = |name: &str| {
            let (c, d) = p
                .observations
                .iter()
                .filter(|o| o.service == name)
                .fold((0u64, 0u64), |(c, d), o| (c + o.comp_calls, d + o.decomp_calls));
            (c, d)
        };
        let (c, d) = calls("CACHE2"); // reads_per_write = 8
        assert!(d > c * 6, "CACHE2 reads {d} vs writes {c}");
        let (c, d) = calls("DW1"); // reads_per_write = 0.3
        assert!(d < c, "DW1 reads {d} vs writes {c}");
    }

    #[test]
    fn zstd_observations_carry_stage_split() {
        let p = quick_profile();
        let dw1: Vec<&Observation> =
            p.observations.iter().filter(|o| o.service == "DW1").collect();
        assert!(!dw1.is_empty());
        for o in dw1 {
            assert_eq!(o.algorithm, Algorithm::Zstdx);
            assert!(o.match_find_secs > 0.0);
            assert!(o.entropy_secs > 0.0);
        }
    }

    #[test]
    fn sample_mix_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = [(0u8, 0.9), (1u8, 0.1)];
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[sample_mix(&mix, &mut rng) as usize] += 1;
        }
        assert!(counts[0] > 1600 && counts[1] > 50, "{counts:?}");
    }

    #[test]
    fn sample_reads_mean_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4000;
        let total: u64 = (0..n).map(|_| sample_reads(2.5, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }
}
