//! Injectable monotonic time.
//!
//! The windowed metrics ([`crate::window`]) and the SLO engine
//! ([`crate::slo`]) rotate state on a clock. Production code uses the
//! process-monotonic [`MonotonicClock`]; tests inject a [`ManualClock`]
//! and advance it explicitly, so window rotation, burn rates, and state
//! transitions are exact and deterministic — no sleeps, no flakes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of monotonically non-decreasing nanosecond timestamps.
///
/// Implementations must never go backwards; the epoch (what nanosecond
/// zero means) is implementation-defined and only differences matter.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's epoch.
    fn now_nanos(&self) -> u64;
}

/// Wall-progress clock backed by [`Instant`], anchored at construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl MonotonicClock {
    /// Creates a clock whose zero is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// A hand-driven clock for deterministic tests: time moves only when
/// [`ManualClock::advance`] (or [`set`](ManualClock::set)) is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at nanosecond `start`.
    pub fn new(start: u64) -> Self {
        Self {
            nanos: AtomicU64::new(start),
        }
    }

    /// Creates a shareable clock at nanosecond 0.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new(0))
    }

    /// Moves time forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Jumps to an absolute time; clamps so the clock never rewinds.
    pub fn set(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(c.now_nanos() > a);
    }

    #[test]
    fn manual_clock_moves_only_by_hand() {
        let c = ManualClock::new(5);
        assert_eq!(c.now_nanos(), 5);
        c.advance(10);
        assert_eq!(c.now_nanos(), 15);
        c.set(12); // never rewinds
        assert_eq!(c.now_nanos(), 15);
        c.set(40);
        assert_eq!(c.now_nanos(), 40);
    }
}
