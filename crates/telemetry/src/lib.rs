//! Unified metrics and tracing for the datacomp stack.
//!
//! The paper's methodology (§III-A) is fleet-wide observability: sampled
//! call stacks filtered to compression APIs, with cycles attributed per
//! `(service, algorithm, level)` and per pipeline stage (Figure 7's
//! match-find vs entropy split). This crate is the measurement substrate
//! that replaces the ad-hoc `Instant::now()` pairs previously scattered
//! across the profiler, the codec metrics, and the managed service:
//!
//! * [`Registry`] — a sharded table of named series. Three kinds:
//!   monotonic [`Counter`]s, last-value [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s (power-of-two buckets, p50/p90/p99/max, mergeable
//!   across threads because every cell is atomic).
//! * [`Span`] — scoped stage timing. `let _s = span!("zstdx.match_find");`
//!   records the guard's lifetime into the histogram
//!   `span.zstdx.match_find` on drop. [`record_duration`] is the
//!   non-scoped variant for externally measured intervals.
//! * [`export`] — machine-readable exporters: JSON (for `BENCH_*.json`
//!   style cross-PR trend tracking) and the Prometheus text exposition
//!   format.
//! * [`trace`] — the flight recorder: always-on per-thread ring
//!   buffers of fixed-size events (stage begin/end, instants, counter
//!   samples, CompOpt decisions) with bounded memory and drop
//!   counting. [`chrome`] serializes a drained trace to Chrome
//!   trace-event JSON loadable in Perfetto.
//! * [`window`] — the live plane: sliding-window counters and
//!   histograms ([`windows`]) rotated on an injectable [`clock`],
//!   yielding per-window p50/p90/p99 and rates, with metric↔trace
//!   exemplars pointing at flight-recorder events.
//! * [`slo`] — declarative objectives ([`slos`]) evaluated as
//!   multi-window burn rates with error-budget accounting.
//! * [`serve`] — a dependency-free HTTP scrape server exposing
//!   `/metrics`, `/slo`, `/healthz`, and `/trace.json`.
//!
//! The crate is dependency-free (std only) so every layer of the stack
//! can use it without weight.
//!
//! # Example
//!
//! ```
//! use telemetry::Registry;
//!
//! let reg = Registry::new();
//! reg.counter("requests", &[("service", "DW1")]).inc();
//! reg.histogram("latency.nanos", &[]).observe(1500);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("requests", &[("service", "DW1")]), 1);
//! let json = telemetry::export::to_json(&snap);
//! assert!(json.contains("\"requests\""));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod request;
pub mod serve;
pub mod slo;
pub mod span;
pub mod trace;
pub mod window;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry, Series, SeriesKey, SeriesValue, Snapshot};
pub use request::{
    KeepReason, Op, RequestCtx, RequestSampler, SampledRequest, SamplerConfig, SamplerStats,
    SizeClass, SpanNode,
};
pub use serve::{ScrapeServer, Sources};
pub use slo::{Slo, SloConfig, SloKind, SloRegistry, SloState};
pub use span::{record_duration, record_stage, Span};
pub use trace::{global_tracer, Decision, EventRef, TraceEvent, TraceSnapshot, Tracer};
pub use window::{
    Exemplar, WindowConfig, WindowRegistry, WindowSnapshot, WindowedCounter, WindowedHistogram,
};

use std::sync::{Arc, OnceLock};

/// The process-wide registry that the instrumented crates (codecs,
/// fleet, managed) record into by default.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide monotonic clock that the global windowed views and
/// SLOs rotate on, anchored at first use.
pub fn global_clock() -> Arc<dyn Clock> {
    static GLOBAL: OnceLock<Arc<MonotonicClock>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(MonotonicClock::new()))) as Arc<dyn Clock>
}

/// The process-wide windowed-metrics registry (default 30 s window)
/// behind the `window_*` series on `/metrics`.
pub fn windows() -> &'static WindowRegistry {
    static GLOBAL: OnceLock<WindowRegistry> = OnceLock::new();
    GLOBAL.get_or_init(|| WindowRegistry::new(WindowConfig::DEFAULT, global_clock()))
}

/// The process-wide SLO registry behind `/slo` and the `slo_*` gauges.
pub fn slos() -> &'static SloRegistry {
    static GLOBAL: OnceLock<SloRegistry> = OnceLock::new();
    GLOBAL.get_or_init(|| SloRegistry::new(global_clock()))
}

/// The process-wide tail-based request sampler behind `/profile.json`
/// and `/requests.json`. Requests opened via
/// [`RequestSampler::open`] on this instance are attributed and
/// tail-sampled with the default policy (errors always, slowest-8 per
/// sub-window, 1-in-64 baseline).
pub fn requests() -> &'static RequestSampler {
    static GLOBAL: OnceLock<RequestSampler> = OnceLock::new();
    GLOBAL.get_or_init(|| RequestSampler::new(SamplerConfig::default(), global_clock()))
}

/// Snapshot of the process-wide registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Opens a [`Span`] recording into the global registry on drop.
///
/// ```
/// {
///     let _guard = telemetry::span!("demo.stage");
///     // ... stage work ...
/// } // recorded into histogram "span.demo.stage" here
/// let _labeled = telemetry::span!("demo.stage", &[("service", "DW1")]);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $labels:expr) => {
        $crate::Span::enter_in($crate::global(), $name, $labels)
    };
}
