//! Unified metrics and tracing for the datacomp stack.
//!
//! The paper's methodology (§III-A) is fleet-wide observability: sampled
//! call stacks filtered to compression APIs, with cycles attributed per
//! `(service, algorithm, level)` and per pipeline stage (Figure 7's
//! match-find vs entropy split). This crate is the measurement substrate
//! that replaces the ad-hoc `Instant::now()` pairs previously scattered
//! across the profiler, the codec metrics, and the managed service:
//!
//! * [`Registry`] — a sharded table of named series. Three kinds:
//!   monotonic [`Counter`]s, last-value [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s (power-of-two buckets, p50/p90/p99/max, mergeable
//!   across threads because every cell is atomic).
//! * [`Span`] — scoped stage timing. `let _s = span!("zstdx.match_find");`
//!   records the guard's lifetime into the histogram
//!   `span.zstdx.match_find` on drop. [`record_duration`] is the
//!   non-scoped variant for externally measured intervals.
//! * [`export`] — machine-readable exporters: JSON (for `BENCH_*.json`
//!   style cross-PR trend tracking) and the Prometheus text exposition
//!   format.
//! * [`trace`] — the flight recorder: always-on per-thread ring
//!   buffers of fixed-size events (stage begin/end, instants, counter
//!   samples, CompOpt decisions) with bounded memory and drop
//!   counting. [`chrome`] serializes a drained trace to Chrome
//!   trace-event JSON loadable in Perfetto.
//!
//! The crate is dependency-free (std only) so every layer of the stack
//! can use it without weight.
//!
//! # Example
//!
//! ```
//! use telemetry::Registry;
//!
//! let reg = Registry::new();
//! reg.counter("requests", &[("service", "DW1")]).inc();
//! reg.histogram("latency.nanos", &[]).observe(1500);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("requests", &[("service", "DW1")]), 1);
//! let json = telemetry::export::to_json(&snap);
//! assert!(json.contains("\"requests\""));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry, Series, SeriesKey, SeriesValue, Snapshot};
pub use span::{record_duration, record_stage, Span};
pub use trace::{global_tracer, Decision, TraceEvent, TraceSnapshot, Tracer};

use std::sync::OnceLock;

/// The process-wide registry that the instrumented crates (codecs,
/// fleet, managed) record into by default.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Snapshot of the process-wide registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Opens a [`Span`] recording into the global registry on drop.
///
/// ```
/// {
///     let _guard = telemetry::span!("demo.stage");
///     // ... stage work ...
/// } // recorded into histogram "span.demo.stage" here
/// let _labeled = telemetry::span!("demo.stage", &[("service", "DW1")]);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $labels:expr) => {
        $crate::Span::enter_in($crate::global(), $name, $labels)
    };
}
