//! Request-scoped causal tracing with tail-based sampling.
//!
//! The aggregate planes answer *how much* (registry), *recently*
//! (windows), and *against objective* (SLOs); the flight recorder
//! answers *when*. None of them connect a burning p99 back to the
//! concrete operations where the time went. This module closes that
//! loop, mirroring the always-on sampled profiling the paper's fleet
//! characterization rests on (§III-A), but per request:
//!
//! * [`RequestCtx`] — a guard the managed service (and the fleet
//!   profiler) opens per operation. While it is live on the thread,
//!   every stage reported through
//!   [`record_stage`](crate::span::record_stage) (the codec block
//!   loops' single instrumentation point) additionally becomes a node
//!   in the request's span tree: span id, parent id, start offset,
//!   total and self nanoseconds.
//! * [`RequestSampler`] — a deterministic tail-based sampler with a
//!   bounded store. At request finish it keeps every errored request,
//!   the slowest-N per sliding sub-window (rotated on the injected
//!   [`Clock`], so tests drive it with [`ManualClock`]
//!   (crate::ManualClock)), and a seed-driven 1-in-k probabilistic
//!   baseline. Everything else is dropped — counted, never silent.
//! * an **attribution report** — running p99 self-time per stage,
//!   split by `(service, op, size class)`, aggregated over *all*
//!   finished requests (not just the sampled ones, so the report is
//!   unbiased). Served as `/profile.json`; the sampled span trees as
//!   `/requests.json`; both also flow-link into the Chrome export.
//!
//! Recording is sampling-gated by construction: a stage observation
//! costs one thread-local `Option` check when no context is live, so
//! the raw codec paths (and the decode-guard bench) pay nothing
//! measurable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::clock::Clock;
use crate::export::json_string;
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::window::WindowConfig;

/// Spans stored individually per request; further stage reports fold
/// into the per-name aggregate and count as dropped spans.
pub const MAX_SPANS_PER_REQUEST: usize = 256;

/// Default bound on retained sampled requests.
pub const DEFAULT_STORE_CAPACITY: usize = 256;

/// The operation a request performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A compression request.
    Compress,
    /// A decompression request.
    Decompress,
}

impl Op {
    /// Stable label (`compress` / `decompress`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Op::Compress => "compress",
            Op::Decompress => "decompress",
        }
    }
}

/// Payload size class, bucketing requests the way the paper buckets
/// block sizes (Figure 5): dictionaries matter under ~1 KiB, the cache
/// sweet spot is tens of KiB, streaming blocks beyond that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeClass {
    /// Up to 1 KiB.
    Tiny,
    /// 1 KiB to 16 KiB.
    Small,
    /// 16 KiB to 256 KiB.
    Medium,
    /// Beyond 256 KiB.
    Large,
}

impl SizeClass {
    /// Classifies a payload length.
    pub fn of(len: usize) -> Self {
        match len {
            0..=1024 => SizeClass::Tiny,
            1025..=16_384 => SizeClass::Small,
            16_385..=262_144 => SizeClass::Medium,
            _ => SizeClass::Large,
        }
    }

    /// Stable label (`tiny` / `small` / `medium` / `large`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SizeClass::Tiny => "tiny",
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        }
    }
}

/// Why the sampler kept a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// The request errored; errors are always kept.
    Error,
    /// The request ranked among the slowest-N of its sub-window.
    Slow,
    /// The seed-driven 1-in-k probabilistic baseline.
    Baseline,
}

impl KeepReason {
    /// Stable label (`error` / `slow` / `baseline`).
    pub fn as_str(&self) -> &'static str {
        match self {
            KeepReason::Error => "error",
            KeepReason::Slow => "slow",
            KeepReason::Baseline => "baseline",
        }
    }
}

/// One node of a finished request's span tree. Node ids are 1-based;
/// the root (the request operation itself) is id 1 with parent 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanNode {
    /// 1-based span id within the request.
    pub id: u32,
    /// Parent span id; 0 for the root.
    pub parent: u32,
    /// Stage name (the root carries the operation name).
    pub name: &'static str,
    /// Start offset from the request open, nanoseconds.
    pub start_nanos: u64,
    /// Wall time covered by this span.
    pub total_nanos: u64,
    /// Total minus the sum of direct children's totals (saturating).
    pub self_nanos: u64,
}

/// A finished request retained by the tail sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledRequest {
    /// Process-unique request id (also the Chrome flow id).
    pub id: u64,
    /// Service / use-case name.
    pub service: String,
    /// Operation.
    pub op: Op,
    /// Payload size class.
    pub size_class: SizeClass,
    /// Error label when the request failed; `None` on success.
    pub error: Option<&'static str>,
    /// Why the sampler kept it.
    pub reason: KeepReason,
    /// End-to-end latency on the sampler's clock.
    pub latency_nanos: u64,
    /// Flight-recorder track id of the thread that ran the request
    /// (the `tid` its stage events landed on).
    pub track: u64,
    /// Request open time on the flight-recorder timeline (nanoseconds
    /// from the tracer epoch), anchoring the span tree in the Chrome
    /// export.
    pub trace_start_nanos: u64,
    /// The span tree: root first, then stages in start order.
    pub spans: Vec<SpanNode>,
    /// Stage reports beyond [`MAX_SPANS_PER_REQUEST`] folded into the
    /// attribution aggregate instead of stored as nodes.
    pub spans_dropped: u32,
}

impl SampledRequest {
    /// Sum of self-times across the whole tree. Equals
    /// [`Self::latency_nanos`] whenever the recorded stages nest
    /// cleanly inside the request (the tree invariant the e2e test
    /// pins).
    pub fn self_nanos_total(&self) -> u64 {
        self.spans.iter().map(|s| s.self_nanos).sum()
    }
}

/// Tail-sampler policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Sliding-window shape for the slowest-N criterion.
    pub window: WindowConfig,
    /// Requests kept per sub-window for being slowest (N).
    pub slowest_per_window: usize,
    /// Probabilistic baseline: keep 1 in `baseline_one_in` requests
    /// (0 disables the baseline).
    pub baseline_one_in: u64,
    /// Bounded store capacity; the oldest non-error entry is evicted
    /// first when full.
    pub capacity: usize,
    /// Seed for the deterministic baseline decision.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            window: WindowConfig::DEFAULT,
            slowest_per_window: 8,
            baseline_one_in: 64,
            capacity: DEFAULT_STORE_CAPACITY,
            seed: 0x7265_7174, // "reqt"
        }
    }
}

/// Sampler health counters, all monotonic since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Requests opened.
    pub opened: u64,
    /// Requests finished (every open is eventually finished).
    pub finished: u64,
    /// Requests kept because they errored.
    pub kept_error: u64,
    /// Requests kept as slowest-N of their sub-window.
    pub kept_slow: u64,
    /// Requests kept by the probabilistic baseline.
    pub kept_baseline: u64,
    /// Requests finished but not sampled.
    pub dropped: u64,
    /// Sampled requests later pushed out of the bounded store.
    pub evicted: u64,
    /// Stage spans folded into aggregates past the per-request cap.
    pub spans_dropped: u64,
}

impl SamplerStats {
    /// Total requests kept, across all reasons.
    pub fn kept(&self) -> u64 {
        self.kept_error + self.kept_slow + self.kept_baseline
    }
}

/// A raw stage report captured while the request was live.
#[derive(Debug, Clone, Copy)]
struct RawSpan {
    name: &'static str,
    start_nanos: u64,
    total_nanos: u64,
}

/// The thread's currently open request (top of the LIFO stack).
struct ActiveRequest {
    sampler: RequestSampler,
    id: u64,
    service: String,
    op: Op,
    size_class: SizeClass,
    /// Sampler-clock time at open; latency is measured against it.
    open_clock_nanos: u64,
    /// Wall anchor for stage start offsets.
    open_instant: Instant,
    track: u64,
    trace_start_nanos: u64,
    spans: Vec<RawSpan>,
    /// Stage totals folded past the span cap, per name.
    overflow: HashMap<&'static str, (u64, u64)>, // (count, total_nanos)
    spans_dropped: u32,
    error: Option<&'static str>,
    /// Armed per-request budget relative to `open_instant`, if any.
    deadline_nanos: Option<u64>,
    /// Set by [`observe_stage`] when a stage ends past the budget.
    deadline_hit: bool,
}

thread_local! {
    static ACTIVE: std::cell::RefCell<Vec<ActiveRequest>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Guard for one open request. Dropping it finishes the request:
/// latency is read off the sampler's clock, the span tree is built,
/// the attribution aggregate is updated, and the tail sampler decides
/// keep-or-drop. Contexts must close LIFO per thread (they are guards;
/// the borrow checker enforces this under normal use).
#[derive(Debug)]
pub struct RequestCtx {
    /// Request id, for callers that want to correlate logs.
    id: u64,
}

impl RequestCtx {
    /// The process-unique request id (also the Chrome flow id).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Marks the request failed; the label lands in `/requests.json`
    /// and the Chrome export. An errored request is always sampled.
    pub fn mark_error(&self, label: &'static str) {
        ACTIVE.with(|cell| {
            if let Some(top) = cell.borrow_mut().last_mut() {
                if top.id == self.id {
                    top.error = Some(label);
                }
            }
        });
    }

    /// Arms a per-request deadline of `budget_nanos`, measured from the
    /// request's open instant. Subsequent [`observe_stage`] reports set
    /// the [`deadline_exceeded`](Self::deadline_exceeded) flag once a
    /// stage ends past the budget, so services can check between stages
    /// without their own timer plumbing. A zero budget disarms.
    pub fn arm_deadline(&self, budget_nanos: u64) {
        ACTIVE.with(|cell| {
            if let Some(top) = cell.borrow_mut().last_mut() {
                if top.id == self.id {
                    top.deadline_nanos = if budget_nanos == 0 {
                        None
                    } else {
                        Some(budget_nanos)
                    };
                    top.deadline_hit = false;
                }
            }
        });
    }

    /// Whether an armed deadline has been observed exceeded — either by
    /// a completed stage report ([`observe_stage`]) or by wall time at
    /// the moment of this call.
    pub fn deadline_exceeded(&self) -> bool {
        ACTIVE.with(|cell| {
            let mut stack = cell.borrow_mut();
            let Some(top) = stack.last_mut() else {
                return false;
            };
            if top.id != self.id {
                return false;
            }
            let Some(budget) = top.deadline_nanos else {
                return false;
            };
            if !top.deadline_hit {
                let elapsed = top.open_instant.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                if elapsed > budget {
                    top.deadline_hit = true;
                }
            }
            top.deadline_hit
        })
    }
}

impl Drop for RequestCtx {
    fn drop(&mut self) {
        let finished = ACTIVE.with(|cell| {
            let mut stack = cell.borrow_mut();
            match stack.last() {
                Some(top) if top.id == self.id => stack.pop(),
                // Mismatched guard order (should not happen with
                // guard-scoped use): drop the record rather than
                // corrupt another request's tree.
                _ => None,
            }
        });
        if let Some(active) = finished {
            let sampler = active.sampler.clone();
            sampler.finish(active);
        }
    }
}

/// Reports a completed stage into the thread's open request, if any.
/// This is the hook [`record_stage`](crate::span::record_stage) calls;
/// instrumentation that bypasses `record_stage` (e.g. whole-call codec
/// observers) can call it directly. Costs one thread-local check when
/// no request is live.
pub fn observe_stage(name: &'static str, start: Instant, elapsed: Duration) {
    ACTIVE.with(|cell| {
        let mut stack = cell.borrow_mut();
        let Some(top) = stack.last_mut() else { return };
        let start_nanos = start
            .checked_duration_since(top.open_instant)
            .unwrap_or_default()
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let total_nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        if let Some(budget) = top.deadline_nanos {
            if start_nanos.saturating_add(total_nanos) > budget {
                top.deadline_hit = true;
            }
        }
        if top.spans.len() < MAX_SPANS_PER_REQUEST {
            top.spans.push(RawSpan {
                name,
                start_nanos,
                total_nanos,
            });
        } else {
            let e = top.overflow.entry(name).or_insert((0, 0));
            e.0 += 1;
            e.1 += total_nanos;
            top.spans_dropped = top.spans_dropped.saturating_add(1);
        }
    });
}

/// True when the calling thread has an open [`RequestCtx`].
pub fn in_request() -> bool {
    ACTIVE.with(|cell| !cell.borrow().is_empty())
}

// ---------------------------------------------------------------------
// Attribution aggregate
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct StageCell {
    count: u64,
    self_hist: Histogram,
    self_sum: u64,
}

#[derive(Debug, Default)]
struct AttrCell {
    requests: u64,
    errors: u64,
    latency: Histogram,
    stages: HashMap<&'static str, StageCell>,
}

/// One `(service, op, size class)` row of the attribution report.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Service / use-case name.
    pub service: String,
    /// Operation.
    pub op: Op,
    /// Payload size class.
    pub size_class: SizeClass,
    /// Requests aggregated into this row.
    pub requests: u64,
    /// Errored requests in this row.
    pub errors: u64,
    /// End-to-end latency distribution.
    pub latency: HistogramSnapshot,
    /// Per-stage self-time aggregates, largest self-time sum first.
    pub stages: Vec<StageAttribution>,
}

/// Self-time aggregate for one stage within an attribution row.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAttribution {
    /// Stage name (the operation name for root self-time).
    pub stage: &'static str,
    /// Observations.
    pub count: u64,
    /// Total self nanoseconds attributed to the stage.
    pub self_sum: u64,
    /// Self-time distribution (p50/p90/p99 via the usual math).
    pub self_hist: HistogramSnapshot,
    /// Share of the row's total self time in `[0, 1]`.
    pub share: f64,
}

// ---------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct SlowSlot {
    epoch: u64,
    kept: Vec<u64>,
}

#[derive(Debug)]
struct Inner {
    cfg: SamplerConfig,
    clock: Arc<dyn Clock>,
    next_id: AtomicU64,
    opened: AtomicU64,
    finished: AtomicU64,
    kept_error: AtomicU64,
    kept_slow: AtomicU64,
    kept_baseline: AtomicU64,
    dropped: AtomicU64,
    evicted: AtomicU64,
    spans_dropped: AtomicU64,
    slow: Mutex<Vec<SlowSlot>>,
    store: Mutex<std::collections::VecDeque<SampledRequest>>,
    attribution: Mutex<HashMap<(String, Op, SizeClass), AttrCell>>,
}

/// The tail-based request sampler. Cheap to clone (shared state); the
/// process-wide instance is [`crate::requests`].
#[derive(Debug, Clone)]
pub struct RequestSampler {
    inner: Arc<Inner>,
}

impl RequestSampler {
    /// Creates a sampler rotating its slowest-N window on `clock`.
    pub fn new(cfg: SamplerConfig, clock: Arc<dyn Clock>) -> Self {
        let slots = cfg.window.sub_windows;
        Self {
            inner: Arc::new(Inner {
                cfg: SamplerConfig {
                    capacity: cfg.capacity.max(1),
                    ..cfg
                },
                clock,
                next_id: AtomicU64::new(1),
                opened: AtomicU64::new(0),
                finished: AtomicU64::new(0),
                kept_error: AtomicU64::new(0),
                kept_slow: AtomicU64::new(0),
                kept_baseline: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                evicted: AtomicU64::new(0),
                spans_dropped: AtomicU64::new(0),
                slow: Mutex::new(vec![SlowSlot::default(); slots]),
                store: Mutex::new(std::collections::VecDeque::new()),
                attribution: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The sampler configuration.
    pub fn config(&self) -> SamplerConfig {
        self.inner.cfg
    }

    /// Opens a request context on the calling thread. Stage reports on
    /// this thread nest into its span tree until the guard drops.
    pub fn open(&self, service: &str, op: Op, payload_len: usize) -> RequestCtx {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.opened.fetch_add(1, Ordering::Relaxed);
        let open_instant = Instant::now();
        let track = crate::trace::current_track();
        let active = ActiveRequest {
            sampler: self.clone(),
            id,
            service: service.to_string(),
            op,
            size_class: SizeClass::of(payload_len),
            open_clock_nanos: self.inner.clock.now_nanos(),
            open_instant,
            track: track.tid(),
            trace_start_nanos: track.nanos_of(open_instant),
            spans: Vec::new(),
            overflow: HashMap::new(),
            spans_dropped: 0,
            error: None,
            deadline_nanos: None,
            deadline_hit: false,
        };
        ACTIVE.with(|cell| cell.borrow_mut().push(active));
        RequestCtx { id }
    }

    fn finish(&self, active: ActiveRequest) {
        let inner = &self.inner;
        inner.finished.fetch_add(1, Ordering::Relaxed);
        inner
            .spans_dropped
            .fetch_add(active.spans_dropped as u64, Ordering::Relaxed);
        let now = inner.clock.now_nanos();
        let latency = now.saturating_sub(active.open_clock_nanos);
        let spans = build_tree(active.op.as_str(), latency, &active.spans);

        // Attribution aggregates over every finished request, so the
        // report is unbiased by the sampling decision below.
        {
            let mut attr = inner
                .attribution
                .lock()
                .expect("attribution map not poisoned");
            let cell = attr
                .entry((active.service.clone(), active.op, active.size_class))
                .or_default();
            cell.requests += 1;
            if active.error.is_some() {
                cell.errors += 1;
            }
            cell.latency.observe(latency);
            for s in &spans {
                let sc = cell.stages.entry(s.name).or_default();
                sc.count += 1;
                sc.self_hist.observe(s.self_nanos);
                sc.self_sum += s.self_nanos;
            }
            for (name, (count, total)) in &active.overflow {
                let sc = cell.stages.entry(name).or_default();
                sc.count += count;
                sc.self_hist.observe(*total);
                sc.self_sum += total;
            }
        }

        // Tail decision: error > slowest-N > baseline.
        let reason = if active.error.is_some() {
            Some(KeepReason::Error)
        } else if self.qualifies_slow(now, latency) {
            Some(KeepReason::Slow)
        } else if self.baseline_keeps(active.id) {
            Some(KeepReason::Baseline)
        } else {
            None
        };
        let Some(reason) = reason else {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        match reason {
            KeepReason::Error => inner.kept_error.fetch_add(1, Ordering::Relaxed),
            KeepReason::Slow => inner.kept_slow.fetch_add(1, Ordering::Relaxed),
            KeepReason::Baseline => inner.kept_baseline.fetch_add(1, Ordering::Relaxed),
        };
        let sampled = SampledRequest {
            id: active.id,
            service: active.service,
            op: active.op,
            size_class: active.size_class,
            error: active.error,
            reason,
            latency_nanos: latency,
            track: active.track,
            trace_start_nanos: active.trace_start_nanos,
            spans,
            spans_dropped: active.spans_dropped,
        };
        let mut store = inner.store.lock().expect("sample store not poisoned");
        if store.len() >= inner.cfg.capacity {
            // Evict the oldest non-error entry first; errors only fall
            // out when the whole store is errors.
            let victim = store.iter().position(|r| r.error.is_none()).unwrap_or(0);
            store.remove(victim);
            inner.evicted.fetch_add(1, Ordering::Relaxed);
        }
        store.push_back(sampled);
    }

    /// Whether `latency` ranks among the slowest-N of the current
    /// sub-window (and reserves its slot when it does).
    fn qualifies_slow(&self, now_nanos: u64, latency: u64) -> bool {
        let n = self.inner.cfg.slowest_per_window;
        if n == 0 {
            return false;
        }
        let cfg = self.inner.cfg.window;
        let epoch = now_nanos / cfg.sub_window_nanos;
        let mut slots = self.inner.slow.lock().expect("slow slots not poisoned");
        let len = slots.len() as u64;
        let Some(slot) = slots.get_mut((epoch % len) as usize) else {
            return false;
        };
        if slot.epoch != epoch {
            *slot = SlowSlot {
                epoch,
                kept: Vec::with_capacity(n),
            };
        }
        if slot.kept.len() < n {
            slot.kept.push(latency);
            return true;
        }
        let (min_idx, &min) = slot
            .kept
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v)
            .expect("kept is non-empty");
        if latency > min {
            if let Some(v) = slot.kept.get_mut(min_idx) {
                *v = latency;
            }
            return true;
        }
        false
    }

    /// Deterministic 1-in-k baseline: a SplitMix64 hash of the seed
    /// and request id, so a fixed seed replays to identical decisions.
    fn baseline_keeps(&self, id: u64) -> bool {
        let k = self.inner.cfg.baseline_one_in;
        if k == 0 {
            return false;
        }
        splitmix64(self.inner.cfg.seed ^ id).is_multiple_of(k)
    }

    /// Health counters.
    pub fn stats(&self) -> SamplerStats {
        let i = &self.inner;
        SamplerStats {
            opened: i.opened.load(Ordering::Relaxed),
            finished: i.finished.load(Ordering::Relaxed),
            kept_error: i.kept_error.load(Ordering::Relaxed),
            kept_slow: i.kept_slow.load(Ordering::Relaxed),
            kept_baseline: i.kept_baseline.load(Ordering::Relaxed),
            dropped: i.dropped.load(Ordering::Relaxed),
            evicted: i.evicted.load(Ordering::Relaxed),
            spans_dropped: i.spans_dropped.load(Ordering::Relaxed),
        }
    }

    /// The retained sampled requests, oldest first.
    pub fn sampled(&self) -> Vec<SampledRequest> {
        self.inner
            .store
            .lock()
            .expect("sample store not poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The aggregated p99 attribution report, sorted by service, op,
    /// then size class; stages within a row sorted by self-time sum.
    pub fn attribution(&self) -> Vec<AttributionRow> {
        let attr = self
            .inner
            .attribution
            .lock()
            .expect("attribution map not poisoned");
        let mut rows: Vec<AttributionRow> = attr
            .iter()
            .map(|((service, op, size_class), cell)| {
                let mut stages: Vec<StageAttribution> = cell
                    .stages
                    .iter()
                    .map(|(name, sc)| StageAttribution {
                        stage: name,
                        count: sc.count,
                        self_sum: sc.self_sum,
                        self_hist: sc.self_hist.snapshot(),
                        share: 0.0,
                    })
                    .collect();
                let total: u64 = stages.iter().map(|s| s.self_sum).sum();
                for s in &mut stages {
                    s.share = if total == 0 {
                        0.0
                    } else {
                        s.self_sum as f64 / total as f64
                    };
                }
                stages.sort_by(|a, b| b.self_sum.cmp(&a.self_sum).then(a.stage.cmp(b.stage)));
                AttributionRow {
                    service: service.clone(),
                    op: *op,
                    size_class: *size_class,
                    requests: cell.requests,
                    errors: cell.errors,
                    latency: cell.latency.snapshot(),
                    stages,
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            (a.service.as_str(), a.op.as_str(), a.size_class).cmp(&(
                b.service.as_str(),
                b.op.as_str(),
                b.size_class,
            ))
        });
        rows
    }

    /// Renders the attribution report as the `/profile.json` payload.
    pub fn profile_json(&self) -> String {
        to_profile_json(&self.attribution(), &self.stats())
    }

    /// Renders the sampled store as the `/requests.json` payload.
    pub fn requests_json(&self) -> String {
        to_requests_json(&self.sampled(), &self.stats())
    }

    /// Prometheus text for the sampler's health counters.
    pub fn to_prometheus(&self) -> String {
        let s = self.stats();
        let mut out = String::with_capacity(512);
        out.push_str("# HELP requests_total Requests finished under a RequestCtx\n");
        out.push_str("# TYPE requests_total counter\n");
        out.push_str(&format!("requests_total {}\n", s.finished));
        out.push_str("# HELP requests_sampled_total Requests kept by the tail sampler\n");
        out.push_str("# TYPE requests_sampled_total counter\n");
        for (reason, v) in [
            ("error", s.kept_error),
            ("slow", s.kept_slow),
            ("baseline", s.kept_baseline),
        ] {
            out.push_str(&format!(
                "requests_sampled_total{{reason=\"{reason}\"}} {v}\n"
            ));
        }
        out.push_str("# HELP requests_dropped_total Requests finished but not sampled\n");
        out.push_str("# TYPE requests_dropped_total counter\n");
        out.push_str(&format!("requests_dropped_total {}\n", s.dropped));
        out.push_str(
            "# HELP requests_evicted_total Sampled requests evicted from the bounded store\n",
        );
        out.push_str("# TYPE requests_evicted_total counter\n");
        out.push_str(&format!("requests_evicted_total {}\n", s.evicted));
        out.push_str(
            "# HELP request_spans_dropped_total Stage spans folded past the per-request cap\n",
        );
        out.push_str("# TYPE request_spans_dropped_total counter\n");
        out.push_str(&format!(
            "request_spans_dropped_total {}\n",
            s.spans_dropped
        ));
        out
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Builds the span tree from raw stage reports: spans sorted by
/// (start asc, end desc) nest by time containment under a stack, the
/// root spanning the whole request. Self-time is total minus direct
/// children's totals, saturating (partial overlaps from timer jitter
/// cannot drive it negative).
fn build_tree(root_name: &'static str, latency: u64, raw: &[RawSpan]) -> Vec<SpanNode> {
    let mut order: Vec<&RawSpan> = raw.iter().collect();
    order.sort_by(|a, b| {
        a.start_nanos
            .cmp(&b.start_nanos)
            .then((b.start_nanos + b.total_nanos).cmp(&(a.start_nanos + a.total_nanos)))
    });
    let mut nodes = vec![SpanNode {
        id: 1,
        parent: 0,
        name: root_name,
        start_nanos: 0,
        total_nanos: latency,
        self_nanos: latency,
    }];
    // (node index, end nanos) of the open enclosing spans.
    let mut stack: Vec<(usize, u64)> = vec![(0, u64::MAX)];
    for r in order {
        let end = r.start_nanos.saturating_add(r.total_nanos);
        while stack.len() > 1 {
            let &(_, top_end) = stack.last().expect("stack non-empty");
            if r.start_nanos >= top_end {
                stack.pop();
            } else {
                break;
            }
        }
        let &(parent_idx, _) = stack.last().expect("root stays on the stack");
        let parent_id = nodes.get(parent_idx).map(|n| n.id).unwrap_or(1);
        let idx = nodes.len();
        nodes.push(SpanNode {
            id: idx as u32 + 1,
            parent: parent_id,
            name: r.name,
            start_nanos: r.start_nanos,
            total_nanos: r.total_nanos,
            self_nanos: r.total_nanos,
        });
        if let Some(parent) = nodes.get_mut(parent_idx) {
            parent.self_nanos = parent.self_nanos.saturating_sub(r.total_nanos);
        }
        stack.push((idx, end));
    }
    nodes
}

// ---------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------

fn push_stats(out: &mut String, stats: &SamplerStats) {
    out.push_str(&format!(
        "\"requests_total\":{},\"kept\":{},\"kept_error\":{},\"kept_slow\":{},\
         \"kept_baseline\":{},\"dropped\":{},\"evicted\":{},\"spans_dropped\":{}",
        stats.finished,
        stats.kept(),
        stats.kept_error,
        stats.kept_slow,
        stats.kept_baseline,
        stats.dropped,
        stats.evicted,
        stats.spans_dropped,
    ));
}

/// Renders the attribution report plus sampler counters as JSON — the
/// `/profile.json` payload.
pub fn to_profile_json(rows: &[AttributionRow], stats: &SamplerStats) -> String {
    let mut out = String::with_capacity(rows.len() * 512 + 256);
    out.push_str("{\"version\":1,");
    push_stats(&mut out, stats);
    out.push_str(",\"attribution\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"service\":");
        json_string(&mut out, &row.service);
        out.push_str(&format!(
            ",\"op\":\"{}\",\"size_class\":\"{}\",\"requests\":{},\"errors\":{},\
             \"latency\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"mean\":{:.1}}},\"stages\":[",
            row.op.as_str(),
            row.size_class.as_str(),
            row.requests,
            row.errors,
            row.latency.count(),
            row.latency.quantile(0.50),
            row.latency.quantile(0.90),
            row.latency.quantile(0.99),
            row.latency.max,
            row.latency.mean(),
        ));
        for (j, s) in row.stages.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"stage\":");
            json_string(&mut out, s.stage);
            out.push_str(&format!(
                ",\"count\":{},\"self_sum\":{},\"self_p50\":{},\"self_p99\":{},\"share\":{:.4}}}",
                s.count,
                s.self_sum,
                s.self_hist.quantile(0.50),
                s.self_hist.quantile(0.99),
                s.share,
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders the sampled span trees as JSON — the `/requests.json`
/// payload.
pub fn to_requests_json(sampled: &[SampledRequest], stats: &SamplerStats) -> String {
    let mut out = String::with_capacity(sampled.len() * 512 + 256);
    out.push_str("{\"version\":1,");
    push_stats(&mut out, stats);
    out.push_str(",\"requests\":[");
    for (i, r) in sampled.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"id\":{},\"service\":", r.id));
        json_string(&mut out, &r.service);
        out.push_str(&format!(
            ",\"op\":\"{}\",\"size_class\":\"{}\",\"outcome\":\"{}\"",
            r.op.as_str(),
            r.size_class.as_str(),
            if r.error.is_some() { "error" } else { "ok" },
        ));
        if let Some(e) = r.error {
            out.push_str(",\"error\":");
            json_string(&mut out, e);
        }
        out.push_str(&format!(
            ",\"reason\":\"{}\",\"latency_nanos\":{},\"track\":{},\"trace_start_nanos\":{},\
             \"spans_dropped\":{},\"spans\":[",
            r.reason.as_str(),
            r.latency_nanos,
            r.track,
            r.trace_start_nanos,
            r.spans_dropped,
        ));
        for (j, s) in r.spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"span\":{},\"parent\":{},\"name\":",
                s.id, s.parent
            ));
            json_string(&mut out, s.name);
            out.push_str(&format!(
                ",\"start\":{},\"total\":{},\"self\":{}}}",
                s.start_nanos, s.total_nanos, s.self_nanos
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    const MS: u64 = 1_000_000;

    fn manual_sampler(cfg: SamplerConfig) -> (RequestSampler, Arc<ManualClock>) {
        let clock = ManualClock::shared();
        (
            RequestSampler::new(cfg, Arc::clone(&clock) as Arc<dyn Clock>),
            clock,
        )
    }

    fn tight_cfg() -> SamplerConfig {
        SamplerConfig {
            window: WindowConfig::new(100 * MS, 4),
            slowest_per_window: 2,
            baseline_one_in: 0,
            capacity: 8,
            seed: 42,
        }
    }

    #[test]
    fn armed_deadlines_flag_via_stage_reports_and_wall_time() {
        let (s, _clock) = manual_sampler(tight_cfg());
        let ctx = s.open("svc", Op::Compress, 100);
        assert!(!ctx.deadline_exceeded(), "no deadline armed");
        // A generous budget is not exceeded by an instant stage.
        ctx.arm_deadline(60_000_000_000);
        observe_stage("fast", Instant::now(), Duration::from_nanos(1));
        assert!(!ctx.deadline_exceeded());
        // A 1ns budget trips on the next stage report (stage end is
        // necessarily past it) and stays tripped.
        ctx.arm_deadline(1);
        observe_stage("slow", Instant::now(), Duration::from_millis(1));
        assert!(ctx.deadline_exceeded());
        assert!(ctx.deadline_exceeded(), "flag is sticky");
        // Re-arming with zero disarms.
        ctx.arm_deadline(0);
        assert!(!ctx.deadline_exceeded());
        drop(ctx);
        // Wall-time path: no stage report needed once time has passed.
        let ctx = s.open("svc", Op::Compress, 100);
        ctx.arm_deadline(1);
        std::thread::sleep(Duration::from_millis(2));
        assert!(ctx.deadline_exceeded());
    }

    #[test]
    fn size_classes_bucket_payloads() {
        assert_eq!(SizeClass::of(0), SizeClass::Tiny);
        assert_eq!(SizeClass::of(1024), SizeClass::Tiny);
        assert_eq!(SizeClass::of(1025), SizeClass::Small);
        assert_eq!(SizeClass::of(16 * 1024), SizeClass::Small);
        assert_eq!(SizeClass::of(200_000), SizeClass::Medium);
        assert_eq!(SizeClass::of(1 << 20), SizeClass::Large);
    }

    #[test]
    fn errored_requests_are_always_kept() {
        let (s, clock) = manual_sampler(SamplerConfig {
            slowest_per_window: 0,
            baseline_one_in: 0,
            ..tight_cfg()
        });
        for i in 0..5 {
            let ctx = s.open("svc", Op::Decompress, 100);
            clock.advance(MS);
            if i % 2 == 0 {
                ctx.mark_error("corrupt");
            }
            drop(ctx);
        }
        let stats = s.stats();
        assert_eq!(stats.finished, 5);
        assert_eq!(stats.kept_error, 3);
        assert_eq!(stats.dropped, 2);
        let sampled = s.sampled();
        assert_eq!(sampled.len(), 3);
        assert!(sampled.iter().all(|r| r.error == Some("corrupt")));
        assert!(sampled.iter().all(|r| r.reason == KeepReason::Error));
        assert!(sampled.iter().all(|r| r.latency_nanos == MS));
    }

    #[test]
    fn slowest_n_per_window_is_kept_and_window_slides() {
        // N=2 per 100 ms sub-window; total elapsed stays inside the
        // first sub-window (25 ms < 100 ms).
        let (s, clock) = manual_sampler(tight_cfg());
        for l in [5u64, 1, 9, 3, 7] {
            let ctx = s.open("svc", Op::Compress, 100);
            clock.advance(l * MS);
            drop(ctx);
        }
        // 5 ms and 1 ms fill the two slots; 9 ms evicts min(1); 3 ms
        // beats neither survivor (5, 9); 7 ms evicts min(5).
        assert_eq!(s.stats().kept_slow, 4, "5,1,9,7 qualify; 3 does not");
        // A fresh sub-window resets the slots.
        clock.advance(100 * MS);
        let ctx = s.open("svc", Op::Compress, 100);
        clock.advance(MS);
        drop(ctx);
        assert_eq!(s.stats().kept_slow, 5, "new sub-window starts empty");
    }

    #[test]
    fn baseline_is_deterministic_under_a_fixed_seed() {
        let decisions = |seed: u64| -> Vec<bool> {
            let (s, clock) = manual_sampler(SamplerConfig {
                slowest_per_window: 0,
                baseline_one_in: 4,
                seed,
                ..tight_cfg()
            });
            (0..64)
                .map(|_| {
                    let before = s.stats().kept_baseline;
                    let ctx = s.open("svc", Op::Compress, 10);
                    clock.advance(MS);
                    drop(ctx);
                    s.stats().kept_baseline > before
                })
                .collect()
        };
        let a = decisions(7);
        let b = decisions(7);
        let c = decisions(8);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds must differ");
        let kept = a.iter().filter(|&&k| k).count();
        assert!((4..=28).contains(&kept), "1-in-4 baseline kept {kept}/64");
    }

    #[test]
    fn store_is_bounded_and_evicts_non_errors_first() {
        let (s, clock) = manual_sampler(SamplerConfig {
            slowest_per_window: 0,
            baseline_one_in: 1, // keep everything
            capacity: 4,
            ..tight_cfg()
        });
        // Two errors, then a stream of ok requests.
        for _ in 0..2 {
            let ctx = s.open("svc", Op::Compress, 10);
            clock.advance(MS);
            ctx.mark_error("boom");
            drop(ctx);
        }
        for _ in 0..10 {
            let ctx = s.open("svc", Op::Compress, 10);
            clock.advance(MS);
            drop(ctx);
        }
        let sampled = s.sampled();
        assert_eq!(sampled.len(), 4, "store stays at capacity");
        assert_eq!(s.stats().evicted, 8);
        let errors = sampled.iter().filter(|r| r.error.is_some()).count();
        assert_eq!(errors, 2, "errors out-live ok entries under eviction");
    }

    #[test]
    fn span_tree_nests_by_containment_and_self_times_sum() {
        let raw = [
            // outer: [0, 10ms); inner a: [1ms, 4ms); inner b: [5ms, 8ms)
            RawSpan {
                name: "outer",
                start_nanos: 0,
                total_nanos: 10 * MS,
            },
            RawSpan {
                name: "inner.a",
                start_nanos: MS,
                total_nanos: 3 * MS,
            },
            RawSpan {
                name: "inner.b",
                start_nanos: 5 * MS,
                total_nanos: 3 * MS,
            },
            // sibling of outer: [12ms, 14ms)
            RawSpan {
                name: "tail",
                start_nanos: 12 * MS,
                total_nanos: 2 * MS,
            },
        ];
        let nodes = build_tree("op", 16 * MS, &raw);
        assert_eq!(nodes.len(), 5);
        let by_name = |n: &str| *nodes.iter().find(|s| s.name == n).expect(n);
        let root = by_name("op");
        let outer = by_name("outer");
        let a = by_name("inner.a");
        let b = by_name("inner.b");
        let tail = by_name("tail");
        assert_eq!(root.parent, 0);
        assert_eq!(outer.parent, root.id);
        assert_eq!(a.parent, outer.id);
        assert_eq!(b.parent, outer.id);
        assert_eq!(tail.parent, root.id);
        assert_eq!(outer.self_nanos, 4 * MS, "10 - 3 - 3");
        assert_eq!(root.self_nanos, 4 * MS, "16 - 10 - 2");
        let self_sum: u64 = nodes.iter().map(|s| s.self_nanos).sum();
        assert_eq!(self_sum, 16 * MS, "self-times partition the latency");
    }

    #[test]
    fn observe_stage_feeds_the_open_request_only() {
        let (s, clock) = manual_sampler(SamplerConfig {
            baseline_one_in: 1,
            slowest_per_window: 0,
            ..tight_cfg()
        });
        // No open request: a stage report is a no-op.
        observe_stage("orphan", Instant::now(), Duration::from_millis(1));
        let ctx = s.open("svc", Op::Compress, 2000);
        assert!(in_request());
        let t0 = Instant::now();
        observe_stage("stage.x", t0, Duration::from_millis(2));
        observe_stage(
            "stage.y",
            t0 + Duration::from_millis(3),
            Duration::from_millis(1),
        );
        clock.advance(6 * MS);
        drop(ctx);
        assert!(!in_request());
        let sampled = s.sampled();
        assert_eq!(sampled.len(), 1);
        let r = &sampled[0];
        assert_eq!(r.size_class, SizeClass::Small);
        let names: Vec<&str> = r.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["compress", "stage.x", "stage.y"]);
        assert_eq!(r.latency_nanos, 6 * MS);
        assert_eq!(r.self_nanos_total(), r.latency_nanos);
    }

    #[test]
    fn span_cap_folds_overflow_into_attribution() {
        let (s, clock) = manual_sampler(SamplerConfig {
            baseline_one_in: 1,
            slowest_per_window: 0,
            ..tight_cfg()
        });
        let ctx = s.open("svc", Op::Compress, 10);
        let t0 = Instant::now();
        for i in 0..(MAX_SPANS_PER_REQUEST + 10) {
            observe_stage(
                "stage.many",
                t0 + Duration::from_nanos(i as u64),
                Duration::from_nanos(10),
            );
        }
        clock.advance(MS);
        drop(ctx);
        let r = &s.sampled()[0];
        assert_eq!(r.spans.len(), MAX_SPANS_PER_REQUEST + 1, "root + cap");
        assert_eq!(r.spans_dropped, 10);
        assert_eq!(s.stats().spans_dropped, 10);
        let attr = s.attribution();
        let stage = attr[0]
            .stages
            .iter()
            .find(|st| st.stage == "stage.many")
            .expect("stage aggregated");
        assert_eq!(stage.count as usize, MAX_SPANS_PER_REQUEST + 10);
    }

    #[test]
    fn attribution_rows_split_by_service_op_and_size() {
        let (s, clock) = manual_sampler(tight_cfg());
        for (svc, op, len) in [
            ("a", Op::Compress, 100),
            ("a", Op::Compress, 100),
            ("a", Op::Decompress, 100),
            ("b", Op::Compress, 2000),
        ] {
            let ctx = s.open(svc, op, len);
            clock.advance(MS);
            drop(ctx);
        }
        let rows = s.attribution();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].service, "a");
        assert_eq!(rows[0].op, Op::Compress);
        assert_eq!(rows[0].requests, 2);
        assert_eq!(rows[1].op, Op::Decompress);
        assert_eq!(rows[2].service, "b");
        assert_eq!(rows[2].size_class, SizeClass::Small);
        // The root stage carries 100% of self time when no stages ran.
        assert_eq!(rows[0].stages.len(), 1);
        assert_eq!(rows[0].stages[0].stage, "compress");
        assert!((rows[0].stages[0].share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_payloads_are_balanced_and_carry_the_data() {
        let (s, clock) = manual_sampler(SamplerConfig {
            baseline_one_in: 1,
            ..tight_cfg()
        });
        let ctx = s.open("svc\"quoted", Op::Compress, 100);
        observe_stage("stage.q", Instant::now(), Duration::from_millis(1));
        clock.advance(2 * MS);
        ctx.mark_error("corrupt \"frame\"");
        drop(ctx);
        for json in [s.profile_json(), s.requests_json()] {
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert_eq!(json.matches('[').count(), json.matches(']').count());
            assert!(json.contains("svc\\\"quoted"), "quotes escaped: {json}");
        }
        let rq = s.requests_json();
        assert!(rq.contains("\"outcome\":\"error\""));
        assert!(rq.contains("\"reason\":\"error\""));
        assert!(rq.contains("\"name\":\"stage.q\""));
        let pf = s.profile_json();
        assert!(pf.contains("\"attribution\":["));
        assert!(pf.contains("\"stage\":\"stage.q\""));
        let prom = s.to_prometheus();
        assert!(prom.contains("requests_total 1\n"));
        assert!(prom.contains("requests_sampled_total{reason=\"error\"} 1\n"));
    }
}
