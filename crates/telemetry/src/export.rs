//! Machine-readable exporters.
//!
//! Two formats over the same [`Snapshot`]:
//!
//! * [`to_json`] — a self-describing JSON document (`{"version":1,
//!   "series":[...]}`) with per-histogram p50/p90/p99/max, for artifact
//!   files and cross-PR trend tracking.
//! * [`to_prometheus`] — the Prometheus text exposition format (0.0.4):
//!   counters and gauges as single samples, histograms as cumulative
//!   `_bucket{le="..."}` samples plus `_sum` and `_count`. Metric names
//!   are sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset (dots
//!   become underscores).

use crate::histogram::{bucket_upper, HistogramSnapshot};
use crate::registry::{SeriesValue, Snapshot};

/// Serializes a snapshot as a JSON document.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(snap.series.len() * 96 + 32);
    out.push_str("{\"version\":1,\"series\":[");
    for (i, s) in snap.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_string(&mut out, &s.key.name);
        out.push_str(",\"labels\":{");
        for (j, (k, v)) in s.key.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push(':');
            json_string(&mut out, v);
        }
        out.push_str("},");
        match &s.value {
            SeriesValue::Counter(v) => {
                out.push_str(&format!("\"kind\":\"counter\",\"value\":{v}"));
            }
            SeriesValue::Gauge(v) => {
                out.push_str("\"kind\":\"gauge\",\"value\":");
                json_number(&mut out, *v);
            }
            SeriesValue::Histogram(h) => {
                out.push_str(&format!(
                    "\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"mean\":",
                    h.count(),
                    h.sum,
                    h.max,
                ));
                json_number(&mut out, h.mean());
                out.push_str(&format!(
                    ",\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                ));
                let mut first = true;
                for (idx, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{},{c}]", bucket_upper(idx)));
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn json_number(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
        // `{}` on a whole f64 prints no decimal point; that is still
        // valid JSON (an integer literal).
    } else {
        out.push_str("null");
    }
}

/// Serializes a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(snap.series.len() * 128 + 32);
    let mut last_name: Option<&str> = None;
    for s in &snap.series {
        let name = prom_name(&s.key.name);
        if last_name != Some(s.key.name.as_str()) {
            let kind = match &s.value {
                SeriesValue::Counter(_) => "counter",
                SeriesValue::Gauge(_) => "gauge",
                SeriesValue::Histogram(_) => "histogram",
            };
            // The registry carries no free-form descriptions, so HELP
            // states the one thing the sanitized name can lose: the
            // original dotted series name.
            let mut help = String::new();
            prom_help_escape(&mut help, &s.key.name);
            out.push_str(&format!(
                "# HELP {name} Cumulative {kind} \"{help}\" from the datacomp registry\n"
            ));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_name = Some(s.key.name.as_str());
        }
        match &s.value {
            SeriesValue::Counter(v) => {
                out.push_str(&format!("{name}{} {v}\n", prom_labels(&s.key.labels, None)));
            }
            SeriesValue::Gauge(v) => {
                let v = if v.is_finite() { *v } else { 0.0 };
                out.push_str(&format!("{name}{} {v}\n", prom_labels(&s.key.labels, None)));
            }
            SeriesValue::Histogram(h) => prom_histogram(&mut out, &name, &s.key.labels, h),
        }
    }
    out
}

fn prom_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    let mut cum = 0u64;
    for (idx, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let le = bucket_upper(idx).to_string();
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            prom_labels(labels, Some(&le))
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {cum}\n",
        prom_labels(labels, Some("+Inf"))
    ));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        prom_labels(labels, None),
        h.sum
    ));
    out.push_str(&format!(
        "{name}_count{} {cum}\n",
        prom_labels(labels, None)
    ));
}

/// Sanitizes a metric name to the Prometheus charset.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline (the three characters that would otherwise break
/// the `name{label="value"} sample` line structure).
pub fn prom_escape(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escapes HELP text per the exposition format: backslash and newline
/// (double quotes are legal inside HELP lines).
pub fn prom_help_escape(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&prom_name(k));
        out.push_str("=\"");
        prom_escape(&mut out, v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        reg.counter(
            "codecs.compress.calls",
            &[("algo", "zstdx"), ("level", "3")],
        )
        .add(7);
        reg.gauge("fleet.app.secs", &[("service", "DW1")]).set(1.25);
        let h = reg.histogram("span.zstdx.match_find", &[]);
        for v in [100u64, 1000, 10_000] {
            h.observe(v);
        }
        reg.snapshot()
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = to_json(&sample_snapshot());
        assert!(json.starts_with("{\"version\":1"));
        assert!(json.contains("\"codecs.compress.calls\""));
        assert!(json.contains("\"algo\":\"zstdx\""));
        assert!(json.contains("\"value\":7"));
        assert!(json.contains("\"kind\":\"histogram\""));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p99\":"));
        // Balanced braces/brackets (cheap structural check; the full
        // parse happens in the cross-crate integration test).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_strings() {
        let reg = Registry::new();
        reg.counter("weird\"name", &[("k", "v\\w\n")]).inc();
        let json = to_json(&reg.snapshot());
        assert!(json.contains("weird\\\"name"));
        assert!(json.contains("v\\\\w\\n"));
    }

    #[test]
    fn prometheus_lines_are_parseable() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE codecs_compress_calls counter\n"));
        assert!(
            text.contains("# HELP codecs_compress_calls Cumulative counter \"codecs.compress.calls\" from the datacomp registry\n")
        );
        assert!(text.contains("# HELP span_zstdx_match_find Cumulative histogram"));
        assert!(text.contains("codecs_compress_calls{algo=\"zstdx\",level=\"3\"} 7\n"));
        assert!(text.contains("# TYPE span_zstdx_match_find histogram\n"));
        assert!(text.contains("span_zstdx_match_find_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("span_zstdx_match_find_sum 11100\n"));
        assert!(text.contains("span_zstdx_match_find_count 3\n"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, value) = line.rsplit_once(' ').expect("sample line");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparseable value in {line}"
            );
            let name_part = metric.split('{').next().unwrap();
            assert!(
                name_part
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line}"
            );
        }
    }

    #[test]
    fn json_histogram_exposes_mean() {
        let json = to_json(&sample_snapshot());
        // sum 11100 over 3 observations.
        assert!(json.contains("\"mean\":3700"), "{json}");
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let reg = Registry::new();
        reg.counter("evil", &[("path", "C:\\tmp\"x\ny")]).inc();
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("evil{path=\"C:\\\\tmp\\\"x\\ny\"} 1\n"));
        // Every sample stays on one physical line with balanced quotes.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let unescaped = line.replace("\\\\", "").replace("\\\"", "");
            assert_eq!(unescaped.matches('"').count() % 2, 0, "bad line {line}");
        }
    }

    #[test]
    fn prom_escape_passes_clean_values_through() {
        let mut out = String::new();
        prom_escape(&mut out, "zstdx-19/dict");
        assert_eq!(out, "zstdx-19/dict");
    }

    #[test]
    fn help_lines_escape_hostile_names_onto_one_line() {
        let reg = Registry::new();
        reg.counter("weird\\name\nwith newline", &[]).inc();
        let text = to_prometheus(&reg.snapshot());
        let help = text
            .lines()
            .find(|l| l.starts_with("# HELP"))
            .expect("HELP line");
        assert!(help.contains("weird\\\\name\\nwith newline"), "{help}");
        // Exactly one HELP + one TYPE + one sample: nothing leaked onto
        // extra physical lines.
        assert_eq!(text.lines().count(), 3, "{text}");
    }

    #[test]
    fn every_series_gets_help_before_type() {
        let text = to_prometheus(&sample_snapshot());
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                let next = lines.peek().expect("TYPE follows HELP");
                assert!(
                    next.starts_with(&format!("# TYPE {name} ")),
                    "HELP for {name} not followed by its TYPE: {next}"
                );
            }
        }
        assert_eq!(
            text.matches("# HELP").count(),
            3,
            "one HELP per distinct series name"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let text = to_prometheus(&sample_snapshot());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("span_zstdx_match_find_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 3);
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(prom_name("fleet.compress.nanos"), "fleet_compress_nanos");
        assert_eq!(prom_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a-b c"), "a_b_c");
    }
}
