//! Log-bucketed histograms.
//!
//! Buckets are powers of two: bucket 0 holds the value 0 and bucket
//! `i >= 1` holds values in `[2^(i-1), 2^i)`, so any `u64` maps to one of
//! 65 buckets via its bit length. This is the same log-scale bucketing
//! the paper uses for its size distributions (Figures 5, 8, 9) and it
//! makes histograms cheap (one atomic add per observation), bounded, and
//! mergeable: merging two histograms is element-wise addition, exactly
//! equivalent to observing the concatenation of both sample streams.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: value 0 plus one bucket per possible bit length.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket that holds `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Largest value the bucket at `index` can hold (inclusive).
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

/// A thread-safe log-bucketed histogram. All cells are atomic, so one
/// instance can be shared across threads and observed concurrently; the
/// per-thread views merge by construction.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    // indexing_slicing: `bucket_index` clamps to the last bucket.
    #[allow(clippy::indexing_slicing)]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the histogram state.
    ///
    /// Concurrent observers may land between the per-bucket reads; the
    /// snapshot is still a valid histogram (each observation is either
    /// fully in or fully out of the bucket counts, and `count` is
    /// derived from the buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum as f64 / n as f64
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), as the upper bound of
    /// the bucket containing the rank-`ceil(q * count)` observation,
    /// clamped to the exact observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self`. Equivalent to having observed both
    /// sample streams in one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        // Wrapping, to match the atomic accumulation in `observe`.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for k in 0..63 {
            let v = 1u64 << k;
            // 2^k is the first value of bucket k+1; 2^k - 1 the last of k.
            assert_eq!(bucket_index(v), k + 1, "2^{k}");
            assert!(bucket_upper(k) < v);
            assert!(bucket_upper(k + 1) >= v);
        }
    }

    #[test]
    fn empty_histogram_is_neutral() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn single_value_quantiles_hit_the_value() {
        let h = Histogram::new();
        h.observe(1000);
        let s = h.snapshot();
        // Bucket upper bound is 1023 but max clamps to the exact value.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 1000, "q={q}");
        }
    }

    #[test]
    fn quantiles_track_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        // Rank 500 lands in [256, 512); log bucketing reports the upper
        // bound of that bucket.
        assert_eq!(p50, 511);
        assert!(s.quantile(0.99) >= p50);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_observers_lose_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4000);
        assert_eq!(s.max, 3999);
    }
}
