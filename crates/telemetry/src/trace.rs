//! The flight recorder: always-on, lock-light event tracing.
//!
//! Aggregate metrics (the [`Registry`](crate::Registry)) answer *how
//! much* time each compression stage costs; they cannot answer *when*
//! or *in which block*. This module adds the temporal axis the paper's
//! methodology is built on (§III-A: sampled stacks over a 30-day
//! window, attributed per service and stage): a process-wide
//! [`Tracer`] holding one bounded ring buffer per thread ("track"),
//! each recording fixed-size [`TraceEvent`]s:
//!
//! * span **begin/end** pairs — per-block codec stage timings;
//! * **instant** events — block boundaries, dictionary hits;
//! * **counter samples** — live values (bytes, queue depths);
//! * CompOpt **decision** events — one per candidate evaluation,
//!   carrying the Eq. 1–3 cost terms, the Eq. 4 total, and why the
//!   candidate won or was pruned.
//!
//! Rings are bounded at a fixed capacity and never block the recording
//! thread: once full, the *oldest* event is overwritten in place (no
//! reallocation) and a drop counter increments — classic
//! flight-recorder semantics, so the most recent window of activity
//! always survives. Timestamps are nanoseconds from
//! the tracer's epoch and are clamped monotonically non-decreasing per
//! track, so a drained track is always a valid timeline.
//!
//! [`drain`](Tracer::drain) snapshots and clears every ring; the
//! result serializes to Chrome trace-event JSON via
//! [`chrome::to_chrome_json`](crate::chrome::to_chrome_json), loadable
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default events per track ring. At ~112 bytes per fixed-size event
/// this bounds a track at well under a megabyte.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Environment variable overriding the global tracer's ring capacity.
pub const RING_CAPACITY_ENV: &str = "DATACOMP_TRACE_RING";

/// A short string stored inline (no heap), truncated at
/// [`InlineStr::CAPACITY`] bytes on a UTF-8 boundary. Keeps
/// [`TraceEvent`] fixed-size even when it carries dynamic labels such
/// as CompOpt candidate names.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct InlineStr {
    len: u8,
    buf: [u8; Self::CAPACITY],
}

impl InlineStr {
    /// Maximum stored bytes.
    pub const CAPACITY: usize = 30;

    /// Builds from `s`, truncating to the last UTF-8 boundary at or
    /// below [`Self::CAPACITY`].
    // indexing_slicing: `end <= min(s.len(), CAPACITY)` bounds both the
    // source slice and the fixed-size destination.
    #[allow(clippy::indexing_slicing)]
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(Self::CAPACITY);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; Self::CAPACITY];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        Self {
            len: end as u8,
            buf,
        }
    }

    /// The stored string.
    // indexing_slicing: `len <= CAPACITY` is the construction invariant.
    #[allow(clippy::indexing_slicing)]
    pub fn as_str(&self) -> &str {
        // Construction only copies up to a char boundary.
        std::str::from_utf8(&self.buf[..self.len as usize]).expect("inline str is valid utf-8")
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for InlineStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl std::fmt::Display for InlineStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for InlineStr {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

/// One CompOpt candidate evaluation, explained: the Eq. 1–3 cost-term
/// breakdown, the Eq. 4 weighted total, and the verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Candidate label (config string or CompSim name), truncated to
    /// [`InlineStr::CAPACITY`] bytes.
    pub label: InlineStr,
    /// Equation (1): compute cost.
    pub compute: f64,
    /// Equation (2): storage cost.
    pub storage: f64,
    /// Equation (3): network cost.
    pub network: f64,
    /// Equation (4): weighted total the argmin ranks by.
    pub total: f64,
    /// Whether every constraint was satisfied.
    pub feasible: bool,
    /// Whether this candidate is the argmin (the chosen optimum).
    pub won: bool,
    /// The first violated constraint when infeasible; empty otherwise.
    pub pruned_by: InlineStr,
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A stage opened (Chrome `ph:"B"`).
    Begin {
        /// Stage name.
        name: &'static str,
    },
    /// A stage closed (Chrome `ph:"E"`).
    End {
        /// Stage name.
        name: &'static str,
    },
    /// A point-in-time marker (Chrome `ph:"i"`).
    Instant {
        /// Marker name.
        name: &'static str,
    },
    /// A sampled counter value (Chrome `ph:"C"`).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
    /// A CompOpt candidate evaluation (rendered as an instant event
    /// with the cost breakdown in `args`).
    Decision(Decision),
}

/// One fixed-size trace event: a timestamp plus what happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's epoch, monotonically
    /// non-decreasing within a track.
    pub ts_nanos: u64,
    /// Position in the track's event stream: the n-th event ever
    /// recorded on this track (0-based), stable across ring overwrites.
    /// `(track tid, seq)` uniquely identifies an event, which is what
    /// metric exemplars store to link a latency sample back to its
    /// flight-recorder event.
    pub seq: u64,
    /// The recorded event.
    pub kind: EventKind,
}

/// A durable reference to one recorded trace event: the track it lives
/// on, its sequence number, and its timestamp. This is the link a
/// windowed-histogram exemplar carries from a `/metrics` sample to the
/// flight recorder ([`crate::window::Exemplar`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRef {
    /// Track id ([`Track::tid`], the `tid` of the Chrome export).
    pub track: u64,
    /// The event's per-track sequence number ([`TraceEvent::seq`]).
    pub seq: u64,
    /// The event's timestamp ([`TraceEvent::ts_nanos`]).
    pub ts_nanos: u64,
}

/// The bounded per-track ring. Overwrites the oldest event when full.
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// High-water timestamp, enforcing per-track monotonic order.
    last_ts: u64,
    /// Events ever pushed; assigns each event its sequence number.
    pushed: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            // Grows lazily (amortized) up to `capacity`, then never
            // again: short-lived tracks — e.g. one profiler thread per
            // (day, service) in a drift simulation — shouldn't each
            // pin a full ring's worth of memory up front.
            buf: Vec::new(),
            capacity,
            head: 0,
            last_ts: 0,
            pushed: 0,
        }
    }

    /// Pushes one event; returns its assigned sequence number, its
    /// (monotonically clamped) timestamp, and whether an old event was
    /// dropped to make room. Never reallocates past the fixed capacity.
    // indexing_slicing: `head < capacity == buf.len()` on the overwrite
    // arm (the ring only wraps once `buf` is full).
    #[allow(clippy::indexing_slicing)]
    fn push(&mut self, mut ev: TraceEvent) -> (u64, u64, bool) {
        ev.ts_nanos = ev.ts_nanos.max(self.last_ts);
        self.last_ts = ev.ts_nanos;
        ev.seq = self.pushed;
        self.pushed += 1;
        let dropped = if self.buf.len() < self.capacity {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            true
        };
        (ev.seq, ev.ts_nanos, dropped)
    }

    /// Copies all events in timestamp order without clearing.
    // indexing_slicing: `head < buf.len()` whenever the ring has wrapped,
    // and `head == 0` before that.
    #[allow(clippy::indexing_slicing)]
    fn peek(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Removes and returns all events in timestamp order.
    fn drain(&mut self) -> Vec<TraceEvent> {
        let out = self.peek();
        self.buf.clear();
        self.head = 0;
        out
    }
}

/// One thread's (or one logical actor's) recording destination. Cheap
/// to clone via `Arc`; only its owner writes, so the inner mutex is
/// effectively uncontended outside of drains.
pub struct Track {
    tid: u64,
    name: Mutex<String>,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
    epoch: Instant,
}

impl std::fmt::Debug for Track {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Track")
            .field("tid", &self.tid)
            .field("name", &self.name())
            .finish_non_exhaustive()
    }
}

impl Track {
    /// The track id (`tid` in the Chrome export).
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The current track name.
    pub fn name(&self) -> String {
        self.name.lock().expect("track name not poisoned").clone()
    }

    /// Renames the track (e.g. to the service a profiler thread runs).
    pub fn set_name(&self, name: &str) {
        *self.name.lock().expect("track name not poisoned") = name.to_string();
    }

    /// Events dropped (overwritten) so far on this track.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn now_nanos(&self) -> u64 {
        duration_nanos(self.epoch.elapsed())
    }

    /// Nanoseconds from the tracer epoch to `t` (0 when `t` predates
    /// the epoch).
    pub fn nanos_of(&self, t: Instant) -> u64 {
        duration_nanos(t.checked_duration_since(self.epoch).unwrap_or_default())
    }

    fn record(&self, ts_nanos: u64, kind: EventKind) -> EventRef {
        let (seq, ts_nanos, dropped) =
            self.ring
                .lock()
                .expect("track ring not poisoned")
                .push(TraceEvent {
                    ts_nanos,
                    seq: 0, // assigned by the ring
                    kind,
                });
        if dropped {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        EventRef {
            track: self.tid,
            seq,
            ts_nanos,
        }
    }

    /// Records a stage opening now.
    pub fn begin(&self, name: &'static str) {
        self.record(self.now_nanos(), EventKind::Begin { name });
    }

    /// Records a stage closing now.
    pub fn end(&self, name: &'static str) {
        self.record(self.now_nanos(), EventKind::End { name });
    }

    /// Records an instant marker now.
    pub fn instant(&self, name: &'static str) {
        self.record(self.now_nanos(), EventKind::Instant { name });
    }

    /// Records an instant marker now and returns a durable reference
    /// to it — the hook metric exemplars use to link a sample back to
    /// this event.
    pub fn instant_ref(&self, name: &'static str) -> EventRef {
        self.record(self.now_nanos(), EventKind::Instant { name })
    }

    /// Records a counter sample now.
    pub fn counter(&self, name: &'static str, value: f64) {
        self.record(self.now_nanos(), EventKind::Counter { name, value });
    }

    /// Records a CompOpt decision now.
    pub fn decision(&self, d: Decision) {
        self.record(self.now_nanos(), EventKind::Decision(d));
    }

    /// Records a completed stage retrospectively as a begin/end pair —
    /// the shape the codec block loops need, where the stage was timed
    /// with an `Instant` pair before being reported.
    pub fn stage(&self, name: &'static str, start: Instant, elapsed: Duration) {
        let t0 = self.nanos_of(start);
        self.record(t0, EventKind::Begin { name });
        self.record(
            t0.saturating_add(duration_nanos(elapsed)),
            EventKind::End { name },
        );
    }

    fn drain(&self) -> TrackSnapshot {
        let events = self.ring.lock().expect("track ring not poisoned").drain();
        TrackSnapshot {
            tid: self.tid,
            name: self.name(),
            dropped: self.dropped.swap(0, Ordering::Relaxed),
            events,
        }
    }

    fn peek(&self) -> TrackSnapshot {
        let events = self.ring.lock().expect("track ring not poisoned").peek();
        TrackSnapshot {
            tid: self.tid,
            name: self.name(),
            dropped: self.dropped.load(Ordering::Relaxed),
            events,
        }
    }
}

fn duration_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// The process-wide flight recorder: a set of per-thread [`Track`]s
/// sharing one epoch.
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    tracks: Mutex<Vec<Arc<Track>>>,
    next_tid: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates a tracer with the default per-track ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Creates a tracer whose tracks hold at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            tracks: Mutex::new(Vec::new()),
            next_tid: AtomicU64::new(1),
        }
    }

    /// Per-track ring capacity, in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers a new track named `name`.
    pub fn new_track(&self, name: &str) -> Arc<Track> {
        let track = Arc::new(Track {
            tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
            name: Mutex::new(name.to_string()),
            ring: Mutex::new(Ring::new(self.capacity)),
            dropped: AtomicU64::new(0),
            epoch: self.epoch,
        });
        self.tracks
            .lock()
            .expect("tracer track list not poisoned")
            .push(Arc::clone(&track));
        track
    }

    /// Number of registered tracks.
    pub fn track_count(&self) -> usize {
        self.tracks
            .lock()
            .expect("tracer track list not poisoned")
            .len()
    }

    /// Events dropped across all tracks since the last drain.
    pub fn dropped_total(&self) -> u64 {
        self.tracks
            .lock()
            .expect("tracer track list not poisoned")
            .iter()
            .map(|t| t.dropped())
            .sum()
    }

    /// Per-track health — `(tid, name, dropped)` for every registered
    /// track, without copying any events. Feeds the
    /// `trace_track_dropped` lines on `/metrics` so ring saturation is
    /// alertable instead of silent.
    pub fn track_health(&self) -> Vec<(u64, String, u64)> {
        self.tracks
            .lock()
            .expect("tracer track list not poisoned")
            .iter()
            .map(|t| (t.tid(), t.name(), t.dropped()))
            .collect()
    }

    /// Copies every track's current events without clearing anything —
    /// the live-scrape variant of [`drain`](Self::drain), used by the
    /// `/trace.json` endpoint so a scrape never steals the flight
    /// recorder from a later `--trace` export. Tracks with no events
    /// and no drops are omitted, as for drain.
    pub fn snapshot(&self) -> TraceSnapshot {
        let tracks = self
            .tracks
            .lock()
            .expect("tracer track list not poisoned")
            .clone();
        TraceSnapshot {
            tracks: tracks
                .iter()
                .map(|t| t.peek())
                .filter(|t| !t.events.is_empty() || t.dropped > 0)
                .collect(),
        }
    }

    /// Drains every track: returns all recorded events (per track, in
    /// timestamp order) and clears the rings and drop counters. Tracks
    /// that recorded nothing since the last drain are omitted.
    pub fn drain(&self) -> TraceSnapshot {
        let tracks = self
            .tracks
            .lock()
            .expect("tracer track list not poisoned")
            .clone();
        TraceSnapshot {
            tracks: tracks
                .iter()
                .map(|t| t.drain())
                .filter(|t| !t.events.is_empty() || t.dropped > 0)
                .collect(),
        }
    }
}

/// One drained track: identity plus its ordered events.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackSnapshot {
    /// Track id (`tid` in the Chrome export).
    pub tid: u64,
    /// Track name at drain time.
    pub name: String,
    /// Events dropped (overwritten) on this track since the previous
    /// drain.
    pub dropped: u64,
    /// Events in timestamp order.
    pub events: Vec<TraceEvent>,
}

/// All tracks drained at one point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Per-track event lists.
    pub tracks: Vec<TrackSnapshot>,
}

impl TraceSnapshot {
    /// Total events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Total dropped events across all tracks.
    pub fn dropped_total(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }
}

/// The process-wide tracer the instrumented crates record into. Ring
/// capacity honors [`RING_CAPACITY_ENV`] when set.
pub fn global_tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let capacity = std::env::var(RING_CAPACITY_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_RING_CAPACITY);
        Tracer::with_capacity(capacity)
    })
}

thread_local! {
    static CURRENT_TRACK: RefCell<Option<Arc<Track>>> = const { RefCell::new(None) };
}

/// The calling thread's track on the [global tracer](global_tracer),
/// registering one (named after the thread) on first use.
pub fn current_track() -> Arc<Track> {
    CURRENT_TRACK.with(|cell| {
        let mut slot = cell.borrow_mut();
        match &*slot {
            Some(t) => Arc::clone(t),
            None => {
                let name = std::thread::current()
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
                let t = global_tracer().new_track(&name);
                *slot = Some(Arc::clone(&t));
                t
            }
        }
    })
}

/// Names the calling thread's track — the profiler uses this to get
/// one track per service.
pub fn set_track_name(name: &str) {
    current_track().set_name(name);
}

/// Records a begin event on the calling thread's track.
pub fn begin(name: &'static str) {
    current_track().begin(name);
}

/// Records an end event on the calling thread's track.
pub fn end(name: &'static str) {
    current_track().end(name);
}

/// Records an instant marker on the calling thread's track.
pub fn instant(name: &'static str) {
    current_track().instant(name);
}

/// Records an instant marker on the calling thread's track and returns
/// a durable [`EventRef`] to it, for use as a metric exemplar.
pub fn instant_ref(name: &'static str) -> EventRef {
    current_track().instant_ref(name)
}

/// Records a counter sample on the calling thread's track.
pub fn counter(name: &'static str, value: f64) {
    current_track().counter(name, value);
}

/// Records a CompOpt decision on the calling thread's track.
pub fn decision(d: Decision) {
    current_track().decision(d);
}

/// Records a completed stage (begin/end pair) on the calling thread's
/// track.
pub fn stage(name: &'static str, start: Instant, elapsed: Duration) {
    current_track().stage(name, start, elapsed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_fixed_size_and_small() {
        // The ring pre-allocates capacity × this size; keep it bounded
        // so always-on tracing stays cheap.
        assert!(std::mem::size_of::<TraceEvent>() <= 128);
    }

    #[test]
    fn inline_str_truncates_on_char_boundary() {
        let s = InlineStr::new("short");
        assert_eq!(s.as_str(), "short");
        let long = "x".repeat(100);
        assert_eq!(InlineStr::new(&long).as_str().len(), InlineStr::CAPACITY);
        // Multi-byte char straddling the cap is dropped whole.
        let tricky = format!("{}é", "a".repeat(InlineStr::CAPACITY - 1));
        let t = InlineStr::new(&tricky);
        assert_eq!(t.as_str(), &tricky[..InlineStr::CAPACITY - 1]);
        assert!(InlineStr::new("").is_empty());
    }

    #[test]
    fn overflow_drops_oldest_without_reallocating() {
        let tracer = Tracer::with_capacity(4);
        let track = tracer.new_track("t");
        for i in 0..10 {
            track.counter("c", i as f64);
        }
        assert_eq!(track.dropped(), 6, "6 of 10 events must be dropped");
        let snap = tracer.drain();
        assert_eq!(snap.tracks.len(), 1);
        let t = &snap.tracks[0];
        assert_eq!(t.events.len(), 4, "ring stays at capacity");
        assert_eq!(t.dropped, 6);
        // Flight-recorder semantics: the *newest* events survive.
        let values: Vec<f64> = t
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::Counter { value, .. } => value,
                _ => panic!("unexpected kind"),
            })
            .collect();
        assert_eq!(values, vec![6.0, 7.0, 8.0, 9.0]);
        // Drain resets both ring and drop counter.
        assert_eq!(tracer.dropped_total(), 0);
        assert_eq!(tracer.drain().event_count(), 0);
    }

    #[test]
    fn drained_events_are_timestamp_ordered() {
        let tracer = Tracer::with_capacity(64);
        let track = tracer.new_track("t");
        for _ in 0..10 {
            track.begin("stage.a");
            track.end("stage.a");
            track.instant("mark");
        }
        let snap = tracer.drain();
        for t in &snap.tracks {
            assert!(
                t.events.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos),
                "events out of order on track {}",
                t.name
            );
        }
    }

    #[test]
    fn stage_emits_matched_pair_with_plausible_timestamps() {
        let tracer = Tracer::with_capacity(16);
        let track = tracer.new_track("t");
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        track.stage("zstdx.match_find", start, Duration::from_micros(250));
        let snap = tracer.drain();
        let events = &snap.tracks[0].events;
        assert_eq!(events.len(), 2);
        match (&events[0].kind, &events[1].kind) {
            (EventKind::Begin { name: b }, EventKind::End { name: e }) => {
                assert_eq!(*b, "zstdx.match_find");
                assert_eq!(*e, "zstdx.match_find");
            }
            other => panic!("expected begin/end pair, got {other:?}"),
        }
        assert_eq!(events[1].ts_nanos - events[0].ts_nanos, 250_000);
    }

    #[test]
    fn timestamps_clamp_monotonic_even_for_retrospective_stages() {
        let tracer = Tracer::with_capacity(16);
        let track = tracer.new_track("t");
        track.instant("late"); // now
        let epoch_ish = Instant::now() - Duration::from_secs(1);
        // A stage whose start predates the previous event must clamp
        // forward, not travel back in time.
        track.stage("early", epoch_ish, Duration::from_nanos(10));
        let events = tracer.drain().tracks.remove(0).events;
        assert!(events.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
    }

    #[test]
    fn track_renaming_and_tids() {
        let tracer = Tracer::with_capacity(8);
        let a = tracer.new_track("one");
        let b = tracer.new_track("two");
        assert_ne!(a.tid(), b.tid());
        a.set_name("svc:DW1");
        a.instant("x");
        b.instant("y");
        let snap = tracer.drain();
        let names: Vec<&str> = snap.tracks.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"svc:DW1"));
        assert!(names.contains(&"two"));
    }

    #[test]
    fn decision_payload_roundtrips() {
        let tracer = Tracer::with_capacity(8);
        let track = tracer.new_track("opt");
        track.decision(Decision {
            label: "(zstdx, 3)".into(),
            compute: 1.5,
            storage: 2.5,
            network: 0.5,
            total: 4.5,
            feasible: true,
            won: true,
            pruned_by: "".into(),
        });
        let snap = tracer.drain();
        match snap.tracks[0].events[0].kind {
            EventKind::Decision(d) => {
                assert_eq!(d.label.as_str(), "(zstdx, 3)");
                assert_eq!(d.compute + d.storage + d.network, d.total);
                assert!(d.won && d.feasible);
                assert!(d.pruned_by.is_empty());
            }
            ref other => panic!("expected decision, got {other:?}"),
        }
    }

    #[test]
    fn seq_numbers_are_dense_and_survive_overwrite() {
        let tracer = Tracer::with_capacity(4);
        let track = tracer.new_track("t");
        let mut refs = Vec::new();
        for _ in 0..10 {
            refs.push(track.instant_ref("mark"));
        }
        // Every recorded event got a distinct, dense sequence number.
        let seqs: Vec<u64> = refs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
        assert!(refs.iter().all(|r| r.track == track.tid()));
        // After overwrite, the surviving events keep their original
        // seqs — so an EventRef to a surviving event still resolves.
        let snap = tracer.drain();
        let survivor_seqs: Vec<u64> = snap.tracks[0].events.iter().map(|e| e.seq).collect();
        assert_eq!(survivor_seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let tracer = Tracer::with_capacity(8);
        let track = tracer.new_track("t");
        track.instant("a");
        track.instant("b");
        let peek1 = tracer.snapshot();
        let peek2 = tracer.snapshot();
        assert_eq!(peek1.event_count(), 2);
        assert_eq!(peek1, peek2, "snapshot must not consume events");
        // Drain still sees everything afterwards.
        assert_eq!(tracer.drain().event_count(), 2);
        assert_eq!(tracer.snapshot().event_count(), 0);
    }

    #[test]
    fn empty_tracks_are_omitted_from_drain() {
        let tracer = Tracer::with_capacity(8);
        let _idle = tracer.new_track("idle");
        let busy = tracer.new_track("busy");
        busy.instant("x");
        let snap = tracer.drain();
        assert_eq!(snap.tracks.len(), 1);
        assert_eq!(snap.tracks[0].name, "busy");
    }

    #[test]
    fn global_thread_track_records() {
        let before = global_tracer().track_count();
        std::thread::spawn(|| {
            set_track_name("svc:TEST");
            begin("g.stage");
            end("g.stage");
            instant("g.mark");
            counter("g.count", 3.0);
        })
        .join()
        .unwrap();
        assert!(global_tracer().track_count() > before);
        // Don't drain here: the global tracer is shared across tests.
    }
}
