//! Time-windowed metrics: sliding-window rate counters and
//! ring-of-buckets histograms with trace exemplars.
//!
//! The cumulative [`Registry`](crate::Registry) answers "how much since
//! process start"; it cannot answer the live-operations questions the
//! paper's fleet characterization is built on — "what is zstdx p99
//! decode latency over the last 30 s, and is it rising?" This module
//! adds that temporal axis:
//!
//! * [`WindowedCounter`] — a ring of N sub-window tallies rotated on an
//!   injected [`Clock`]. Reads merge the sub-windows that are still
//!   live, yielding a total and a rate over the window span.
//! * [`WindowedHistogram`] — the same ring, but each sub-window bucket
//!   holds a full log-bucketed histogram (the 65-bucket layout of
//!   [`crate::histogram`]). Reads merge live buckets into one
//!   [`HistogramSnapshot`], so per-window p50/p90/p99 come from the
//!   existing quantile math. Each sub-window bucket also retains an
//!   [`Exemplar`] — the trace [`EventRef`] of its max-latency sample —
//!   linking a p99 spike on `/metrics` directly to the flight-recorder
//!   event that caused it.
//! * [`WindowRegistry`] — a sharded `(name, labels)` table of windowed
//!   series, mirroring the cumulative registry's API, with a
//!   Prometheus-text export ([`to_prometheus_windows`]) that emits
//!   `window_*` gauges (p50/p90/p99, rates, exemplar pointers).
//!
//! The clock is a trait so tests drive time by hand ([`ManualClock`])
//! and window rotation is exact: a fixed event sequence produces exact
//! window percentiles, deterministically.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, RwLock};

use crate::clock::{Clock, ManualClock, MonotonicClock};
use crate::export::{prom_escape, prom_name};
use crate::histogram::{bucket_index, HistogramSnapshot, NUM_BUCKETS};
use crate::registry::SeriesKey;
use crate::trace::EventRef;

/// How a windowed series buckets time: `sub_windows` rotating slots of
/// `sub_window_nanos` each; the live window spans their product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one ring slot, in nanoseconds.
    pub sub_window_nanos: u64,
    /// Number of ring slots.
    pub sub_windows: usize,
}

impl WindowConfig {
    /// The default operational window: 10 slots × 3 s = a 30 s view.
    pub const DEFAULT: WindowConfig = WindowConfig {
        sub_window_nanos: 3_000_000_000,
        sub_windows: 10,
    };

    /// Builds a config, clamping both dimensions to at least 1.
    pub fn new(sub_window_nanos: u64, sub_windows: usize) -> Self {
        Self {
            sub_window_nanos: sub_window_nanos.max(1),
            sub_windows: sub_windows.max(1),
        }
    }

    /// Total window span in nanoseconds.
    pub fn span_nanos(&self) -> u64 {
        self.sub_window_nanos
            .saturating_mul(self.sub_windows as u64)
    }

    /// Total window span in seconds.
    pub fn span_secs(&self) -> f64 {
        self.span_nanos() as f64 / 1e9
    }

    /// The absolute sub-window index (since clock epoch) of time `t`.
    fn epoch_of(&self, t_nanos: u64) -> u64 {
        t_nanos / self.sub_window_nanos
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// A metric sample's link back to the flight recorder: the value plus
/// the trace event recorded alongside it. `(event.track, event.seq)`
/// resolves to exactly one event in a drained or snapshotted trace
/// (and in the Chrome export, where instants carry `args.seq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (e.g. latency in nanoseconds).
    pub value: u64,
    /// The trace event recorded for this sample.
    pub event: EventRef,
}

// ---------------------------------------------------------------------
// Windowed counter
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct CounterSlot {
    /// Absolute sub-window index this slot currently holds.
    epoch: u64,
    count: u64,
}

/// A sliding-window event counter. See the [module docs](self).
#[derive(Debug)]
pub struct WindowedCounter {
    cfg: WindowConfig,
    clock: Arc<dyn Clock>,
    slots: Mutex<Vec<CounterSlot>>,
}

impl WindowedCounter {
    /// Creates a counter rotating on `clock`.
    pub fn new(cfg: WindowConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            cfg,
            clock,
            slots: Mutex::new(vec![CounterSlot::default(); cfg.sub_windows]),
        }
    }

    /// The window configuration.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the current sub-window.
    // indexing_slicing: `idx` is taken modulo `sub_windows`, the slots
    // vec's construction length.
    #[allow(clippy::indexing_slicing)]
    pub fn add(&self, n: u64) {
        let epoch = self.cfg.epoch_of(self.clock.now_nanos());
        let mut slots = self.slots.lock().expect("window slots not poisoned");
        let idx = (epoch % self.cfg.sub_windows as u64) as usize;
        let slot = &mut slots[idx];
        if slot.epoch != epoch {
            *slot = CounterSlot { epoch, count: 0 };
        }
        slot.count += n;
    }

    /// Total events in the live window (the last `sub_windows`
    /// sub-windows, including the in-progress one).
    pub fn total(&self) -> u64 {
        let now_epoch = self.cfg.epoch_of(self.clock.now_nanos());
        let oldest = now_epoch.saturating_sub(self.cfg.sub_windows as u64 - 1);
        self.slots
            .lock()
            .expect("window slots not poisoned")
            .iter()
            .filter(|s| s.epoch >= oldest && s.epoch <= now_epoch)
            .map(|s| s.count)
            .sum()
    }

    /// Events per second over the full window span. During warm-up
    /// (before one full span has elapsed) this under-reports by design:
    /// the denominator is always the span, keeping the value exact and
    /// deterministic rather than dependent on process start time.
    pub fn rate_per_sec(&self) -> f64 {
        self.total() as f64 / self.cfg.span_secs()
    }
}

// ---------------------------------------------------------------------
// Windowed histogram
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct HistSlot {
    epoch: u64,
    buckets: Vec<u64>,
    sum: u64,
    max: u64,
    /// The max-latency sample of this sub-window bucket, when the
    /// recording site supplied a trace link.
    exemplar: Option<Exemplar>,
}

impl HistSlot {
    fn empty(epoch: u64) -> Self {
        Self {
            epoch,
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
            exemplar: None,
        }
    }
}

/// A point-in-time merged view of a [`WindowedHistogram`]'s live
/// window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedHistogramSnapshot {
    /// The merged distribution over the live window; quantiles and
    /// mean come from the usual [`HistogramSnapshot`] math.
    pub histogram: HistogramSnapshot,
    /// The max-value exemplar across the live window, when any
    /// recording carried one. Its value equals `histogram.max` unless
    /// only exemplar-less observations hit the maximum.
    pub exemplar: Option<Exemplar>,
    /// The window configuration the snapshot merged over.
    pub config: WindowConfig,
}

impl WindowedHistogramSnapshot {
    /// Observations per second over the window span.
    pub fn rate_per_sec(&self) -> f64 {
        self.histogram.count() as f64 / self.config.span_secs()
    }
}

/// A sliding-window log-bucketed histogram with exemplars. See the
/// [module docs](self).
#[derive(Debug)]
pub struct WindowedHistogram {
    cfg: WindowConfig,
    clock: Arc<dyn Clock>,
    slots: Mutex<Vec<HistSlot>>,
}

impl WindowedHistogram {
    /// Creates a histogram rotating on `clock`.
    pub fn new(cfg: WindowConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            cfg,
            clock,
            slots: Mutex::new((0..cfg.sub_windows).map(|_| HistSlot::empty(0)).collect()),
        }
    }

    /// The window configuration.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Records one value into the current sub-window.
    pub fn observe(&self, v: u64) {
        self.observe_inner(v, None::<fn() -> EventRef>);
    }

    /// Records one value; when it sets a new sub-window maximum,
    /// `link` is invoked to mint the trace event whose [`EventRef`]
    /// becomes the bucket's exemplar. The closure only runs for new
    /// maxima, so the flight recorder sees at most one exemplar instant
    /// per sub-window rotation per new peak — not one per observation.
    pub fn observe_linked(&self, v: u64, link: impl FnOnce() -> EventRef) {
        self.observe_inner(v, Some(link));
    }

    // indexing_slicing: `idx` is modulo `sub_windows` (the slots vec's
    // length) and `bucket_index` clamps to the last bucket.
    #[allow(clippy::indexing_slicing)]
    fn observe_inner(&self, v: u64, link: Option<impl FnOnce() -> EventRef>) {
        let epoch = self.cfg.epoch_of(self.clock.now_nanos());
        let mut slots = self.slots.lock().expect("window slots not poisoned");
        let idx = (epoch % self.cfg.sub_windows as u64) as usize;
        let slot = &mut slots[idx];
        if slot.epoch != epoch {
            *slot = HistSlot::empty(epoch);
        }
        slot.buckets[bucket_index(v)] += 1;
        slot.sum = slot.sum.wrapping_add(v);
        let is_new_max = v >= slot.max && (v > 0 || slot.exemplar.is_none());
        slot.max = slot.max.max(v);
        if is_new_max {
            if let Some(link) = link {
                slot.exemplar = Some(Exemplar {
                    value: v,
                    event: link(),
                });
            }
        }
    }

    /// Merges the live sub-windows into one snapshot.
    pub fn window_snapshot(&self) -> WindowedHistogramSnapshot {
        let now_epoch = self.cfg.epoch_of(self.clock.now_nanos());
        let oldest = now_epoch.saturating_sub(self.cfg.sub_windows as u64 - 1);
        let slots = self.slots.lock().expect("window slots not poisoned");
        let mut merged = HistogramSnapshot::default();
        let mut exemplar: Option<Exemplar> = None;
        for slot in slots
            .iter()
            .filter(|s| s.epoch >= oldest && s.epoch <= now_epoch)
        {
            if slot.buckets.iter().all(|&b| b == 0) {
                continue;
            }
            for (a, b) in merged.buckets.iter_mut().zip(&slot.buckets) {
                *a += b;
            }
            merged.sum = merged.sum.wrapping_add(slot.sum);
            merged.max = merged.max.max(slot.max);
            if let Some(e) = slot.exemplar {
                if exemplar.is_none_or(|cur| e.value >= cur.value) {
                    exemplar = Some(e);
                }
            }
        }
        WindowedHistogramSnapshot {
            histogram: merged,
            exemplar,
            config: self.cfg,
        }
    }

    /// All live exemplars, one per sub-window bucket that retained one,
    /// newest-peak values included. Order is unspecified.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let now_epoch = self.cfg.epoch_of(self.clock.now_nanos());
        let oldest = now_epoch.saturating_sub(self.cfg.sub_windows as u64 - 1);
        self.slots
            .lock()
            .expect("window slots not poisoned")
            .iter()
            .filter(|s| s.epoch >= oldest && s.epoch <= now_epoch)
            .filter_map(|s| s.exemplar)
            .collect()
    }
}

// ---------------------------------------------------------------------
// Registry of windowed series
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum WindowMetric {
    Counter(Arc<WindowedCounter>),
    Histogram(Arc<WindowedHistogram>),
}

impl WindowMetric {
    fn kind(&self) -> &'static str {
        match self {
            WindowMetric::Counter(_) => "counter",
            WindowMetric::Histogram(_) => "histogram",
        }
    }
}

const SHARDS: usize = 16;

/// A sharded `(name, labels)` table of windowed series — the live
/// sibling of the cumulative [`Registry`](crate::Registry). All series
/// share the registry's clock and window configuration, so every
/// `/metrics` scrape reads one coherent window.
#[derive(Debug)]
pub struct WindowRegistry {
    cfg: WindowConfig,
    clock: Arc<dyn Clock>,
    shards: Vec<RwLock<HashMap<SeriesKey, WindowMetric>>>,
}

impl WindowRegistry {
    /// Creates a registry on the given clock and window shape.
    pub fn new(cfg: WindowConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            cfg,
            clock,
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Creates a registry on a fresh monotonic clock with the default
    /// 30 s window.
    pub fn monotonic() -> Self {
        Self::new(WindowConfig::DEFAULT, Arc::new(MonotonicClock::new()))
    }

    /// Creates a registry on a shared [`ManualClock`] — the test
    /// harness shape.
    pub fn manual(cfg: WindowConfig) -> (Self, Arc<ManualClock>) {
        let clock = ManualClock::shared();
        (Self::new(cfg, Arc::clone(&clock) as Arc<dyn Clock>), clock)
    }

    /// The registry-wide window configuration.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    // indexing_slicing: the index is taken modulo `SHARDS`, the vec's
    // construction length.
    #[allow(clippy::indexing_slicing)]
    fn shard(&self, key: &SeriesKey) -> &RwLock<HashMap<SeriesKey, WindowMetric>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn get_or_insert(&self, key: SeriesKey, make: impl FnOnce() -> WindowMetric) -> WindowMetric {
        let shard = self.shard(&key);
        if let Some(m) = shard.read().expect("window shard not poisoned").get(&key) {
            return m.clone();
        }
        let mut w = shard.write().expect("window shard not poisoned");
        w.entry(key).or_insert_with(make).clone()
    }

    /// Fetches (registering on first use) the windowed counter
    /// `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the series was already registered as a histogram —
    /// a programming error, as for the cumulative registry.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<WindowedCounter> {
        let key = SeriesKey::new(name, labels);
        let made = self.get_or_insert(key, || {
            WindowMetric::Counter(Arc::new(WindowedCounter::new(
                self.cfg,
                Arc::clone(&self.clock),
            )))
        });
        match made {
            WindowMetric::Counter(c) => c,
            other => panic!(
                "window series {name} already registered as {}",
                other.kind()
            ),
        }
    }

    /// Fetches (registering on first use) the windowed histogram
    /// `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics on metric-kind mismatch, as for
    /// [`WindowRegistry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<WindowedHistogram> {
        let key = SeriesKey::new(name, labels);
        let made = self.get_or_insert(key, || {
            WindowMetric::Histogram(Arc::new(WindowedHistogram::new(
                self.cfg,
                Arc::clone(&self.clock),
            )))
        });
        match made {
            WindowMetric::Histogram(h) => h,
            other => panic!(
                "window series {name} already registered as {}",
                other.kind()
            ),
        }
    }

    /// Number of registered windowed series.
    pub fn series_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("window shard not poisoned").len())
            .sum()
    }

    /// A point-in-time merged view of every series, sorted by key.
    pub fn snapshot(&self) -> WindowSnapshot {
        let mut series = Vec::with_capacity(self.series_count());
        for shard in &self.shards {
            for (key, metric) in shard.read().expect("window shard not poisoned").iter() {
                let value = match metric {
                    WindowMetric::Counter(c) => WindowValue::Counter {
                        total: c.total(),
                        rate_per_sec: c.rate_per_sec(),
                    },
                    WindowMetric::Histogram(h) => WindowValue::Histogram(h.window_snapshot()),
                };
                series.push(WindowSeries {
                    key: key.clone(),
                    value,
                });
            }
        }
        series.sort_by(|a, b| a.key.cmp(&b.key));
        WindowSnapshot {
            series,
            config: self.cfg,
        }
    }
}

/// One exported windowed series.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSeries {
    /// The series identity.
    pub key: SeriesKey,
    /// The merged live-window value.
    pub value: WindowValue,
}

/// The merged live-window value of a series.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowValue {
    /// Event count and rate over the window.
    Counter {
        /// Events in the live window.
        total: u64,
        /// Events per second over the window span.
        rate_per_sec: f64,
    },
    /// Merged distribution over the window.
    Histogram(WindowedHistogramSnapshot),
}

/// A point-in-time view of a [`WindowRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// All series, sorted by key.
    pub series: Vec<WindowSeries>,
    /// The registry-wide window configuration.
    pub config: WindowConfig,
}

impl WindowSnapshot {
    /// Looks up one series value.
    // indexing_slicing: `i` comes from `binary_search_by` on `series`.
    #[allow(clippy::indexing_slicing)]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&WindowValue> {
        let key = SeriesKey::new(name, labels);
        self.series
            .binary_search_by(|s| s.key.cmp(&key))
            .ok()
            .map(|i| &self.series[i].value)
    }

    /// Windowed histogram snapshot of `name{labels}`, if present.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&WindowedHistogramSnapshot> {
        match self.get(name, labels) {
            Some(WindowValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Windowed counter total of `name{labels}`, 0 when absent.
    pub fn counter_total(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(WindowValue::Counter { total, .. }) => *total,
            _ => 0,
        }
    }
}

/// Serializes a window snapshot in the Prometheus text exposition
/// format. Windowed series are namespaced `window_<name>_*` so they
/// never collide with the cumulative series of the same base name, and
/// everything is exported as gauges (a windowed value can go down):
///
/// * counters → `window_<name>{...}` (total) and
///   `window_<name>_rate{...}` (events/s over the span);
/// * histograms → `window_<name>_count/_sum/_p50/_p90/_p99/_max`, a
///   `window_<name>_rate`, and — when an exemplar is live —
///   `window_<name>_exemplar{track="..",seq=".."}` carrying the
///   max-latency sample's value with its flight-recorder coordinates
///   as labels (classic text format stays parseable; no OpenMetrics
///   `#`-trailer syntax).
///
/// The window span is exported once as `window_span_seconds`.
pub fn to_prometheus_windows(snap: &WindowSnapshot) -> String {
    let mut out = String::with_capacity(snap.series.len() * 192 + 64);
    out.push_str("# HELP window_span_seconds Live-window span all window_* series merge over\n");
    out.push_str("# TYPE window_span_seconds gauge\n");
    out.push_str(&format!(
        "window_span_seconds {}\n",
        snap.config.span_secs()
    ));
    let mut last_name: Option<&str> = None;
    for s in &snap.series {
        let name = format!("window_{}", prom_name(&s.key.name));
        if last_name != Some(s.key.name.as_str()) {
            out.push_str(&format!(
                "# HELP {name} Windowed view of {} over the last {}s\n",
                s.key.name,
                snap.config.span_secs()
            ));
            out.push_str(&format!("# TYPE {name} gauge\n"));
            last_name = Some(s.key.name.as_str());
        }
        let labels = window_labels(&s.key.labels, &[]);
        match &s.value {
            WindowValue::Counter {
                total,
                rate_per_sec,
            } => {
                out.push_str(&format!("{name}{labels} {total}\n"));
                out.push_str(&format!("{name}_rate{labels} {rate_per_sec}\n"));
            }
            WindowValue::Histogram(h) => {
                let hist = &h.histogram;
                out.push_str(&format!("{name}_count{labels} {}\n", hist.count()));
                out.push_str(&format!("{name}_sum{labels} {}\n", hist.sum));
                out.push_str(&format!("{name}_p50{labels} {}\n", hist.quantile(0.50)));
                out.push_str(&format!("{name}_p90{labels} {}\n", hist.quantile(0.90)));
                out.push_str(&format!("{name}_p99{labels} {}\n", hist.quantile(0.99)));
                out.push_str(&format!("{name}_max{labels} {}\n", hist.max));
                out.push_str(&format!("{name}_rate{labels} {}\n", h.rate_per_sec()));
                if let Some(e) = &h.exemplar {
                    let track = e.event.track.to_string();
                    let seq = e.event.seq.to_string();
                    let ex_labels = window_labels(
                        &s.key.labels,
                        &[("track", track.as_str()), ("seq", seq.as_str())],
                    );
                    out.push_str(&format!("{name}_exemplar{ex_labels} {}\n", e.value));
                }
            }
        }
    }
    out
}

fn window_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&prom_name(k));
        out.push_str("=\"");
        prom_escape(&mut out, v);
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    const MS: u64 = 1_000_000;

    fn manual(sub_ms: u64, slots: usize) -> (WindowRegistry, Arc<ManualClock>) {
        WindowRegistry::manual(WindowConfig::new(sub_ms * MS, slots))
    }

    #[test]
    fn counter_window_slides_and_expires() {
        let (reg, clock) = manual(100, 4); // 4 × 100 ms = 400 ms window
        let c = reg.counter("reqs", &[]);
        c.add(5); // t=0, sub-window 0
        clock.advance(100 * MS);
        c.add(3); // sub-window 1
        assert_eq!(c.total(), 8);
        clock.advance(250 * MS); // t=350ms: both still live
        assert_eq!(c.total(), 8);
        clock.advance(100 * MS); // t=450ms: sub-window 0 expired
        assert_eq!(c.total(), 3);
        clock.advance(400 * MS); // everything expired
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn counter_rate_is_exact_over_the_span() {
        let (reg, clock) = manual(250, 4); // 1 s window
        let c = reg.counter("reqs", &[]);
        for _ in 0..4 {
            c.add(25);
            clock.advance(250 * MS);
        }
        // 100 events still live at t=1s minus the expired first slot?
        // At t=1000ms slot 0 (epoch 0) has expired: live = 75.
        assert_eq!(c.total(), 75);
        assert!((c.rate_per_sec() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn slot_reuse_resets_stale_tallies() {
        let (reg, clock) = manual(100, 2); // 200 ms window, 2 slots
        let c = reg.counter("reqs", &[]);
        c.add(7);
        clock.advance(1000 * MS); // many rotations later, same slot index parity
        c.add(1);
        assert_eq!(c.total(), 1, "stale slot contents must not leak");
    }

    #[test]
    fn histogram_window_percentiles_are_exact() {
        let (reg, clock) = manual(100, 4);
        let h = reg.histogram("lat", &[]);
        // Sub-window 0: a burst of slow samples.
        for _ in 0..100 {
            h.observe(8000); // bucket [4096, 8191]
        }
        clock.advance(100 * MS);
        // Sub-window 1: fast samples.
        for _ in 0..100 {
            h.observe(500); // bucket [256, 511]
        }
        let s = h.window_snapshot();
        assert_eq!(s.histogram.count(), 200);
        assert_eq!(s.histogram.quantile(0.50), 511);
        assert_eq!(s.histogram.quantile(0.99), 8000); // clamped to max
                                                      // Advance to t=400ms (epoch 4): live epochs are 1..=4, so the
                                                      // slow burst (epoch 0) has fallen out and the fast samples
                                                      // (epoch 1) are on their last sub-window.
        clock.advance(300 * MS);
        let s = h.window_snapshot();
        assert_eq!(s.histogram.count(), 100);
        assert_eq!(s.histogram.max, 500);
        assert_eq!(s.histogram.quantile(0.99), 500);
    }

    #[test]
    fn histogram_rate_counts_window_observations() {
        let (reg, clock) = manual(500, 2); // 1 s window
        let h = reg.histogram("lat", &[]);
        for _ in 0..10 {
            h.observe(100);
        }
        clock.advance(500 * MS);
        for _ in 0..30 {
            h.observe(100);
        }
        let s = h.window_snapshot();
        assert_eq!(s.histogram.count(), 40);
        assert!((s.rate_per_sec() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn exemplar_tracks_sub_window_max_and_expires() {
        let (reg, clock) = manual(100, 2);
        let tracer = Tracer::with_capacity(16);
        let track = tracer.new_track("t");
        let h = reg.histogram("lat", &[]);
        h.observe_linked(100, || track.instant_ref("sample"));
        h.observe_linked(900, || track.instant_ref("sample"));
        h.observe_linked(300, || track.instant_ref("sample")); // not a new max: no event minted
        let s = h.window_snapshot();
        let e = s.exemplar.expect("exemplar retained");
        assert_eq!(e.value, 900);
        assert_eq!(e.event.track, track.tid());
        // Only the two new-max observations minted trace events.
        assert_eq!(tracer.drain().event_count(), 2);
        // A bigger sample in the next sub-window takes over...
        clock.advance(100 * MS);
        h.observe_linked(1500, || track.instant_ref("sample"));
        assert_eq!(h.window_snapshot().exemplar.unwrap().value, 1500);
        assert_eq!(h.exemplars().len(), 2, "one exemplar per live bucket");
        // ...and expiry drops the old bucket's exemplar with it.
        clock.advance(100 * MS);
        assert_eq!(h.window_snapshot().exemplar.unwrap().value, 1500);
        clock.advance(100 * MS);
        assert!(h.window_snapshot().exemplar.is_none());
    }

    #[test]
    fn registry_shares_series_and_rejects_kind_mismatch() {
        let (reg, _clock) = manual(100, 4);
        reg.counter("x", &[("a", "1")]).inc();
        reg.counter("x", &[("a", "1")]).inc();
        assert_eq!(reg.series_count(), 1);
        assert_eq!(reg.snapshot().counter_total("x", &[("a", "1")]), 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.histogram("x", &[("a", "1")])
        }));
        assert!(r.is_err(), "kind mismatch must panic");
    }

    #[test]
    fn prometheus_window_export_has_percentiles_rates_and_exemplars() {
        let (reg, _clock) = manual(100, 4);
        let tracer = Tracer::with_capacity(8);
        let track = tracer.new_track("svc:CACHE1");
        reg.counter("reqs", &[("service", "CACHE1")]).add(12);
        let h = reg.histogram("decode.nanos", &[("service", "CACHE1")]);
        h.observe(100);
        h.observe_linked(5000, || track.instant_ref("decode.sample"));
        let text = to_prometheus_windows(&reg.snapshot());
        assert!(text.contains("# TYPE window_reqs gauge\n"));
        assert!(text.contains("window_reqs{service=\"CACHE1\"} 12\n"));
        assert!(text.contains("window_reqs_rate{service=\"CACHE1\"} 30\n")); // 12 / 0.4s
        assert!(text.contains("window_decode_nanos_count{service=\"CACHE1\"} 2\n"));
        assert!(text.contains("window_decode_nanos_p99{service=\"CACHE1\"} 5000\n"));
        assert!(text.contains("window_decode_nanos_max{service=\"CACHE1\"} 5000\n"));
        assert!(
            text.contains(
                "window_decode_nanos_exemplar{service=\"CACHE1\",track=\"1\",seq=\"0\"} 5000\n"
            ),
            "{text}"
        );
        // Every sample line parses: name{...} value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparseable: {line}");
        }
    }

    #[test]
    fn window_default_config_is_30s() {
        assert_eq!(WindowConfig::DEFAULT.span_secs(), 30.0);
    }
}
