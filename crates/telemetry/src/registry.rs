//! The sharded metric registry.
//!
//! Series are keyed by `(name, sorted labels)` and live in one of 16
//! lock shards selected by the key hash, so concurrent threads touching
//! different series rarely contend — the same aggregation-table shape a
//! profiling daemon uses. Handles are `Arc`s: callers on hot paths fetch
//! a handle once and update it lock-free afterwards.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (compare-and-swap loop; fine for low-rate gauges).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Identity of one series: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric name (dotted hierarchy, e.g. `fleet.compress.nanos`).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// Builds a canonical key (labels sorted by name).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

const SHARDS: usize = 16;

/// A sharded table of named metric series. See the [module docs](self).
#[derive(Debug)]
pub struct Registry {
    shards: Vec<RwLock<HashMap<SeriesKey, Metric>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    // indexing_slicing: the index is taken modulo `SHARDS`, the vec's
    // construction length.
    #[allow(clippy::indexing_slicing)]
    fn shard(&self, key: &SeriesKey) -> &RwLock<HashMap<SeriesKey, Metric>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn get_or_insert(&self, key: SeriesKey, make: impl FnOnce() -> Metric) -> Metric {
        let shard = self.shard(&key);
        if let Some(m) = shard.read().expect("registry shard not poisoned").get(&key) {
            return m.clone();
        }
        let mut w = shard.write().expect("registry shard not poisoned");
        w.entry(key).or_insert_with(make).clone()
    }

    /// Fetches (registering on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same series was already registered as a different
    /// metric kind — that is a programming error, not a runtime state.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = SeriesKey::new(name, labels);
        match self.get_or_insert(key, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("series {name} already registered as {}", other.kind()),
        }
    }

    /// Fetches (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics on metric-kind mismatch, as for [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = SeriesKey::new(name, labels);
        match self.get_or_insert(key, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("series {name} already registered as {}", other.kind()),
        }
    }

    /// Fetches (registering on first use) the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics on metric-kind mismatch, as for [`Registry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = SeriesKey::new(name, labels);
        match self.get_or_insert(key, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("series {name} already registered as {}", other.kind()),
        }
    }

    /// Number of registered series.
    pub fn series_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("registry shard not poisoned").len())
            .sum()
    }

    /// A point-in-time copy of every series, sorted by key for
    /// deterministic export output.
    pub fn snapshot(&self) -> Snapshot {
        let mut series = Vec::with_capacity(self.series_count());
        for shard in &self.shards {
            for (key, metric) in shard.read().expect("registry shard not poisoned").iter() {
                let value = match metric {
                    Metric::Counter(c) => SeriesValue::Counter(c.get()),
                    Metric::Gauge(g) => SeriesValue::Gauge(g.get()),
                    Metric::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                };
                series.push(Series {
                    key: key.clone(),
                    value,
                });
            }
        }
        series.sort_by(|a, b| a.key.cmp(&b.key));
        Snapshot { series }
    }
}

/// One exported series: key plus current value.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// The series identity.
    pub key: SeriesKey,
    /// The captured value.
    pub value: SeriesValue,
}

/// The captured value of a series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Monotonic count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Log-bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a [`Registry`], ready for export or merging.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All series, sorted by key.
    pub series: Vec<Series>,
}

impl Snapshot {
    /// Looks up one series value.
    // indexing_slicing: `i` comes from `binary_search_by` on `series`.
    #[allow(clippy::indexing_slicing)]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesValue> {
        let key = SeriesKey::new(name, labels);
        self.series
            .binary_search_by(|s| s.key.cmp(&key))
            .ok()
            .map(|i| &self.series[i].value)
    }

    /// Counter value of `name{labels}`, 0 when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(SeriesValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value of `name{labels}`, 0.0 when absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.get(name, labels) {
            Some(SeriesValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Histogram snapshot of `name{labels}`, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.get(name, labels) {
            Some(SeriesValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Every series with metric name `name`.
    pub fn with_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Series> {
        self.series.iter().filter(move |s| s.key.name == name)
    }

    /// Merges `other` into `self`: counters add, histograms merge
    /// bucket-wise, gauges take `other`'s value; series unknown to
    /// `self` are appended. The cross-thread/cross-process aggregation
    /// step of the paper's profiling pipeline.
    // indexing_slicing: `i` comes from `binary_search_by` on `series`.
    #[allow(clippy::indexing_slicing)]
    pub fn merge(&mut self, other: &Snapshot) {
        for s in &other.series {
            match self.series.binary_search_by(|own| own.key.cmp(&s.key)) {
                Ok(i) => match (&mut self.series[i].value, &s.value) {
                    (SeriesValue::Counter(a), SeriesValue::Counter(b)) => *a += b,
                    (SeriesValue::Gauge(a), SeriesValue::Gauge(b)) => *a = *b,
                    (SeriesValue::Histogram(a), SeriesValue::Histogram(b)) => a.merge(b),
                    (mine, theirs) => {
                        panic!(
                            "series {} kind mismatch: {mine:?} vs {theirs:?}",
                            s.key.name
                        )
                    }
                },
                Err(i) => self.series.insert(i, s.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_series() {
        let reg = Registry::new();
        reg.counter("calls", &[("algo", "zstdx")]).inc();
        reg.counter("calls", &[("algo", "zstdx")]).add(2);
        reg.counter("calls", &[("algo", "lz4x")]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("calls", &[("algo", "zstdx")]), 3);
        assert_eq!(snap.counter("calls", &[("algo", "lz4x")]), 1);
        assert_eq!(snap.counter("calls", &[("algo", "zlibx")]), 0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        reg.counter("c", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("c", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.series_count(), 1);
        assert_eq!(reg.snapshot().counter("c", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn gauges_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("secs", &[]);
        g.set(1.5);
        g.add(0.25);
        assert!((reg.snapshot().gauge("secs", &[]) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", &[]).inc();
        let _ = reg.gauge("x", &[]);
    }

    #[test]
    fn handles_are_shared_across_threads() {
        let reg = std::sync::Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("shared", &[]);
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.snapshot().counter("shared", &[]), 8000);
    }

    #[test]
    fn snapshot_merge_adds_and_appends() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("c", &[]).add(2);
        b.counter("c", &[]).add(3);
        b.counter("only-b", &[]).inc();
        a.histogram("h", &[]).observe(10);
        b.histogram("h", &[]).observe(20);
        let mut sa = a.snapshot();
        let sb = b.snapshot();
        sa.merge(&sb);
        assert_eq!(sa.counter("c", &[]), 5);
        assert_eq!(sa.counter("only-b", &[]), 1);
        let h = sa.histogram("h", &[]).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max, 20);
    }
}
