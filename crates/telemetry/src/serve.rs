//! Dependency-free HTTP scrape endpoint for the live observability
//! plane.
//!
//! [`ScrapeServer`] is a tiny blocking HTTP/1.1 server on a std
//! [`TcpListener`] — no async runtime, no HTTP crate — serving
//! read-only endpoints off a [`Sources`] bundle:
//!
//! | path             | payload                                           |
//! |------------------|---------------------------------------------------|
//! | `/metrics`       | Prometheus text: cumulative series, `window_*`    |
//! |                  | live views (with exemplars), `slo_*` gauges, and  |
//! |                  | flight-recorder + request-sampler health counters |
//! | `/slo`           | JSON error-budget report ([`crate::slo::to_json_reports`]) |
//! | `/healthz`       | `ok` — liveness probe                             |
//! | `/trace.json`    | Chrome trace-event JSON of the flight recorder,   |
//! |                  | with sampled request trees as flow-linked events  |
//! | `/profile.json`  | p99 stage-attribution report per service/op/size  |
//! | `/requests.json` | tail-sampled request span trees                   |
//!
//! `/trace.json` uses the non-destructive [`Tracer::snapshot`], so
//! scraping never steals events from a later `--trace` export.
//!
//! One request per connection (`Connection: close`), GET only; a
//! request-line parser of a dozen lines is the whole attack surface.
//! Responses are built by the pure [`respond`] function, which unit
//! tests exercise without sockets. [`ScrapeServer::shutdown`] flips a
//! flag and self-connects to unblock `accept`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::chrome::to_chrome_json_with_requests;
use crate::export::to_prometheus;
use crate::registry::Registry;
use crate::request::RequestSampler;
use crate::slo::{to_json_reports, SloRegistry, SloState};
use crate::trace::Tracer;
use crate::window::{to_prometheus_windows, WindowRegistry};

/// The data planes a scrape serves from. All references are `'static`
/// because the accept loop runs on its own thread for the process
/// lifetime; [`Sources::global`] wires up the process-wide instances.
#[derive(Debug, Clone, Copy)]
pub struct Sources {
    /// Cumulative series.
    pub registry: &'static Registry,
    /// Windowed live series.
    pub windows: &'static WindowRegistry,
    /// SLO objectives.
    pub slos: &'static SloRegistry,
    /// Flight recorder.
    pub tracer: &'static Tracer,
    /// Tail-based request sampler.
    pub requests: &'static RequestSampler,
}

impl Sources {
    /// The process-global observability planes.
    pub fn global() -> Self {
        Self {
            registry: crate::global(),
            windows: crate::windows(),
            slos: crate::slos(),
            tracer: crate::trace::global_tracer(),
            requests: crate::requests(),
        }
    }
}

/// A response ready to serialize: status, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    fn new(status: u16, content_type: &'static str, body: String) -> Self {
        Self {
            status,
            content_type,
            body,
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Bad Request",
        }
    }

    /// Serializes the full HTTP/1.1 response.
    pub fn to_http(&self) -> String {
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            self.status_text(),
            self.content_type,
            self.body.len(),
            self.body
        )
    }
}

const TEXT: &str = "text/plain; charset=utf-8";
const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
const JSON: &str = "application/json";

/// Routes one request to its payload. Pure: all I/O stays in the
/// accept loop, so tests hit this directly.
pub fn respond(method: &str, path: &str, sources: &Sources) -> Response {
    if method != "GET" {
        return Response::new(405, TEXT, "method not allowed\n".into());
    }
    // Strip any query string; the endpoints take no parameters.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let mut body = to_prometheus(&sources.registry.snapshot());
            body.push_str(&to_prometheus_windows(&sources.windows.snapshot()));
            body.push_str(&slo_prometheus(sources.slos));
            body.push_str(&trace_prometheus(sources.tracer));
            body.push_str(&sources.requests.to_prometheus());
            Response::new(200, PROM, body)
        }
        "/slo" => Response::new(200, JSON, to_json_reports(&sources.slos.reports())),
        "/healthz" => Response::new(200, TEXT, "ok\n".into()),
        "/trace.json" => Response::new(
            200,
            JSON,
            to_chrome_json_with_requests(&sources.tracer.snapshot(), &sources.requests.sampled()),
        ),
        "/profile.json" => Response::new(200, JSON, sources.requests.profile_json()),
        "/requests.json" => Response::new(200, JSON, sources.requests.requests_json()),
        _ => Response::new(
            404,
            TEXT,
            "not found; try /metrics /slo /healthz /trace.json /profile.json /requests.json\n"
                .into(),
        ),
    }
}

/// Renders SLO evaluations as Prometheus gauges: `slo_state` (0=ok,
/// 1=warning, 2=burning), `slo_fast_burn`, `slo_slow_burn`, and
/// `slo_budget_remaining`, one sample per objective.
pub fn slo_prometheus(slos: &SloRegistry) -> String {
    let reports = slos.reports();
    if reports.is_empty() {
        return String::new();
    }
    let mut out = String::with_capacity(reports.len() * 256);
    out.push_str("# HELP slo_state Objective state: 0=ok 1=warning 2=burning\n");
    out.push_str("# TYPE slo_state gauge\n");
    for r in &reports {
        let v = match r.state {
            SloState::Ok => 0,
            SloState::Warning => 1,
            SloState::Burning => 2,
        };
        out.push_str(&format!("slo_state{} {v}\n", slo_label(&r.name)));
    }
    out.push_str("# HELP slo_fast_burn Error-budget burn rate over the fast window\n");
    out.push_str("# TYPE slo_fast_burn gauge\n");
    for r in &reports {
        out.push_str(&format!(
            "slo_fast_burn{} {}\n",
            slo_label(&r.name),
            r.fast_burn
        ));
    }
    out.push_str("# HELP slo_slow_burn Error-budget burn rate over the slow window\n");
    out.push_str("# TYPE slo_slow_burn gauge\n");
    for r in &reports {
        out.push_str(&format!(
            "slo_slow_burn{} {}\n",
            slo_label(&r.name),
            r.slow_burn
        ));
    }
    out.push_str("# HELP slo_budget_remaining Fraction of cumulative error budget left\n");
    out.push_str("# TYPE slo_budget_remaining gauge\n");
    for r in &reports {
        out.push_str(&format!(
            "slo_budget_remaining{} {}\n",
            slo_label(&r.name),
            r.budget.remaining_fraction
        ));
    }
    out
}

/// Renders flight-recorder health as Prometheus text:
/// `trace_dropped_total` plus a `trace_track_dropped{track,tid}` line
/// per registered track, so ring saturation is alertable.
pub fn trace_prometheus(tracer: &Tracer) -> String {
    let health = tracer.track_health();
    let mut out = String::with_capacity(128 + health.len() * 64);
    out.push_str("# HELP trace_dropped_total Flight-recorder events overwritten before export\n");
    out.push_str("# TYPE trace_dropped_total counter\n");
    let total: u64 = health.iter().map(|(_, _, d)| d).sum();
    out.push_str(&format!("trace_dropped_total {total}\n"));
    if !health.is_empty() {
        out.push_str("# HELP trace_track_dropped Events overwritten per flight-recorder track\n");
        out.push_str("# TYPE trace_track_dropped counter\n");
        for (tid, name, dropped) in &health {
            let mut label = String::from("{track=\"");
            crate::export::prom_escape(&mut label, name);
            label.push_str(&format!("\",tid=\"{tid}\"}}"));
            out.push_str(&format!("trace_track_dropped{label} {dropped}\n"));
        }
    }
    out
}

fn slo_label(name: &str) -> String {
    let mut out = String::from("{objective=\"");
    crate::export::prom_escape(&mut out, name);
    out.push_str("\"}");
    out
}

/// The scrape server: an accept loop on a background thread.
#[derive(Debug)]
pub struct ScrapeServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free
    /// port) and starts serving `sources`.
    pub fn bind(addr: &str, sources: Sources) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("datacomp-scrape".into())
            .spawn(move || accept_loop(listener, sources, stop_flag))?;
        Ok(Self {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection. A transient
        // connect failure (e.g. backlog exhaustion) would leave the
        // accept loop blocked and the join below hung, so retry a few
        // times; once any connect lands the loop observes the flag.
        for _ in 0..8 {
            if TcpStream::connect(self.local_addr).is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, sources: Sources, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // A stuck client must not wedge the (single-threaded) loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let _ = handle_connection(stream, &sources, &stop);
    }
}

fn handle_connection(
    stream: TcpStream,
    sources: &Sources,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.by_ref().take(8192).read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.by_ref().take(8192).read_line(&mut header)? > 2 {
        header.clear();
    }
    let response = respond(method, path, sources);
    // `stop()` may have landed while this request was being read — e.g.
    // its unblock connect raced an in-flight client. Re-check right
    // before the write so a stopped server never answers: the caller
    // sees a closed socket, not a response from a server it stopped.
    if stop.load(Ordering::SeqCst) {
        return Ok(());
    }
    let mut stream = reader.into_inner();
    stream.write_all(response.to_http().as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::slo::SloConfig;
    use crate::window::WindowConfig;
    use std::sync::Arc as StdArc;

    /// Builds an isolated (leaked — test-only) source bundle.
    fn test_sources() -> Sources {
        let clock = ManualClock::shared();
        Sources {
            registry: Box::leak(Box::new(Registry::new())),
            windows: Box::leak(Box::new(WindowRegistry::new(
                WindowConfig::new(100_000_000, 4),
                StdArc::clone(&clock) as StdArc<dyn crate::clock::Clock>,
            ))),
            slos: Box::leak(Box::new(SloRegistry::new(
                StdArc::clone(&clock) as StdArc<dyn crate::clock::Clock>
            ))),
            tracer: Box::leak(Box::new(Tracer::with_capacity(64))),
            requests: Box::leak(Box::new(RequestSampler::new(
                crate::request::SamplerConfig::default(),
                StdArc::clone(&clock) as StdArc<dyn crate::clock::Clock>,
            ))),
        }
    }

    #[test]
    fn routes_serve_all_four_endpoints() {
        let s = test_sources();
        s.registry.counter("reqs", &[]).add(3);
        s.windows.counter("reqs", &[]).add(2);
        s.slos
            .register(SloConfig::error_rate("errs", 0.9))
            .record(true);
        s.tracer.new_track("t").instant("mark");

        let metrics = respond("GET", "/metrics", &s);
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("reqs 3\n"));
        assert!(metrics.body.contains("window_reqs 2\n"));
        assert!(metrics.body.contains("slo_state{objective=\"errs\"} 0\n"));
        assert!(metrics
            .body
            .contains("slo_budget_remaining{objective=\"errs\"} 1\n"));
        assert!(metrics.body.contains("trace_dropped_total 0\n"));
        assert!(metrics
            .body
            .contains("trace_track_dropped{track=\"t\",tid=\"1\"} 0\n"));
        assert!(metrics.body.contains("requests_total 0\n"));
        assert!(metrics.body.contains("requests_dropped_total 0\n"));

        let slo = respond("GET", "/slo", &s);
        assert_eq!(slo.status, 200);
        assert!(slo.body.starts_with("{\"version\":1,\"worst\":\"ok\""));

        let health = respond("GET", "/healthz", &s);
        assert_eq!(health.body, "ok\n");

        let trace = respond("GET", "/trace.json", &s);
        assert!(trace.body.contains("\"name\":\"mark\""));
        // Non-destructive: a second scrape still sees the event.
        assert!(respond("GET", "/trace.json", &s)
            .body
            .contains("\"name\":\"mark\""));
    }

    #[test]
    fn profile_and_requests_endpoints_serve_sampler_state() {
        let s = test_sources();
        {
            let ctx = s.requests.open("svc", crate::request::Op::Compress, 100);
            ctx.mark_error("corrupt");
        }
        let profile = respond("GET", "/profile.json", &s);
        assert_eq!(profile.status, 200);
        assert_eq!(profile.content_type, JSON);
        assert!(profile.body.contains("\"attribution\":["));
        assert!(profile.body.contains("\"service\":\"svc\""));
        let requests = respond("GET", "/requests.json", &s);
        assert_eq!(requests.status, 200);
        assert!(requests.body.contains("\"outcome\":\"error\""));
        assert!(requests.body.contains("\"reason\":\"error\""));
        let metrics = respond("GET", "/metrics", &s);
        assert!(metrics
            .body
            .contains("requests_sampled_total{reason=\"error\"} 1\n"));
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let s = test_sources();
        assert_eq!(respond("GET", "/nope", &s).status, 404);
        assert_eq!(respond("POST", "/metrics", &s).status, 405);
        assert_eq!(respond("GET", "/metrics?x=1", &s).status, 200);
    }

    #[test]
    fn http_serialization_has_correct_content_length() {
        let r = Response::new(200, TEXT, "hëllo".into());
        let http = r.to_http();
        assert!(http.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(
            http.contains("Content-Length: 6\r\n"),
            "byte length, not chars"
        );
        assert!(http.ends_with("\r\n\r\nhëllo"));
    }

    #[test]
    fn server_answers_real_sockets_and_shuts_down() {
        let s = test_sources();
        s.registry.counter("socket.reqs", &[]).inc();
        let server = ScrapeServer::bind("127.0.0.1:0", s).expect("bind");
        let addr = server.local_addr();
        let fetch = |path: &str| -> String {
            let mut conn = TcpStream::connect(addr).expect("connect");
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            conn.read_to_string(&mut out).expect("read");
            out
        };
        let metrics = fetch("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("socket_reqs 1\n"));
        assert!(fetch("/healthz").ends_with("ok\n"));
        assert!(fetch("/slo").contains("\"objectives\""));
        assert!(fetch("/trace.json").contains("traceEvents"));
        assert!(fetch("/missing").starts_with("HTTP/1.1 404"));
        server.shutdown();
        // Deterministic shutdown: once `shutdown()` returns the accept
        // thread has been joined, so no probe — even one whose connect
        // wins a race against the kernel tearing the socket down — may
        // ever receive an HTTP response.
        for probe in 0..5 {
            let Ok(mut c) = TcpStream::connect(addr) else {
                continue; // port released, nothing listening
            };
            let _ = write!(c, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
            let mut buf = String::new();
            c.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let _ = c.read_to_string(&mut buf);
            assert!(
                !buf.contains("HTTP/1.1"),
                "stopped server answered probe {probe}: {buf}"
            );
        }
    }
}
