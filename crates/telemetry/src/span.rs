//! Scoped stage timing.
//!
//! A [`Span`] attributes the wall-clock lifetime of a scope to a named
//! stage — the generalization of the codec's one-off `StageTiming`: the
//! zstdx match-find/entropy split, the lz4x/zlibx stages, and the
//! dictionary path all report through this one mechanism. Dropping the
//! guard records the elapsed nanoseconds into the histogram
//! `span.<name>`, so every stage automatically gets call counts and
//! p50/p90/p99/max latency without bespoke accumulator structs.
//!
//! Stages that should appear on the [flight recorder](crate::trace)
//! timeline as well use [`Span::enter_traced`] or — for externally
//! timed intervals like the codec block loops — [`record_stage`],
//! which feed the histogram *and* the calling thread's trace track
//! from one instrumentation point.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;
use crate::registry::Registry;

/// Prefix applied to span histogram names.
pub const SPAN_PREFIX: &str = "span.";

/// An in-flight stage timing; records on drop.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
    trace_name: Option<&'static str>,
}

impl Span {
    /// Opens a span recording into the [global](crate::global) registry.
    pub fn enter(name: &str) -> Span {
        Self::enter_in(crate::global(), name, &[])
    }

    /// Opens a span recording into `registry` with `labels`.
    pub fn enter_in(registry: &Registry, name: &str, labels: &[(&str, &str)]) -> Span {
        let hist = registry.histogram(&format!("{SPAN_PREFIX}{name}"), labels);
        Span {
            hist,
            start: Instant::now(),
            trace_name: None,
        }
    }

    /// Opens a span that also emits begin/end events on the calling
    /// thread's [trace track](crate::trace::current_track). The name
    /// must be `'static` so trace events stay fixed-size.
    pub fn enter_traced(name: &'static str) -> Span {
        let mut span = Self::enter_in(crate::global(), name, &[]);
        span.trace_name = Some(name);
        crate::trace::begin(name);
        span
    }

    /// Time elapsed since the span was opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.observe_duration(self.start.elapsed());
        if let Some(name) = self.trace_name {
            crate::trace::end(name);
        }
    }
}

/// Records an externally timed stage into both `registry` (histogram
/// `span.<name>`) and the calling thread's trace track (a begin/end
/// pair at `start..start + elapsed`). This is the single
/// instrumentation point for the codec block loops, so the Figure 7
/// stage splits and the Perfetto timeline always agree.
pub fn record_stage(
    registry: &Registry,
    name: &'static str,
    labels: &[(&str, &str)],
    start: Instant,
    elapsed: Duration,
) {
    record_duration(registry, name, labels, elapsed);
    crate::trace::stage(name, start, elapsed);
    crate::request::observe_stage(name, start, elapsed);
}

/// Records an externally measured interval under the span name `name`,
/// for call sites that already hold a `Duration` (e.g. the codec block
/// loop, which times match-find and entropy stages back to back).
pub fn record_duration(registry: &Registry, name: &str, labels: &[(&str, &str)], d: Duration) {
    registry
        .histogram(&format!("{SPAN_PREFIX}{name}"), labels)
        .observe_duration(d);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let reg = Registry::new();
        {
            let _s = Span::enter_in(&reg, "stage.a", &[("svc", "t")]);
            std::hint::black_box(0u64);
        }
        let snap = reg.snapshot();
        let h = snap
            .histogram("span.stage.a", &[("svc", "t")])
            .expect("span recorded");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn record_duration_is_equivalent() {
        let reg = Registry::new();
        record_duration(&reg, "stage.b", &[], Duration::from_nanos(1500));
        let snap = reg.snapshot();
        let h = snap.histogram("span.stage.b", &[]).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum, 1500);
    }

    #[test]
    fn record_stage_feeds_histogram_and_trace() {
        let reg = Registry::new();
        let start = Instant::now();
        record_stage(&reg, "stage.traced", &[], start, Duration::from_nanos(900));
        let snap = reg.snapshot();
        let h = snap.histogram("span.stage.traced", &[]).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum, 900);
        // The trace side lands on this thread's global track; a full
        // drain assertion lives in the trace e2e test (the global
        // tracer is shared across concurrently running tests).
        assert!(crate::trace::global_tracer().track_count() >= 1);
    }

    #[test]
    fn traced_span_emits_begin_end_pair() {
        {
            let _s = Span::enter_traced("span.test.traced");
        }
        assert!(crate::trace::global_tracer().track_count() >= 1);
    }

    #[test]
    fn global_span_macro_compiles_and_records() {
        let before = crate::snapshot()
            .histogram("span.test.macro", &[])
            .map_or(0, |h| h.count());
        {
            let _s = crate::span!("test.macro");
        }
        let after = crate::snapshot()
            .histogram("span.test.macro", &[])
            .map_or(0, |h| h.count());
        assert!(after > before);
    }
}
