//! Scoped stage timing.
//!
//! A [`Span`] attributes the wall-clock lifetime of a scope to a named
//! stage — the generalization of the codec's one-off `StageTiming`: the
//! zstdx match-find/entropy split, the lz4x/zlibx stages, and the
//! dictionary path all report through this one mechanism. Dropping the
//! guard records the elapsed nanoseconds into the histogram
//! `span.<name>`, so every stage automatically gets call counts and
//! p50/p90/p99/max latency without bespoke accumulator structs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;
use crate::registry::Registry;

/// Prefix applied to span histogram names.
pub const SPAN_PREFIX: &str = "span.";

/// An in-flight stage timing; records on drop.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Opens a span recording into the [global](crate::global) registry.
    pub fn enter(name: &str) -> Span {
        Self::enter_in(crate::global(), name, &[])
    }

    /// Opens a span recording into `registry` with `labels`.
    pub fn enter_in(registry: &Registry, name: &str, labels: &[(&str, &str)]) -> Span {
        let hist = registry.histogram(&format!("{SPAN_PREFIX}{name}"), labels);
        Span {
            hist,
            start: Instant::now(),
        }
    }

    /// Time elapsed since the span was opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.observe_duration(self.start.elapsed());
    }
}

/// Records an externally measured interval under the span name `name`,
/// for call sites that already hold a `Duration` (e.g. the codec block
/// loop, which times match-find and entropy stages back to back).
pub fn record_duration(registry: &Registry, name: &str, labels: &[(&str, &str)], d: Duration) {
    registry
        .histogram(&format!("{SPAN_PREFIX}{name}"), labels)
        .observe_duration(d);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let reg = Registry::new();
        {
            let _s = Span::enter_in(&reg, "stage.a", &[("svc", "t")]);
            std::hint::black_box(0u64);
        }
        let snap = reg.snapshot();
        let h = snap
            .histogram("span.stage.a", &[("svc", "t")])
            .expect("span recorded");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn record_duration_is_equivalent() {
        let reg = Registry::new();
        record_duration(&reg, "stage.b", &[], Duration::from_nanos(1500));
        let snap = reg.snapshot();
        let h = snap.histogram("span.stage.b", &[]).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum, 1500);
    }

    #[test]
    fn global_span_macro_compiles_and_records() {
        let before = crate::snapshot()
            .histogram("span.test.macro", &[])
            .map_or(0, |h| h.count());
        {
            let _s = crate::span!("test.macro");
        }
        let after = crate::snapshot()
            .histogram("span.test.macro", &[])
            .map_or(0, |h| h.count());
        assert!(after > before);
    }
}
