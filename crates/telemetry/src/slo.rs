//! Declarative SLOs with multi-window burn-rate alerting and
//! error-budget accounting.
//!
//! An [`Slo`] declares what "good" means — a latency threshold
//! ([`SloKind::Latency`]) or plain success/failure
//! ([`SloKind::ErrorRate`]) — plus a target fraction of good events
//! (e.g. 0.999). Every recorded event lands in two sliding windows (a
//! fast one and a slow one, per the multi-window multi-burn-rate
//! alerting strategy of the Google SRE workbook: fast 5 m / slow 1 h
//! in production, scaled down by tests and the CLI monitor) and in a
//! cumulative error-budget tally.
//!
//! The **burn rate** of a window is `bad_fraction / (1 - target)`: 1.0
//! means the service is spending its error budget exactly as fast as
//! the target allows; 10 means ten times too fast. Evaluation maps the
//! two burn rates onto [`SloState`]:
//!
//! * `Burning` — both windows at or above the page threshold (the slow
//!   window confirms the fast one, suppressing blips);
//! * `Warning` — either window at or above the warn threshold;
//! * `Ok` — otherwise.
//!
//! State transitions are appended to an inspectable log and emitted as
//! trace instants (`slo.ok` / `slo.warning` / `slo.burning`) on the
//! caller's flight-recorder track, so a budget burn lines up with the
//! offending spans in the Chrome trace.
//!
//! Everything rotates on the injected [`Clock`], so tests drive exact
//! `Ok → Warning → Burning` sequences with a [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::clock::Clock;
use crate::export::{json_number, json_string};
use crate::window::{WindowConfig, WindowedCounter};

/// What counts as a "good" event for an objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Good iff the observed latency is at or under the threshold.
    Latency {
        /// Inclusive upper bound for a good sample, in nanoseconds.
        threshold_nanos: u64,
    },
    /// Good iff the operation reported success.
    ErrorRate,
}

/// A declarative service-level objective.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Objective name, e.g. `"decode.latency"`.
    pub name: String,
    /// What "good" means.
    pub kind: SloKind,
    /// Target fraction of good events in `(0, 1)`, e.g. 0.999.
    pub target: f64,
    /// The fast confirmation window.
    pub fast_window: WindowConfig,
    /// The slow confirmation window.
    pub slow_window: WindowConfig,
    /// Burn rate at which both windows must agree to page
    /// ([`SloState::Burning`]).
    pub page_burn: f64,
    /// Burn rate at which either window warns ([`SloState::Warning`]).
    pub warn_burn: f64,
}

impl SloConfig {
    /// A latency objective with the default window/burn shape:
    /// fast 30 s (10 × 3 s), slow 5 m (10 × 30 s), page at 14.4×,
    /// warn at 6× — the classic SRE-workbook thresholds.
    pub fn latency(name: impl Into<String>, threshold_nanos: u64, target: f64) -> Self {
        Self {
            name: name.into(),
            kind: SloKind::Latency { threshold_nanos },
            target,
            fast_window: WindowConfig::new(3_000_000_000, 10),
            slow_window: WindowConfig::new(30_000_000_000, 10),
            page_burn: 14.4,
            warn_burn: 6.0,
        }
    }

    /// An error-rate objective (ceiling `1 - target`) with the default
    /// window/burn shape of [`SloConfig::latency`].
    pub fn error_rate(name: impl Into<String>, target: f64) -> Self {
        Self {
            name: name.into(),
            kind: SloKind::ErrorRate,
            target,
            fast_window: WindowConfig::new(3_000_000_000, 10),
            slow_window: WindowConfig::new(30_000_000_000, 10),
            page_burn: 14.4,
            warn_burn: 6.0,
        }
    }

    /// Rescales both windows (e.g. for a short monitor run or a test).
    pub fn with_windows(mut self, fast: WindowConfig, slow: WindowConfig) -> Self {
        self.fast_window = fast;
        self.slow_window = slow;
        self
    }

    /// Overrides the burn thresholds.
    pub fn with_burns(mut self, page: f64, warn: f64) -> Self {
        self.page_burn = page;
        self.warn_burn = warn;
        self
    }
}

/// The health of an objective, from its two burn rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SloState {
    /// Burning budget within plan.
    Ok,
    /// At least one window is burning fast enough to worry.
    Warning,
    /// Both windows confirm a page-worthy burn.
    Burning,
}

impl SloState {
    /// Lower-case label, as used in JSON and metric values.
    pub fn as_str(&self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warning => "warning",
            SloState::Burning => "burning",
        }
    }

    fn trace_name(&self) -> &'static str {
        match self {
            SloState::Ok => "slo.ok",
            SloState::Warning => "slo.warning",
            SloState::Burning => "slo.burning",
        }
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTransition {
    /// Clock time of the evaluation that flipped the state.
    pub at_nanos: u64,
    /// State before.
    pub from: SloState,
    /// State after.
    pub to: SloState,
}

/// Cumulative error-budget accounting for one objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetReport {
    /// Total events recorded since process start.
    pub total: u64,
    /// Bad events recorded since process start.
    pub bad: u64,
    /// Bad events the target allows for `total` events:
    /// `(1 - target) × total`.
    pub allowed: f64,
    /// Fraction of the budget still unspent, in `[0, 1]`.
    pub remaining_fraction: f64,
    /// True once more budget is spent than the target allows.
    pub exhausted: bool,
}

/// A point-in-time evaluation of one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Objective name.
    pub name: String,
    /// Target fraction of good events.
    pub target: f64,
    /// Current state.
    pub state: SloState,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Cumulative budget accounting.
    pub budget: BudgetReport,
}

/// A live objective: two windows of good/bad tallies plus cumulative
/// budget counters. See the [module docs](self).
#[derive(Debug)]
pub struct Slo {
    cfg: SloConfig,
    clock: Arc<dyn Clock>,
    fast_good: WindowedCounter,
    fast_bad: WindowedCounter,
    slow_good: WindowedCounter,
    slow_bad: WindowedCounter,
    total_good: AtomicU64,
    total_bad: AtomicU64,
    state: Mutex<SloState>,
    transitions: Mutex<Vec<SloTransition>>,
}

impl Slo {
    /// Creates an objective rotating on `clock`.
    pub fn new(cfg: SloConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            fast_good: WindowedCounter::new(cfg.fast_window, Arc::clone(&clock)),
            fast_bad: WindowedCounter::new(cfg.fast_window, Arc::clone(&clock)),
            slow_good: WindowedCounter::new(cfg.slow_window, Arc::clone(&clock)),
            slow_bad: WindowedCounter::new(cfg.slow_window, Arc::clone(&clock)),
            total_good: AtomicU64::new(0),
            total_bad: AtomicU64::new(0),
            state: Mutex::new(SloState::Ok),
            transitions: Mutex::new(Vec::new()),
            cfg,
            clock,
        }
    }

    /// The objective's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Records a latency sample against a [`SloKind::Latency`]
    /// objective; good iff at or under the threshold. No-op semantics
    /// for other kinds are a programming error, so this panics.
    pub fn record_latency(&self, nanos: u64) {
        match self.cfg.kind {
            SloKind::Latency { threshold_nanos } => self.record(nanos <= threshold_nanos),
            SloKind::ErrorRate => panic!("latency sample recorded against error-rate SLO"),
        }
    }

    /// Records one event outcome.
    pub fn record(&self, good: bool) {
        if good {
            self.fast_good.inc();
            self.slow_good.inc();
            self.total_good.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fast_bad.inc();
            self.slow_bad.inc();
            self.total_bad.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Burn rates over (fast, slow) windows. A window with no events
    /// burns at 0.
    pub fn burn_rates(&self) -> (f64, f64) {
        (
            burn(
                self.fast_good.total(),
                self.fast_bad.total(),
                self.cfg.target,
            ),
            burn(
                self.slow_good.total(),
                self.slow_bad.total(),
                self.cfg.target,
            ),
        )
    }

    /// Cumulative error-budget accounting.
    pub fn budget(&self) -> BudgetReport {
        let good = self.total_good.load(Ordering::Relaxed);
        let bad = self.total_bad.load(Ordering::Relaxed);
        let total = good + bad;
        let allowed = (1.0 - self.cfg.target) * total as f64;
        let remaining_fraction = if total == 0 || allowed <= 0.0 {
            if bad == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            (1.0 - bad as f64 / allowed).clamp(0.0, 1.0)
        };
        BudgetReport {
            total,
            bad,
            allowed,
            remaining_fraction,
            exhausted: total > 0 && bad as f64 > allowed,
        }
    }

    /// Re-derives the state from current burn rates. On a change, the
    /// transition is logged and an instant (`slo.ok` / `slo.warning` /
    /// `slo.burning`) is recorded on the calling thread's trace track.
    pub fn evaluate(&self) -> SloState {
        let (fast, slow) = self.burn_rates();
        let next = if fast >= self.cfg.page_burn && slow >= self.cfg.page_burn {
            SloState::Burning
        } else if fast >= self.cfg.warn_burn || slow >= self.cfg.warn_burn {
            SloState::Warning
        } else {
            SloState::Ok
        };
        let mut state = self.state.lock().expect("slo state not poisoned");
        if *state != next {
            self.transitions
                .lock()
                .expect("slo transitions not poisoned")
                .push(SloTransition {
                    at_nanos: self.clock.now_nanos(),
                    from: *state,
                    to: next,
                });
            crate::trace::instant(next.trace_name());
            *state = next;
        }
        next
    }

    /// The state as of the last [`Slo::evaluate`] call.
    pub fn state(&self) -> SloState {
        *self.state.lock().expect("slo state not poisoned")
    }

    /// All state changes so far, in order.
    pub fn transitions(&self) -> Vec<SloTransition> {
        self.transitions
            .lock()
            .expect("slo transitions not poisoned")
            .clone()
    }

    /// Evaluates and bundles everything the `/slo` endpoint reports.
    pub fn report(&self) -> SloReport {
        let state = self.evaluate();
        let (fast_burn, slow_burn) = self.burn_rates();
        SloReport {
            name: self.cfg.name.clone(),
            target: self.cfg.target,
            state,
            fast_burn,
            slow_burn,
            budget: self.budget(),
        }
    }
}

fn burn(good: u64, bad: u64, target: f64) -> f64 {
    let total = good + bad;
    if total == 0 {
        return 0.0;
    }
    let bad_fraction = bad as f64 / total as f64;
    let budget_fraction = (1.0 - target).max(f64::EPSILON);
    bad_fraction / budget_fraction
}

/// A named set of objectives sharing one clock — the process-global
/// shape behind [`crate::slos`].
#[derive(Debug)]
pub struct SloRegistry {
    clock: Arc<dyn Clock>,
    slos: RwLock<Vec<Arc<Slo>>>,
}

impl SloRegistry {
    /// Creates an empty registry on `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            slos: RwLock::new(Vec::new()),
        }
    }

    /// Registers (or fetches, by name) an objective. A re-register
    /// under an existing name returns the existing objective and
    /// ignores the new config, so instrumentation sites can race.
    pub fn register(&self, cfg: SloConfig) -> Arc<Slo> {
        {
            let slos = self.slos.read().expect("slo registry not poisoned");
            if let Some(s) = slos.iter().find(|s| s.cfg.name == cfg.name) {
                return Arc::clone(s);
            }
        }
        let mut slos = self.slos.write().expect("slo registry not poisoned");
        if let Some(s) = slos.iter().find(|s| s.cfg.name == cfg.name) {
            return Arc::clone(s);
        }
        let slo = Arc::new(Slo::new(cfg, Arc::clone(&self.clock)));
        slos.push(Arc::clone(&slo));
        slos.sort_by(|a, b| a.cfg.name.cmp(&b.cfg.name));
        slo
    }

    /// Fetches an objective by name.
    pub fn get(&self, name: &str) -> Option<Arc<Slo>> {
        self.slos
            .read()
            .expect("slo registry not poisoned")
            .iter()
            .find(|s| s.cfg.name == name)
            .cloned()
    }

    /// Evaluates every objective, name order.
    pub fn reports(&self) -> Vec<SloReport> {
        self.slos
            .read()
            .expect("slo registry not poisoned")
            .iter()
            .map(|s| s.report())
            .collect()
    }

    /// True if any objective has exhausted its cumulative budget.
    pub fn any_exhausted(&self) -> bool {
        self.reports().iter().any(|r| r.budget.exhausted)
    }

    /// Worst current state across objectives ([`SloState::Ok`] when
    /// empty).
    pub fn worst_state(&self) -> SloState {
        self.reports()
            .iter()
            .map(|r| r.state)
            .max()
            .unwrap_or(SloState::Ok)
    }
}

/// Serializes reports as the `/slo` JSON document:
/// `{"version":1,"worst":"...","objectives":[...]}`.
pub fn to_json_reports(reports: &[SloReport]) -> String {
    let worst = reports
        .iter()
        .map(|r| r.state)
        .max()
        .unwrap_or(SloState::Ok);
    let mut out = String::with_capacity(reports.len() * 160 + 64);
    out.push_str("{\"version\":1,\"worst\":\"");
    out.push_str(worst.as_str());
    out.push_str("\",\"objectives\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_string(&mut out, &r.name);
        out.push_str(",\"target\":");
        json_number(&mut out, r.target);
        out.push_str(",\"state\":\"");
        out.push_str(r.state.as_str());
        out.push_str("\",\"fast_burn\":");
        json_number(&mut out, r.fast_burn);
        out.push_str(",\"slow_burn\":");
        json_number(&mut out, r.slow_burn);
        out.push_str(&format!(
            ",\"budget\":{{\"total\":{},\"bad\":{},\"allowed\":",
            r.budget.total, r.budget.bad
        ));
        json_number(&mut out, r.budget.allowed);
        out.push_str(",\"remaining_fraction\":");
        json_number(&mut out, r.budget.remaining_fraction);
        out.push_str(",\"exhausted\":");
        out.push_str(if r.budget.exhausted { "true" } else { "false" });
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    const MS: u64 = 1_000_000;

    /// target 0.9 → 10% budget. Fast window 400 ms, slow 1600 ms.
    /// Page at 2× (bad ≥ 20%), warn at 1.5× (bad ≥ 15%).
    fn test_slo(clock: &Arc<ManualClock>) -> Slo {
        let cfg = SloConfig::error_rate("decode.errors", 0.9)
            .with_windows(
                WindowConfig::new(100 * MS, 4),
                WindowConfig::new(400 * MS, 4),
            )
            .with_burns(2.0, 1.5);
        Slo::new(cfg, Arc::clone(clock) as Arc<dyn Clock>)
    }

    fn record_mix(slo: &Slo, good: u64, bad: u64) {
        for _ in 0..good {
            slo.record(true);
        }
        for _ in 0..bad {
            slo.record(false);
        }
    }

    #[test]
    fn burn_rate_math_is_exact() {
        let clock = ManualClock::shared();
        let slo = test_slo(&clock);
        record_mix(&slo, 90, 10); // bad fraction 0.1 = budget → burn 1.0
        let (fast, slow) = slo.burn_rates();
        assert!((fast - 1.0).abs() < 1e-9, "{fast}");
        assert!((slow - 1.0).abs() < 1e-9, "{slow}");
        assert_eq!(slo.evaluate(), SloState::Ok);
    }

    #[test]
    fn transitions_ok_warning_burning_and_back() {
        let clock = ManualClock::shared();
        let slo = test_slo(&clock);
        // Phase 1: healthy traffic → Ok.
        record_mix(&slo, 100, 0);
        assert_eq!(slo.evaluate(), SloState::Ok);
        assert!(slo.transitions().is_empty(), "Ok → Ok is not a transition");
        // Phase 2: bad fraction 16% → burn 1.6: warn (≥1.5), not page.
        clock.advance(100 * MS);
        record_mix(&slo, 84, 16);
        // Fast window: 184 good, 16 bad → 8% → burn 0.8? No: fast
        // window (400 ms) still holds phase 1. total 200, bad 16 →
        // burn 0.8. Slow window identical. Still Ok.
        assert_eq!(slo.evaluate(), SloState::Ok);
        // Phase 3: the fast window forgets phase 1, the slow window
        // still remembers it → Warning (fast over, slow under).
        clock.advance(400 * MS); // t=500ms: fast holds only ≥200ms epochs
        assert_eq!(slo.evaluate(), SloState::Ok, "fast window is now empty");
        record_mix(&slo, 80, 20); // fast: 20% bad → burn 2.0; slow: 36/300 → 1.2
        assert_eq!(slo.evaluate(), SloState::Warning);
        // Phase 4: sustained badness fills the slow window too → Burning.
        clock.advance(100 * MS);
        record_mix(&slo, 0, 60); // slow: 96 bad / 360 → burn 2.67; fast: 80/160 → 5.0
        assert_eq!(slo.evaluate(), SloState::Burning);
        // Phase 5: all traffic ages out → Ok again.
        clock.advance(3200 * MS);
        assert_eq!(slo.evaluate(), SloState::Ok);
        let transitions: Vec<(SloState, SloState)> =
            slo.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            transitions,
            vec![
                (SloState::Ok, SloState::Warning),
                (SloState::Warning, SloState::Burning),
                (SloState::Burning, SloState::Ok),
            ]
        );
        // Transition timestamps come from the injected clock.
        assert_eq!(slo.transitions()[0].at_nanos, 500 * MS);
        assert_eq!(slo.transitions()[1].at_nanos, 600 * MS);
        assert_eq!(slo.transitions()[2].at_nanos, 3800 * MS);
    }

    #[test]
    fn transitions_surface_as_trace_instants() {
        let clock = ManualClock::shared();
        let slo = test_slo(&clock);
        record_mix(&slo, 0, 100);
        slo.evaluate();
        // The instant lands on this thread's global-tracer track.
        let snap = crate::trace::global_tracer().snapshot();
        let names: Vec<String> = snap
            .tracks
            .iter()
            .flat_map(|t| t.events.iter())
            .filter_map(|e| match &e.kind {
                crate::trace::EventKind::Instant { name } => Some(name.to_string()),
                _ => None,
            })
            .collect();
        assert!(
            names.iter().any(|n| n == "slo.burning"),
            "expected slo.burning instant in {names:?}"
        );
    }

    #[test]
    fn latency_kind_classifies_by_threshold() {
        let clock = ManualClock::shared();
        let cfg = SloConfig::latency("decode.latency", 1000, 0.5).with_windows(
            WindowConfig::new(100 * MS, 4),
            WindowConfig::new(400 * MS, 4),
        );
        let slo = Slo::new(cfg, Arc::clone(&clock) as Arc<dyn Clock>);
        slo.record_latency(999); // good
        slo.record_latency(1000); // good (inclusive)
        slo.record_latency(1001); // bad
        let b = slo.budget();
        assert_eq!(b.total, 3);
        assert_eq!(b.bad, 1);
    }

    #[test]
    fn budget_accounting_and_exhaustion() {
        let clock = ManualClock::shared();
        let slo = test_slo(&clock); // 10% budget
        record_mix(&slo, 95, 5);
        let b = slo.budget();
        assert_eq!(b.total, 100);
        assert_eq!(b.bad, 5);
        assert!((b.allowed - 10.0).abs() < 1e-9);
        assert!((b.remaining_fraction - 0.5).abs() < 1e-9);
        assert!(!b.exhausted);
        record_mix(&slo, 0, 20);
        let b = slo.budget();
        assert_eq!(b.bad, 25);
        assert!((b.allowed - 12.0).abs() < 1e-9);
        assert!(b.exhausted);
        assert_eq!(b.remaining_fraction, 0.0);
    }

    #[test]
    fn registry_deduplicates_by_name_and_reports_worst() {
        let clock = ManualClock::shared();
        let reg = SloRegistry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let a = reg.register(
            SloConfig::error_rate("a", 0.9)
                .with_windows(
                    WindowConfig::new(100 * MS, 4),
                    WindowConfig::new(400 * MS, 4),
                )
                .with_burns(2.0, 1.5),
        );
        let a2 = reg.register(SloConfig::error_rate("a", 0.5));
        assert!(Arc::ptr_eq(&a, &a2), "same name → same objective");
        reg.register(
            SloConfig::error_rate("b", 0.9)
                .with_windows(
                    WindowConfig::new(100 * MS, 4),
                    WindowConfig::new(400 * MS, 4),
                )
                .with_burns(2.0, 1.5),
        );
        for _ in 0..10 {
            a.record(false);
        }
        assert_eq!(reg.worst_state(), SloState::Burning);
        assert!(reg.any_exhausted());
        let reports = reg.reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "a");
        assert_eq!(reports[1].name, "b");
        assert_eq!(reports[1].state, SloState::Ok);
    }

    #[test]
    fn slo_json_is_balanced_and_complete() {
        let clock = ManualClock::shared();
        let reg = SloRegistry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let slo = reg.register(
            SloConfig::error_rate("decode.errors", 0.9)
                .with_windows(
                    WindowConfig::new(100 * MS, 4),
                    WindowConfig::new(400 * MS, 4),
                )
                .with_burns(2.0, 1.5),
        );
        for _ in 0..10 {
            slo.record(false);
        }
        let json = to_json_reports(&reg.reports());
        assert!(json.starts_with("{\"version\":1,\"worst\":\"burning\""));
        assert!(json.contains("\"name\":\"decode.errors\""));
        assert!(json.contains("\"state\":\"burning\""));
        assert!(json.contains("\"fast_burn\":10"));
        assert!(json.contains("\"exhausted\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn empty_registry_reports_ok() {
        let clock = ManualClock::shared();
        let reg = SloRegistry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        assert_eq!(reg.worst_state(), SloState::Ok);
        assert!(!reg.any_exhausted());
        assert_eq!(
            to_json_reports(&reg.reports()),
            "{\"version\":1,\"worst\":\"ok\",\"objectives\":[]}"
        );
    }
}
