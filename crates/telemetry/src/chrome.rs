//! Chrome trace-event JSON serialization for drained traces.
//!
//! [`to_chrome_json`] renders a [`TraceSnapshot`] in the Chrome
//! trace-event "JSON object format": `{"traceEvents":[...]}` with one
//! object per event. The output loads directly in Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`.
//!
//! Mapping:
//!
//! * every track becomes a named thread (`thread_name` metadata, `tid`
//!   = track id) inside one `datacomp` process (`pid` 1);
//! * [`EventKind::Begin`]/[`EventKind::End`] → `ph:"B"`/`ph:"E"`
//!   duration events;
//! * [`EventKind::Instant`] → `ph:"i"` thread-scoped instants;
//! * [`EventKind::Counter`] → `ph:"C"` counter samples;
//! * [`EventKind::Decision`] → a `ph:"i"` event named
//!   `compopt.decision` whose `args` carry the full Eq. 1–4 cost-term
//!   breakdown (`c_compute`, `c_storage`, `c_network`, `total_cost`)
//!   plus `feasible`/`won`/`pruned_by` — click one in Perfetto to see
//!   why a candidate was chosen or rejected;
//! * per-track drop counts surface both as a trailing `trace.dropped`
//!   counter event and in the top-level `otherData` object.
//!
//! Timestamps (`ts`) are microseconds with nanosecond fraction, per
//! the format's convention. Every event — metadata included — carries
//! `ph`, `ts`, `pid`, and `tid` so downstream tooling can rely on a
//! uniform shape.

use crate::export::{json_number, json_string};
use crate::request::SampledRequest;
use crate::trace::{EventKind, TraceSnapshot};

/// The single process id the exporter attributes all tracks to.
pub const TRACE_PID: u64 = 1;

/// Sampled requests render on their own synthetic threads so their
/// span trees never interleave with the per-thread stage timeline:
/// `tid = REQUEST_TID_BASE + request id`.
pub const REQUEST_TID_BASE: u64 = 1_000_000;

/// Serializes a drained trace as Chrome trace-event JSON.
pub fn to_chrome_json(snap: &TraceSnapshot) -> String {
    to_chrome_json_with_requests(snap, &[])
}

/// Serializes a trace plus tail-sampled request span trees. Each
/// request becomes a named synthetic thread of `ph:"X"` complete
/// events (one per span node, `args` carrying span/parent ids and
/// self-time), flow-linked (`ph:"s"` → `ph:"f"`, `id` = request id)
/// from the origin track position where the request executed — so in
/// Perfetto an SLO burn's sampled request is one arrow away from the
/// raw flight-recorder timeline.
pub fn to_chrome_json_with_requests(snap: &TraceSnapshot, requests: &[SampledRequest]) -> String {
    let mut out = String::with_capacity(snap.event_count() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":");
    out.push_str(&snap.dropped_total().to_string());
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    meta_event(&mut out, &mut first, 0, "process_name", "datacomp");
    for track in &snap.tracks {
        meta_event(&mut out, &mut first, track.tid, "thread_name", &track.name);
        let mut last_ts = 0u64;
        for ev in &track.events {
            last_ts = ev.ts_nanos;
            event_open(&mut out, &mut first);
            match &ev.kind {
                EventKind::Begin { name } => {
                    field_str(&mut out, "name", name);
                    out.push_str(",\"cat\":\"stage\",\"ph\":\"B\"");
                }
                EventKind::End { name } => {
                    field_str(&mut out, "name", name);
                    out.push_str(",\"cat\":\"stage\",\"ph\":\"E\"");
                }
                EventKind::Instant { name } => {
                    field_str(&mut out, "name", name);
                    // `seq` is the stable per-track event id exemplars
                    // reference: `(tid, seq)` from a /metrics exemplar
                    // locates exactly this object.
                    out.push_str(&format!(
                        ",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\"args\":{{\"seq\":{}}}",
                        ev.seq
                    ));
                }
                EventKind::Counter { name, value } => {
                    field_str(&mut out, "name", name);
                    out.push_str(",\"cat\":\"counter\",\"ph\":\"C\",\"args\":{\"value\":");
                    json_number(&mut out, *value);
                    out.push('}');
                }
                EventKind::Decision(d) => {
                    out.push_str("\"name\":\"compopt.decision\",\"cat\":\"compopt\",");
                    out.push_str("\"ph\":\"i\",\"s\":\"t\",\"args\":{");
                    field_str(&mut out, "label", d.label.as_str());
                    out.push_str(",\"c_compute\":");
                    json_number(&mut out, d.compute);
                    out.push_str(",\"c_storage\":");
                    json_number(&mut out, d.storage);
                    out.push_str(",\"c_network\":");
                    json_number(&mut out, d.network);
                    out.push_str(",\"total_cost\":");
                    json_number(&mut out, d.total);
                    out.push_str(",\"feasible\":");
                    out.push_str(if d.feasible { "true" } else { "false" });
                    out.push_str(",\"won\":");
                    out.push_str(if d.won { "true" } else { "false" });
                    out.push(',');
                    field_str(&mut out, "pruned_by", d.pruned_by.as_str());
                    out.push('}');
                }
            }
            event_close(&mut out, ev.ts_nanos, track.tid);
        }
        if track.dropped > 0 {
            event_open(&mut out, &mut first);
            out.push_str("\"name\":\"trace.dropped\",\"cat\":\"counter\",\"ph\":\"C\",");
            out.push_str(&format!("\"args\":{{\"dropped\":{}}}", track.dropped));
            event_close(&mut out, last_ts, track.tid);
        }
    }
    for r in requests {
        request_events(&mut out, &mut first, r);
    }
    out.push_str("]}");
    out
}

/// Emits one sampled request: thread-name metadata, a flow arrow from
/// the origin track, and a `ph:"X"` complete event per span node.
fn request_events(out: &mut String, first: &mut bool, r: &SampledRequest) {
    let tid = REQUEST_TID_BASE + r.id;
    let outcome = if r.error.is_some() { "error" } else { "ok" };
    meta_event(
        out,
        first,
        tid,
        "thread_name",
        &format!(
            "req:{} {}/{} {} [{}]",
            r.id,
            r.service,
            r.op.as_str(),
            outcome,
            r.reason.as_str()
        ),
    );
    // Flow start anchored where the request actually ran, so the arrow
    // leads from the raw timeline to the span tree.
    event_open(out, first);
    out.push_str(&format!(
        "\"name\":\"request\",\"cat\":\"request\",\"ph\":\"s\",\"id\":{}",
        r.id
    ));
    event_close(out, r.trace_start_nanos, r.track);
    event_open(out, first);
    out.push_str(&format!(
        "\"name\":\"request\",\"cat\":\"request\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{}",
        r.id
    ));
    event_close(out, r.trace_start_nanos, tid);
    for s in &r.spans {
        event_open(out, first);
        field_str(out, "name", s.name);
        out.push_str(&format!(
            ",\"cat\":\"request\",\"ph\":\"X\",\"dur\":{}.{:03},\"args\":{{\"request\":{},\"span\":{},\"parent\":{},\"self_nanos\":{}",
            s.total_nanos / 1000,
            s.total_nanos % 1000,
            r.id,
            s.id,
            s.parent,
            s.self_nanos,
        ));
        if s.parent == 0 {
            out.push_str(&format!(",\"reason\":\"{}\"", r.reason.as_str()));
            out.push_str(&format!(",\"outcome\":\"{outcome}\""));
            if let Some(e) = r.error {
                out.push(',');
                field_str(out, "error", e);
            }
        }
        out.push('}');
        event_close(out, r.trace_start_nanos.saturating_add(s.start_nanos), tid);
    }
}

fn meta_event(out: &mut String, first: &mut bool, tid: u64, kind: &str, name: &str) {
    event_open(out, first);
    out.push_str(&format!("\"name\":\"{kind}\",\"ph\":\"M\",\"args\":{{"));
    field_str(out, "name", name);
    out.push('}');
    event_close(out, 0, tid);
}

fn event_open(out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('{');
}

fn event_close(out: &mut String, ts_nanos: u64, tid: u64) {
    out.push_str(&format!(
        ",\"ts\":{}.{:03},\"pid\":{TRACE_PID},\"tid\":{tid}}}",
        ts_nanos / 1000,
        ts_nanos % 1000
    ));
}

fn field_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    json_string(out, value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Decision, Tracer};
    use std::time::{Duration, Instant};

    fn sample_trace() -> TraceSnapshot {
        let tracer = Tracer::with_capacity(64);
        let svc = tracer.new_track("svc:DW1");
        let start = Instant::now();
        svc.stage("zstdx.match_find", start, Duration::from_micros(40));
        svc.stage("zstdx.entropy", start, Duration::from_micros(15));
        svc.instant("block");
        svc.counter("bytes_out", 512.0);
        let opt = tracer.new_track("compopt");
        opt.decision(Decision {
            label: "(zstdx, 3)".into(),
            compute: 1.0,
            storage: 2.0,
            network: 3.0,
            total: 6.0,
            feasible: true,
            won: true,
            pruned_by: "".into(),
        });
        tracer.drain()
    }

    #[test]
    fn output_is_structurally_balanced() {
        let json = to_chrome_json(&sample_trace());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn every_event_has_required_fields() {
        let json = to_chrome_json(&sample_trace());
        let events = json
            .split_once("\"traceEvents\":[")
            .expect("traceEvents array")
            .1;
        let mut count = 0;
        for obj in events.split("},{") {
            count += 1;
            for field in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
                assert!(obj.contains(field), "missing {field} in {obj}");
            }
        }
        // process_name + 2 thread_name + 7 recorded events.
        assert_eq!(count, 10);
    }

    #[test]
    fn tracks_become_named_threads() {
        let json = to_chrome_json(&sample_trace());
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(
            json.contains("\"name\":\"thread_name\",\"ph\":\"M\",\"args\":{\"name\":\"svc:DW1\"}")
        );
        assert!(
            json.contains("\"name\":\"thread_name\",\"ph\":\"M\",\"args\":{\"name\":\"compopt\"}")
        );
    }

    #[test]
    fn stage_pairs_and_instants_map_to_chrome_phases() {
        let json = to_chrome_json(&sample_trace());
        assert!(json.contains("\"name\":\"zstdx.match_find\",\"cat\":\"stage\",\"ph\":\"B\""));
        assert!(json.contains("\"name\":\"zstdx.match_find\",\"cat\":\"stage\",\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"block\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\""));
        assert!(json.contains("\"name\":\"bytes_out\",\"cat\":\"counter\",\"ph\":\"C\""));
    }

    #[test]
    fn decision_args_carry_all_four_cost_terms() {
        let json = to_chrome_json(&sample_trace());
        assert!(json.contains("\"name\":\"compopt.decision\""));
        for term in [
            "\"c_compute\":1",
            "\"c_storage\":2",
            "\"c_network\":3",
            "\"total_cost\":6",
        ] {
            assert!(json.contains(term), "missing {term}");
        }
        assert!(json.contains("\"label\":\"(zstdx, 3)\""));
        assert!(json.contains("\"won\":true"));
    }

    #[test]
    fn instants_carry_their_seq_for_exemplar_resolution() {
        let tracer = Tracer::with_capacity(8);
        let t = tracer.new_track("t");
        t.instant("first");
        let r = t.instant_ref("sample");
        let json = to_chrome_json(&tracer.drain());
        assert_eq!(r.seq, 1);
        assert!(
            json.contains(&format!(
                "\"name\":\"sample\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\"args\":{{\"seq\":{}}}",
                r.seq
            )),
            "{json}"
        );
    }

    #[test]
    fn dropped_events_surface_in_other_data_and_counter() {
        let tracer = Tracer::with_capacity(2);
        let t = tracer.new_track("tiny");
        for i in 0..5 {
            t.counter("c", i as f64);
        }
        let json = to_chrome_json(&tracer.drain());
        assert!(json.contains("\"otherData\":{\"droppedEvents\":3}"));
        assert!(json.contains("\"name\":\"trace.dropped\""));
        assert!(json.contains("\"args\":{\"dropped\":3}"));
    }

    #[test]
    fn sampled_requests_render_flow_linked_span_trees() {
        use crate::clock::{Clock, ManualClock};
        use crate::request::{Op, RequestSampler, SamplerConfig};
        use std::sync::Arc;

        let clock = ManualClock::shared();
        let sampler = RequestSampler::new(
            SamplerConfig {
                baseline_one_in: 0,
                slowest_per_window: 0,
                ..SamplerConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let ctx = sampler.open("CACHE1", Op::Decompress, 4096);
        let id = ctx.id();
        crate::request::observe_stage(
            "codec.decompress",
            Instant::now(),
            Duration::from_micros(10),
        );
        clock.advance(50_000);
        ctx.mark_error("checksum");
        drop(ctx);

        let tracer = Tracer::with_capacity(8);
        tracer.new_track("svc:CACHE1").instant("block");
        let json = to_chrome_json_with_requests(&tracer.drain(), &sampler.sampled());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Flow start + finish share the request id.
        assert!(
            json.contains(&format!("\"ph\":\"s\",\"id\":{id}")),
            "{json}"
        );
        assert!(json.contains(&format!("\"ph\":\"f\",\"bp\":\"e\",\"id\":{id}")));
        // Root + stage render as complete events on the request tid.
        let tid = REQUEST_TID_BASE + id;
        assert!(json.contains(&format!("\"tid\":{tid}}}")));
        assert!(json.contains("\"name\":\"decompress\""));
        assert!(json.contains("\"name\":\"codec.decompress\""));
        assert!(json.contains("\"ph\":\"X\",\"dur\":50.000"));
        assert!(json.contains("\"outcome\":\"error\""));
        assert!(json.contains("\"error\":\"checksum\""));
        // Every event still carries the uniform field set.
        let events = json.split_once("\"traceEvents\":[").expect("array").1;
        for obj in events.split("},{") {
            for field in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
                assert!(obj.contains(field), "missing {field} in {obj}");
            }
        }
    }

    #[test]
    fn timestamps_are_microseconds_with_nano_fraction() {
        let tracer = Tracer::with_capacity(4);
        let t = tracer.new_track("t");
        let start = Instant::now();
        t.stage("s", start, Duration::from_nanos(1234));
        let json = to_chrome_json(&tracer.drain());
        // 1234 ns after the begin ts: the delta must render as
        // 1.234 µs exactly (no float rounding).
        let begin_ts = extract_ts(&json, "\"ph\":\"B\"");
        let end_ts = extract_ts(&json, "\"ph\":\"E\"");
        assert!((end_ts - begin_ts - 1.234).abs() < 1e-9);
    }

    fn extract_ts(json: &str, marker: &str) -> f64 {
        let obj_start = json.find(marker).expect("marker");
        let rest = &json[obj_start..];
        let ts = rest.split_once("\"ts\":").expect("ts").1;
        ts.split(',').next().unwrap().parse().expect("ts number")
    }
}
