//! Stress coverage for the tail sampler's bounded store and counters
//! under concurrent recording — the shape the fleet profiler actually
//! drives it in (one thread per service, every block opening request
//! contexts, plus live `/requests.json` scrapes racing the writers).

use std::thread;
use std::time::Duration;

use telemetry::request::observe_stage;
use telemetry::{KeepReason, ManualClock, Op, RequestSampler, SamplerConfig, WindowConfig};

fn small_window() -> WindowConfig {
    WindowConfig {
        sub_window_nanos: 1_000_000, // 1ms sub-windows
        sub_windows: 4,
    }
}

#[test]
fn concurrent_recording_accounts_for_every_request() {
    const THREADS: u64 = 8;
    const REQUESTS: u64 = 500;
    let cfg = SamplerConfig {
        window: small_window(),
        slowest_per_window: 2,
        baseline_one_in: 16,
        capacity: 64,
        seed: 7,
    };
    let clock = ManualClock::shared();
    let sampler = RequestSampler::new(cfg, clock.clone());

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let sampler = sampler.clone();
            let clock = clock.clone();
            thread::spawn(move || {
                for i in 0..REQUESTS {
                    let service = if t % 2 == 0 { "svc-even" } else { "svc-odd" };
                    let req = sampler.open(service, Op::Compress, (i as usize + 1) * 64);
                    let start = std::time::Instant::now();
                    observe_stage("stage.work", start, Duration::from_nanos(100));
                    // Everyone advances the shared clock; per-request
                    // latency is whatever the interleaving produces.
                    clock.advance(1_000 * (t + 1));
                    if i % 97 == 0 {
                        req.mark_error("synthetic");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let s = sampler.stats();
    let total = THREADS * REQUESTS;
    // Every open is finished, and every finished request lands in
    // exactly one bucket: kept (error/slow/baseline) or dropped.
    assert_eq!(s.opened, total);
    assert_eq!(s.finished, total);
    assert_eq!(s.kept() + s.dropped, total);
    // Errors are always kept: 1 in 97 per thread.
    let errors_per_thread = REQUESTS.div_ceil(97);
    assert_eq!(s.kept_error, THREADS * errors_per_thread);

    // The store honors its bound no matter the interleaving, and what
    // remains is consistent: evictions account for the overflow.
    let sampled = sampler.sampled();
    assert!(sampled.len() <= 64, "store overflow: {}", sampled.len());
    assert_eq!(s.kept() - s.evicted, sampled.len() as u64);

    // Attribution aggregated every request, not just the kept ones.
    let rows = sampler.attribution();
    let attributed: u64 = rows.iter().map(|r| r.requests).sum();
    assert_eq!(attributed, total);
    for row in &rows {
        assert!(row.service == "svc-even" || row.service == "svc-odd");
        assert_eq!(row.latency.count(), row.requests);
    }
}

#[test]
fn errored_requests_survive_eviction_pressure() {
    // Capacity 8 with a flood of successes after a handful of errors:
    // eviction must pick non-errors first, so every error survives.
    let cfg = SamplerConfig {
        window: small_window(),
        slowest_per_window: 8,
        baseline_one_in: 1, // keep everything -> maximum pressure
        capacity: 8,
        seed: 3,
    };
    let clock = ManualClock::shared();
    let sampler = RequestSampler::new(cfg, clock.clone());

    for _ in 0..3 {
        let req = sampler.open("svc", Op::Decompress, 100);
        req.mark_error("boom");
        clock.advance(500);
    }
    for _ in 0..100 {
        let _req = sampler.open("svc", Op::Compress, 100);
        clock.advance(500);
    }

    let sampled = sampler.sampled();
    assert!(sampled.len() <= 8);
    let errors = sampled
        .iter()
        .filter(|r| r.reason == KeepReason::Error)
        .count();
    assert_eq!(errors, 3, "an errored request was evicted");
}

#[test]
fn live_scrapes_race_concurrent_writers_without_corruption() {
    const REQUESTS: u64 = 5_000;
    let cfg = SamplerConfig {
        window: small_window(),
        slowest_per_window: 4,
        baseline_one_in: 8,
        capacity: 32,
        seed: 11,
    };
    let clock = ManualClock::shared();
    let sampler = RequestSampler::new(cfg, clock.clone());

    let writer = {
        let sampler = sampler.clone();
        let clock = clock.clone();
        thread::spawn(move || {
            for i in 0..REQUESTS {
                let req = sampler.open("hot", Op::Compress, 4096);
                let start = std::time::Instant::now();
                observe_stage("stage.a", start, Duration::from_nanos(50));
                clock.advance(700);
                if i % 211 == 0 {
                    req.mark_error("flaky");
                }
            }
        })
    };

    // Scrape-style reads while the writer floods: every observed view
    // must be internally consistent even though it races finishes.
    for _ in 0..50 {
        let s = sampler.stats();
        assert!(s.finished <= s.opened);
        assert!(s.kept() + s.dropped <= s.finished);
        let sampled = sampler.sampled();
        assert!(sampled.len() <= 32);
        for r in &sampled {
            assert!(!r.spans.is_empty(), "sampled request with no root span");
            assert_eq!(r.spans[0].parent, 0, "first span must be the root");
            assert_eq!(r.self_nanos_total(), r.latency_nanos, "tree sums broke");
        }
        let json = sampler.requests_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    writer.join().unwrap();
    let s = sampler.stats();
    assert_eq!(s.finished, REQUESTS);
    assert_eq!(s.kept() + s.dropped, REQUESTS);
}
