//! Stress coverage for the flight recorder's bounded rings: overwrite
//! behavior past capacity, exact drop accounting, and the per-track
//! monotonic-timestamp guarantee — including under concurrent writers,
//! which is how the fleet profiler actually drives the tracer (one
//! thread per service, plus live `/trace.json` scrapes racing drains).

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use telemetry::trace::EventKind;
use telemetry::Tracer;

const CAPACITY: usize = 64;

fn seqs(events: &[telemetry::TraceEvent]) -> Vec<u64> {
    events.iter().map(|e| e.seq).collect()
}

#[test]
fn per_thread_tracks_past_capacity_keep_newest_and_count_drops_exactly() {
    const THREADS: u64 = 4;
    const PUSHES: u64 = 1_000;
    let tracer = Arc::new(Tracer::with_capacity(CAPACITY));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let track = tracer.new_track(&format!("writer-{i}"));
            thread::spawn(move || {
                for _ in 0..PUSHES {
                    track.instant("tick");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = tracer.drain();
    assert_eq!(snap.tracks.len(), THREADS as usize);
    for t in &snap.tracks {
        // The ring keeps exactly the newest `CAPACITY` events...
        assert_eq!(t.events.len(), CAPACITY, "track {}", t.name);
        // ...drops account for precisely the rest...
        assert_eq!(t.dropped, PUSHES - CAPACITY as u64, "track {}", t.name);
        // ...and the survivors are the contiguous tail of the stream.
        let want: Vec<u64> = (PUSHES - CAPACITY as u64..PUSHES).collect();
        assert_eq!(seqs(&t.events), want, "track {}", t.name);
    }
    assert_eq!(snap.dropped_total(), THREADS * (PUSHES - CAPACITY as u64));
}

#[test]
fn shared_track_under_concurrent_writers_loses_nothing_silently() {
    const THREADS: u64 = 4;
    const PUSHES: u64 = 500;
    let tracer = Arc::new(Tracer::with_capacity(CAPACITY));
    let track = tracer.new_track("shared");
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let track = Arc::clone(&track);
            thread::spawn(move || {
                for _ in 0..PUSHES {
                    track.instant("tick");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = tracer.drain();
    assert_eq!(snap.tracks.len(), 1);
    let t = &snap.tracks[0];
    // Retained + dropped == pushed: every event is accounted for.
    assert_eq!(t.events.len(), CAPACITY);
    assert_eq!(t.dropped, THREADS * PUSHES - CAPACITY as u64);
    // Sequence numbers are globally ordered on the track (assigned
    // under the ring lock), and the ring kept the newest tail.
    let want: Vec<u64> = (THREADS * PUSHES - CAPACITY as u64..THREADS * PUSHES).collect();
    assert_eq!(seqs(&t.events), want);
}

#[test]
fn timestamps_are_monotonic_per_track_even_for_backdated_stages() {
    let tracer = Tracer::with_capacity(CAPACITY);
    let track = tracer.new_track("clock");
    let before = Instant::now();
    std::thread::sleep(Duration::from_millis(2));
    for _ in 0..10 {
        track.instant("now");
    }
    // A stage whose start predates already-recorded events: the ring
    // must clamp rather than emit a timestamp that goes backwards
    // (Perfetto rejects out-of-order begin/end pairs).
    track.stage("backdated", before, Duration::from_micros(10));
    for _ in 0..10 {
        track.instant("after");
    }

    let snap = tracer.drain();
    let events = &snap.tracks[0].events;
    assert_eq!(events.len(), 22, "10 + begin/end + 10");
    let ts: Vec<u64> = events.iter().map(|e| e.ts_nanos).collect();
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "timestamps regressed: {ts:?}"
    );
    // The backdated begin exists and was clamped up to the high-water
    // mark, not recorded in the past.
    let first_instant_ts = events[0].ts_nanos;
    let begin = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Begin { name: "backdated" }))
        .expect("begin event");
    assert!(begin.ts_nanos >= first_instant_ts);
}

#[test]
fn drain_resets_drop_counters_and_preserves_seq_continuity() {
    let tracer = Tracer::with_capacity(CAPACITY);
    let track = tracer.new_track("t");
    for _ in 0..CAPACITY + 10 {
        track.instant("a");
    }
    let first = tracer.drain();
    assert_eq!(first.dropped_total(), 10);
    assert_eq!(first.tracks[0].events.len(), CAPACITY);

    // After a drain the counters start over, but sequence numbers keep
    // counting: exemplar refs minted before the drain stay unambiguous.
    for _ in 0..5 {
        track.instant("b");
    }
    let second = tracer.drain();
    assert_eq!(second.dropped_total(), 0, "drop counter must reset");
    let first_seqs = seqs(&first.tracks[0].events);
    let second_seqs = seqs(&second.tracks[0].events);
    assert_eq!(second_seqs.len(), 5);
    assert_eq!(second_seqs[0], first_seqs.last().unwrap() + 1);
}

#[test]
fn live_snapshot_races_concurrent_writers_without_corruption() {
    const PUSHES: u64 = 20_000;
    let tracer = Arc::new(Tracer::with_capacity(CAPACITY));
    let track = tracer.new_track("hot");
    let writer = {
        let track = Arc::clone(&track);
        thread::spawn(move || {
            for _ in 0..PUSHES {
                track.instant("tick");
            }
        })
    };
    // Scrape-style non-destructive snapshots while the writer floods
    // the ring: every observed view must be internally consistent.
    for _ in 0..50 {
        let snap = tracer.snapshot();
        if let Some(t) = snap.tracks.first() {
            assert!(t.events.len() <= CAPACITY);
            let s = seqs(&t.events);
            assert!(s.windows(2).all(|w| w[1] == w[0] + 1), "gap in {s:?}");
            let ts: Vec<u64> = t.events.iter().map(|e| e.ts_nanos).collect();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        }
    }
    writer.join().unwrap();
    let final_snap = tracer.drain();
    let t = &final_snap.tracks[0];
    assert_eq!(t.events.len() as u64 + t.dropped, PUSHES);
}
