//! Property tests for the log-bucketed histogram (ISSUE 1 satellite):
//! quantile monotonicity, merge ≡ concatenation, and bucket boundary
//! placement.

use proptest::prelude::*;
use telemetry::histogram::{bucket_index, bucket_upper, Histogram, NUM_BUCKETS};
use telemetry::HistogramSnapshot;

fn observe_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    /// Quantiles never decrease as q grows, and are bounded by max.
    #[test]
    fn quantiles_are_monotone(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let s = observe_all(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let estimates: Vec<u64> = qs.iter().map(|&q| s.quantile(q)).collect();
        prop_assert!(estimates.windows(2).all(|w| w[0] <= w[1]), "{estimates:?}");
        prop_assert!(*estimates.last().unwrap() <= s.max);
        prop_assert_eq!(s.quantile(1.0), *values.iter().max().unwrap());
    }

    /// Merging two snapshots equals observing the concatenated stream.
    #[test]
    fn merge_equals_concat(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut merged = observe_all(&a);
        merged.merge(&observe_all(&b));
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, observe_all(&concat));
    }

    /// A quantile estimate is never below the true quantile's bucket
    /// lower bound nor above its bucket upper bound.
    #[test]
    fn quantile_brackets_true_rank(
        mut values in proptest::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let s = observe_all(&values);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1];
        let est = s.quantile(q);
        prop_assert!(est <= bucket_upper(bucket_index(truth)), "est {est} truth {truth}");
        let lower = if truth == 0 { 0 } else { bucket_upper(bucket_index(truth) - 1) };
        prop_assert!(est >= lower, "est {est} truth {truth} lower {lower}");
    }

    /// Every value lands in the bucket whose bounds contain it, and
    /// powers of two start a fresh bucket.
    #[test]
    fn bucket_boundary_placement(k in 0u32..63) {
        let v = 1u64 << k;
        for (value, expect_idx) in [(v, k as usize + 1), (v - 1, bucket_index(v - 1))] {
            let s = observe_all(&[value]);
            let idx = s.buckets.iter().position(|&c| c == 1).unwrap();
            prop_assert_eq!(idx, expect_idx);
            prop_assert!(value <= bucket_upper(idx));
            if idx > 0 {
                prop_assert!(value > bucket_upper(idx - 1));
            }
        }
        prop_assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    /// Count and sum are exact regardless of bucketing.
    #[test]
    fn count_and_sum_exact(values in proptest::collection::vec(any::<u32>(), 0..200)) {
        let wide: Vec<u64> = values.iter().map(|&v| v as u64).collect();
        let s = observe_all(&wide);
        prop_assert_eq!(s.count(), wide.len() as u64);
        prop_assert_eq!(s.sum, wide.iter().sum::<u64>());
    }
}
