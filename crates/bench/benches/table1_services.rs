//! Table I: the eight case-study services.

use benchkit::print_table;

fn main() {
    let rows: Vec<Vec<String>> = fleet::table1()
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.category.to_string(),
                s.description.to_string(),
                s.resource_bound.to_string(),
                s.key_takeaway.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table I: representative services",
        &[
            "Service",
            "Category",
            "Description",
            "Boundedness",
            "Key Takeaway",
        ],
        &rows,
    );
}
