//! Figure 7: warehouse services' zstd time split — compression vs
//! decompression, and match finding vs entropy within compression.
//!
//! Paper: "the match finding stage dominates the compute cycles (up to
//! 80%) for DW1, where compression level 7 is mainly used, while match
//! finding only takes around 30% of Zstd compute cycles of DW4" (§IV-B).

use benchkit::{print_table, write_artifact, Scale};
use fleet::{profile_fleet, ProfileConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    service: String,
    compression_pct: f64,
    decompression_pct: f64,
    match_find_pct: f64,
    entropy_pct: f64,
}

fn main() {
    let scale = Scale::from_env();
    let profile = profile_fleet(&ProfileConfig {
        work_units: scale.pick(10, 3),
        seed: 35,
        stage_deadline_nanos: 0,
    });
    let rows: Vec<Row> = fleet::agg::warehouse_split(&profile)
        .into_iter()
        .map(|w| Row {
            service: w.service.to_string(),
            compression_pct: w.compression_fraction * 100.0,
            decompression_pct: (1.0 - w.compression_fraction) * 100.0,
            match_find_pct: w.match_find_fraction * 100.0,
            entropy_pct: (1.0 - w.match_find_fraction) * 100.0,
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.service.clone(),
                format!("{:.1}%", r.compression_pct),
                format!("{:.1}%", r.decompression_pct),
                format!("{:.1}%", r.match_find_pct),
                format!("{:.1}%", r.entropy_pct),
            ]
        })
        .collect();
    print_table(
        "Figure 7: warehouse zstd split",
        &["service", "comp", "decomp", "match-find", "entropy"],
        &table,
    );
    println!("\npaper anchors: DW1 match-find ~80% (level 7), DW4 ~30% (level 1)");
    write_artifact(
        "fig07_warehouse_split",
        &compopt::report::to_json_lines(&rows),
    );
}
