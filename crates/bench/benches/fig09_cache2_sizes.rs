//! Figure 9: CACHE2 item size distribution (same shape as Figure 8,
//! shifted larger).

fn main() {
    benchkit::cache_sizes_figure(
        "Figure 9: CACHE2 item sizes",
        "fig09_cache2_sizes",
        &corpus::cache::cache2_profile(),
    );
}
