//! Figure 8: CACHE1 item size distribution.
//!
//! Paper: "the distribution is strongly skewed towards smaller items
//! whose sizes are less than 1KB, with a long tail of larger items".

fn main() {
    benchkit::cache_sizes_figure(
        "Figure 8: CACHE1 item sizes",
        "fig08_cache1_sizes",
        &corpus::cache::cache1_profile(),
    );
}
