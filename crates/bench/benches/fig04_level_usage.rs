//! Figure 4: zstdx level usage by compute cycles.
//!
//! Paper: "compression levels 1-4 take more than 50% of entire CPU
//! cycles" (§III-E).

use benchkit::{print_table, write_artifact, Scale};
use fleet::{profile_fleet, ProfileConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    level_bucket: String,
    cycles_pct: f64,
}

fn main() {
    let scale = Scale::from_env();
    let profile = profile_fleet(&ProfileConfig {
        work_units: scale.pick(10, 3),
        seed: 32,
        stage_deadline_nanos: 0,
    });
    let rows: Vec<Row> = fleet::agg::level_usage(&profile)
        .into_iter()
        .map(|(b, f)| Row {
            level_bucket: b,
            cycles_pct: f * 100.0,
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.level_bucket.clone(), format!("{:.1}%", r.cycles_pct)])
        .collect();
    print_table(
        "Figure 4: zstdx level usage by cycles",
        &["levels", "cycles"],
        &table,
    );
    let low = rows
        .iter()
        .find(|r| r.level_bucket == "1-4")
        .map(|r| r.cycles_pct)
        .unwrap_or(0.0);
    println!("\nlevels 1-4 hold {low:.1}% of zstd cycles (paper: > 50%)");
    write_artifact("fig04_level_usage", &compopt::report::to_json_lines(&rows));
}
