//! §VI-A/B: the four-category service taxonomy and hardware-offload
//! guidance, derived from each Table I service's measured usage profile.

use benchkit::print_table;

fn main() {
    let rows: Vec<Vec<String>> = fleet::table1()
        .iter()
        .map(|s| {
            let classes = fleet::classify(s);
            let letters: String = classes
                .iter()
                .map(|c| c.letter())
                .collect::<Vec<_>>()
                .iter()
                .collect();
            let offload = if classes.iter().any(|c| c.suits_hardware_offload()) {
                "offload candidate"
            } else {
                "keep on CPU"
            };
            vec![s.name.to_string(), letters, offload.to_string()]
        })
        .collect();
    print_table(
        "§VI taxonomy: categories (A speed / B decomp / C latency-insensitive / D small-data) and offload guidance",
        &["service", "classes", "HW guidance"],
        &rows,
    );
}
