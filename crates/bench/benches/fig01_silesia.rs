//! Figure 1: compression ratio and speed across Silesia-like file
//! classes for zstdx/zlibx/lz4x at levels 1–9.
//!
//! Paper claim to reproduce: "compression metrics depend heavily on the
//! data, showing an order of magnitude difference in compression ratios
//! and speeds" (§I).

use benchkit::{print_table, write_artifact, Scale};
use codecs::{measure, Algorithm};
use corpus::silesia::FileClass;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    class: String,
    algorithm: String,
    level: i32,
    ratio: f64,
    compress_mbps: f64,
    decompress_mbps: f64,
}

fn main() {
    let scale = Scale::from_env();
    let size = scale.pick(1 << 20, 64 << 10);
    let levels: Vec<i32> = scale.pick((1..=9).collect(), vec![1, 3, 6, 9]);

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for class in FileClass::ALL {
        let data = corpus::silesia::generate(class, size, 1);
        for algo in [Algorithm::Zstdx, Algorithm::Zlibx, Algorithm::Lz4x] {
            for &level in &levels {
                let c = algo.compressor(level);
                let m = measure(c.as_ref(), &[&data]);
                rows.push(Row {
                    class: class.to_string(),
                    algorithm: algo.to_string(),
                    level,
                    ratio: m.ratio(),
                    compress_mbps: m.compress_mbps(),
                    decompress_mbps: m.decompress_mbps(),
                });
                table.push(vec![
                    class.to_string(),
                    algo.to_string(),
                    level.to_string(),
                    format!("{:.2}", m.ratio()),
                    format!("{:.1}", m.compress_mbps()),
                    format!("{:.1}", m.decompress_mbps()),
                ]);
            }
        }
    }
    print_table(
        "Figure 1: ratio & speed by file class / algorithm / level",
        &[
            "class",
            "algo",
            "level",
            "ratio",
            "comp MB/s",
            "decomp MB/s",
        ],
        &table,
    );
    // Headline check: order-of-magnitude spread in ratios across classes.
    let max = rows.iter().map(|r| r.ratio).fold(f64::MIN, f64::max);
    let min = rows.iter().map(|r| r.ratio).fold(f64::MAX, f64::min);
    println!("\nratio spread: {min:.2} .. {max:.2} ({:.1}x)", max / min);
    write_artifact("fig01_silesia", &compopt::report::to_json_lines(&rows));
}
