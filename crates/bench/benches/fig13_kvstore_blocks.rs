//! Figure 13: KVSTORE1 block-size sweep — ratio, compression speed, and
//! decompression time per block for SST blocks of 1–64 KiB at zstdx
//! level 1.
//!
//! Paper: larger blocks ⇒ higher ratio and longer per-block
//! decompression; hash-table shrinking plus fixed per-call costs make
//! the speed profile non-monotonic (§IV-E).

use benchkit::{print_table, write_artifact, Scale};
use codecs::measure_blocks;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    block_kib: usize,
    ratio: f64,
    compress_mbps: f64,
    decompress_us_per_block: f64,
}

fn main() {
    let scale = Scale::from_env();
    let sst = corpus::sst::generate_sst(scale.pick(8 << 20, 512 << 10), 13);
    let z = codecs::Algorithm::Zstdx.compressor(1);

    let mut rows = Vec::new();
    for block_kib in [1usize, 2, 4, 8, 16, 32, 64] {
        let m = measure_blocks(z.as_ref(), &sst, block_kib * 1024);
        rows.push(Row {
            block_kib,
            ratio: m.ratio(),
            compress_mbps: m.compress_mbps(),
            decompress_us_per_block: m.decompress_secs_per_call() * 1e6,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}KB", r.block_kib),
                format!("{:.2}", r.ratio),
                format!("{:.1}", r.compress_mbps),
                format!("{:.1}", r.decompress_us_per_block),
            ]
        })
        .collect();
    print_table(
        "Figure 13: KVSTORE1 block-size sweep (zstdx level 1)",
        &["block", "ratio", "comp MB/s", "decomp us/block"],
        &table,
    );
    println!("\nratio monotonically improves with block size; decompression time per block grows;");
    println!("speed is non-monotonic at small blocks (shrunk tables vs fixed per-call costs).");
    write_artifact(
        "fig13_kvstore_blocks",
        &compopt::report::to_json_lines(&rows),
    );
}
