//! Figure 11: CACHE2 compression speed vs ratio with and without
//! dictionary compression, zstdx levels 1/3/6/11.

fn main() {
    benchkit::cache_dict_figure(
        "Figure 11: CACHE2 dictionary compression",
        "fig11_cache2_dict",
        &corpus::cache::cache2_profile(),
    );
}
