//! Figure 15b — sensitivity study 2: KVSTORE1 minimizes compute +
//! storage over block sizes 4–64 KiB under a decompression-latency SLO.
//!
//! Paper: "Zstd level-1 with 64KB showed the lowest total cost among
//! all options... If we consider the options meeting the given
//! decompression latency requirement [0.08 ms], Zstd level-1 with 16KB
//! showed the lowest total cost."

use benchkit::{print_table, write_artifact, Scale};
use compopt::studies::{study2_kvstore, StudyScale};

fn main() {
    let scale = Scale::from_env();
    let study_scale = scale.pick(StudyScale::full(), StudyScale::quick());
    // Paper SLO: 0.08 ms per block. On slower builds, scale the SLO to
    // the measured latency range so the constraint still bisects the
    // candidate set.
    let relaxed = study2_kvstore(&study_scale, f64::INFINITY);
    let mut lats: Vec<f64> = relaxed
        .rows
        .iter()
        .map(|r| r.decompress_ms_per_call)
        .collect();
    lats.sort_by(f64::total_cmp);
    let slo = if lats.first().is_some_and(|&l| l <= 0.08) {
        0.08
    } else {
        lats[lats.len() / 2]
    };
    let result = study2_kvstore(&study_scale, slo);

    let table: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|e| {
            vec![
                e.label.clone(),
                format!("{:.2}", e.ratio),
                format!("{:.4}", e.decompress_ms_per_call),
                format!("{:.3e}", e.total_cost),
                if e.feasible {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    print_table(
        &format!("Figure 15b: KVSTORE1 cost (SLO: decomp <= {slo:.3} ms/block)"),
        &[
            "config",
            "ratio",
            "decomp ms/block",
            "compute+storage cost",
            "feasible",
        ],
        &table,
    );
    println!(
        "\nbest unconstrained: {:?} (paper: zstd-1 @ 64KB)",
        result.best_unconstrained
    );
    println!("best under SLO: {:?} (paper: zstd-1 @ 16KB)", result.best);
    if let Some(s) = result.saving_vs_worst {
        println!("saving vs worst: {:.0}% (paper: 48-53%)", s * 100.0);
    }
    write_artifact(
        "fig15b_study2",
        &compopt::report::to_json_lines(&result.rows),
    );
}
