//! §III-B headline numbers: fleet-wide compression tax and the
//! per-algorithm cycle split.
//!
//! Paper: "an average of 4.6% of compute cycles are spent for
//! compression and decompression operations... Zstd is dominant with
//! 3.9% compute cycles while 0.4% and 0.3% are used for LZ4 and Zlib
//! respectively."

use benchkit::{print_table, write_artifact, Scale};
use fleet::{profile_fleet, ProfileConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    metric: String,
    pct_of_fleet_cycles: f64,
}

fn main() {
    let scale = Scale::from_env();
    let profile = profile_fleet(&ProfileConfig {
        work_units: scale.pick(10, 3),
        seed: 36,
        stage_deadline_nanos: 0,
    });
    let tax = fleet::agg::fleet_compression_tax(&profile);
    let mut rows = vec![Row {
        metric: "all compression".into(),
        pct_of_fleet_cycles: tax * 100.0,
    }];
    for (algo, share) in fleet::agg::algorithm_split(&profile) {
        rows.push(Row {
            metric: algo.name().into(),
            pct_of_fleet_cycles: share * 100.0,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.metric.clone(), format!("{:.2}%", r.pct_of_fleet_cycles)])
        .collect();
    print_table(
        "§III-B: fleet compression tax and algorithm split",
        &["metric", "fleet cycles"],
        &table,
    );
    println!("\npaper: 4.6% total; zstd 3.9%, lz4 0.4%, zlib 0.3%");
    write_artifact("fleet_summary", &compopt::report::to_json_lines(&rows));
}
