//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. Repeat offsets on/off — how much of zstdx's ratio edge they carry.
//! 2. Match-finding strategy sweep at a fixed entropy stage.
//! 3. Dictionary size sweep on small cache items.
//! 4. Parallel (block-independent) compression: thread scaling and the
//!    ratio cost of independence.

use benchkit::{print_table, write_artifact, Scale};
use codecs::zstdx::Zstdx;
use codecs::Compressor;
use lzkit::{MatchParams, Strategy};
use serde::Serialize;

fn main() {
    let scale = Scale::from_env();
    rep_offsets(scale);
    strategies(scale);
    dict_sizes(scale);
    parallel_scaling(scale);
}

#[derive(Serialize)]
struct RepRow {
    class: String,
    with_reps: usize,
    without_reps: usize,
    rep_gain_pct: f64,
}

fn rep_offsets(scale: Scale) {
    use corpus::silesia::FileClass;
    let size = scale.pick(512 << 10, 64 << 10);
    let mut rows = Vec::new();
    for class in FileClass::ALL {
        let data = corpus::silesia::generate(class, size, 3);
        let with = Zstdx::new(3).compress(&data).len();
        let without = Zstdx::new(3).with_rep_offsets(false).compress(&data).len();
        rows.push(RepRow {
            class: class.to_string(),
            with_reps: with,
            without_reps: without,
            rep_gain_pct: (without as f64 / with as f64 - 1.0) * 100.0,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.class.clone(),
                r.with_reps.to_string(),
                r.without_reps.to_string(),
                format!("{:+.1}%", r.rep_gain_pct),
            ]
        })
        .collect();
    print_table(
        "Ablation 1: repeat offsets (zstdx level 3)",
        &["class", "with reps", "without", "cost of removing"],
        &table,
    );
    write_artifact(
        "ablation_rep_offsets",
        &compopt::report::to_json_lines(&rows),
    );
}

#[derive(Serialize)]
struct StrategyRow {
    strategy: String,
    compressed: usize,
    compress_mbps: f64,
}

fn strategies(scale: Scale) {
    let size = scale.pick(1 << 20, 128 << 10);
    let data = corpus::silesia::generate(corpus::silesia::FileClass::Source, size, 4);
    let mut rows = Vec::new();
    for strategy in [
        Strategy::Fast,
        Strategy::Greedy,
        Strategy::Lazy,
        Strategy::Optimal,
    ] {
        let params = MatchParams::new(strategy);
        let z = Zstdx::with_params(6, params);
        let t0 = std::time::Instant::now();
        let frame = z.compress(&data);
        let dt = t0.elapsed().as_secs_f64();
        rows.push(StrategyRow {
            strategy: strategy.to_string(),
            compressed: frame.len(),
            compress_mbps: data.len() as f64 / dt / 1e6,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                r.compressed.to_string(),
                format!("{:.1}", r.compress_mbps),
            ]
        })
        .collect();
    print_table(
        "Ablation 2: match-finding strategy (same entropy stage)",
        &["strategy", "compressed bytes", "comp MB/s"],
        &table,
    );
    write_artifact(
        "ablation_strategies",
        &compopt::report::to_json_lines(&rows),
    );
}

#[derive(Serialize)]
struct DictRow {
    dict_bytes: usize,
    ratio: f64,
}

fn dict_sizes(scale: Scale) {
    let n = scale.pick(2000, 300);
    let items = corpus::cache::generate_items(&corpus::cache::cache1_profile(), n, 5);
    let split = items.len() / 2;
    let train: Vec<&[u8]> = items[..split].iter().map(|i| i.data.as_slice()).collect();
    let z = Zstdx::new(3);

    let mut rows = Vec::new();
    for dict_size in [0usize, 1 << 10, 4 << 10, 16 << 10, 64 << 10] {
        let dict = (dict_size > 0).then(|| codecs::dict::train(&train, dict_size, 1));
        let (mut input, mut output) = (0usize, 0usize);
        for item in &items[split..] {
            input += item.data.len();
            output += match &dict {
                Some(d) => z.compress_with_dict(&item.data, d).len(),
                None => z.compress(&item.data).len(),
            };
        }
        rows.push(DictRow {
            dict_bytes: dict_size,
            ratio: input as f64 / output as f64,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                benchkit::fmt_bytes(r.dict_bytes as f64),
                format!("{:.2}", r.ratio),
            ]
        })
        .collect();
    print_table(
        "Ablation 3: dictionary size on CACHE1-style items (zstdx level 3)",
        &["dict size", "ratio"],
        &table,
    );
    write_artifact(
        "ablation_dict_sizes",
        &compopt::report::to_json_lines(&rows),
    );
}

#[derive(Serialize)]
struct ParRow {
    threads: usize,
    compress_mbps: f64,
    compressed: usize,
}

fn parallel_scaling(scale: Scale) {
    let size = scale.pick(16 << 20, 2 << 20);
    let data = corpus::sst::generate_sst(size, 6);
    let z = Zstdx::new(3);
    let chained = z.compress(&data).len();
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let frame = codecs::parallel::compress_parallel(&z, &data, threads)
            .expect("nonzero thread count is always valid");
        let dt = t0.elapsed().as_secs_f64();
        rows.push(ParRow {
            threads,
            compress_mbps: data.len() as f64 / dt / 1e6,
            compressed: frame.len(),
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.1}", r.compress_mbps),
                format!(
                    "{:+.1}%",
                    (r.compressed as f64 / chained as f64 - 1.0) * 100.0
                ),
            ]
        })
        .collect();
    print_table(
        "Ablation 4: parallel block-independent compression (vs chained ratio)",
        &["threads", "comp MB/s", "ratio cost"],
        &table,
    );
    write_artifact("ablation_parallel", &compopt::report::to_json_lines(&rows));
}
