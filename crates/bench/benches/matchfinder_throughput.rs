//! Criterion throughput benches: the four match-finding strategies —
//! the "LZ match-finding stage" axis of the paper's trade-off
//! discussion (§II-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lzkit::{parse, MatchParams, Strategy};

fn bench_matchfinders(c: &mut Criterion) {
    let data = corpus::silesia::generate(corpus::silesia::FileClass::Source, 256 << 10, 5);
    let mut g = c.benchmark_group("match_find");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for strategy in [
        Strategy::Fast,
        Strategy::Greedy,
        Strategy::Lazy,
        Strategy::Optimal,
    ] {
        let params = MatchParams::new(strategy);
        g.bench_with_input(BenchmarkId::from_parameter(strategy), &data, |b, data| {
            b.iter(|| parse(data, 0, &params))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matchfinders
}
criterion_main!(benches);
