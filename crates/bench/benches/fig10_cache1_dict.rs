//! Figure 10: CACHE1 compression speed vs ratio with and without
//! dictionary compression, zstdx levels 1/3/6/11.
//!
//! Paper: "dictionary compression achieves a much higher ratio for the
//! same level in all cases" (§IV-C).

fn main() {
    benchkit::cache_dict_figure(
        "Figure 10: CACHE1 dictionary compression",
        "fig10_cache1_dict",
        &corpus::cache::cache1_profile(),
    );
}
