//! Figure 2: compute cycles (%) used by zstdx per service category.
//!
//! Paper: "considerable variance in compression CPU cycles percentage
//! from 1.8 to 21.2% depending on service categories" (§III-C).

use benchkit::{print_table, write_artifact, Scale};
use fleet::{profile_fleet, ProfileConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    category: String,
    zstd_cycles_pct: f64,
}

fn main() {
    let scale = Scale::from_env();
    let profile = profile_fleet(&ProfileConfig {
        work_units: scale.pick(10, 3),
        seed: 30,
        stage_deadline_nanos: 0,
    });
    let rows: Vec<Row> = fleet::agg::category_zstd_cycles(&profile)
        .into_iter()
        .map(|(c, f)| Row {
            category: c.to_string(),
            zstd_cycles_pct: f * 100.0,
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.category.clone(), format!("{:.1}%", r.zstd_cycles_pct)])
        .collect();
    print_table(
        "Figure 2: zstdx cycles by category",
        &["category", "zstd cycles"],
        &table,
    );
    let min = rows
        .iter()
        .map(|r| r.zstd_cycles_pct)
        .fold(f64::MAX, f64::min);
    let max = rows
        .iter()
        .map(|r| r.zstd_cycles_pct)
        .fold(f64::MIN, f64::max);
    println!("\nrange: {min:.1}% .. {max:.1}% (paper: 1.8% .. 21.2%)");
    write_artifact(
        "fig02_category_cycles",
        &compopt::report::to_json_lines(&rows),
    );
}
