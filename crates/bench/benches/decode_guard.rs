//! Decode-throughput guard: decompression speed must not regress.
//!
//! The panic-free decode contract (see `tests/fault_injection.rs`) cost
//! measurable decompression throughput when it landed; the checked
//! fast-path engines (word-at-a-time bit readers, multi-symbol entropy
//! tables, wild LZ copies) recovered it. This bench pins that recovery:
//! it measures best-of-5 median decompression throughput per codec over
//! a mixed corpus and fails (exit 1) if any codec lands more than
//! `TOLERANCE` below the checked-in baseline.
//!
//! * `DATACOMP_QUICK=1` — reduced corpus/iterations; compared against
//!   the baseline's `quick` section (CI uses this).
//! * `DATACOMP_GUARD_WRITE=1` — rewrite the baseline section for the
//!   current scale from this run's numbers instead of checking.
//! * `DATACOMP_GUARD_TOLERANCE=0.08` — override the allowed fractional
//!   regression (default 0.05).

use std::time::Instant;

use benchkit::{print_table, write_artifact, Scale};
use codecs::{lz4x::Lz4x, zlibx::Zlibx, zstdx::Zstdx};
use codecs::{Compressor, StreamPolicy};
use corpus::silesia::FileClass;

/// Allowed fractional throughput regression before the guard fails.
const TOLERANCE: f64 = 0.05;

/// Per-codec measurement rounds; the median is the reported number.
const ROUNDS: usize = 5;

/// Every guarded row, in baseline-file order. The plain names are the
/// fleet defaults (Auto stream policy — multi-stream entropy sections on
/// corpus-sized blocks); the `@1` rows force `StreamPolicy::Single` so
/// the legacy single-stream decode loops stay guarded too.
const NAMES: [&str; 5] = ["lz4x", "zlibx", "zlibx@1", "zstdx", "zstdx@1"];

/// The guarded codec configurations at the fleet's dominant levels:
/// zstdx runs at 3, the byte-oriented codecs at their ratio-side
/// default 6.
fn cases() -> Vec<(&'static str, Box<dyn Compressor>)> {
    vec![
        ("lz4x", Box::new(Lz4x::new(6))),
        ("zlibx", Box::new(Zlibx::new(6))),
        (
            "zlibx@1",
            Box::new(Zlibx::new(6).with_stream_policy(StreamPolicy::Single)),
        ),
        ("zstdx", Box::new(Zstdx::new(3))),
        (
            "zstdx@1",
            Box::new(Zstdx::new(3).with_stream_policy(StreamPolicy::Single)),
        ),
    ]
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("decode_guard_baseline.json")
}

/// One block of every Silesia-like class, concatenated — the same mixed
/// shape the fleet model decodes, so no codec is graded on a corpus
/// that flatters it.
fn mixed_corpus(per_class: usize) -> Vec<u8> {
    let mut data = Vec::with_capacity(per_class * FileClass::ALL.len());
    for (i, class) in FileClass::ALL.into_iter().enumerate() {
        data.extend_from_slice(&corpus::silesia::generate(
            class,
            per_class,
            0x5157 + i as u64,
        ));
    }
    data
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    xs[xs.len() / 2]
}

/// Best-of-`ROUNDS` median decompression throughput in MB/s.
fn measure_decode_mbps(comp: &dyn Compressor, frame: &[u8], content: usize, iters: usize) -> f64 {
    for _ in 0..2 {
        let out = comp.decompress(frame).expect("own frame decodes");
        assert_eq!(out.len(), content);
    }
    let rounds: Vec<f64> = (0..ROUNDS)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(comp.decompress(frame).expect("own frame decodes"));
            }
            content as f64 * iters as f64 / t0.elapsed().as_secs_f64() / 1e6
        })
        .collect();
    median(rounds)
}

fn tolerance() -> f64 {
    std::env::var("DATACOMP_GUARD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(TOLERANCE)
}

fn main() {
    let scale = Scale::from_env();
    let section = scale.pick("full", "quick");
    let per_class = scale.pick(512 << 10, 64 << 10);
    let iters = scale.pick(8, 3);
    let data = mixed_corpus(per_class);

    let mut measured: Vec<(&'static str, f64)> = Vec::new();
    for (name, comp) in cases() {
        let frame = comp.compress(&data);
        let mbps = measure_decode_mbps(comp.as_ref(), &frame, data.len(), iters);
        measured.push((name, mbps));
    }

    let path = baseline_path();
    if std::env::var_os("DATACOMP_GUARD_WRITE").is_some_and(|v| v != "0") {
        write_baseline(&path, section, &measured);
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with DATACOMP_GUARD_WRITE=1 to create it",
            path.display()
        )
    });
    let baseline: serde_json::Value = serde_json::from_str(&text).expect("baseline JSON parses");
    let tol = tolerance();

    let mut rows = Vec::new();
    let mut json_lines = String::new();
    let mut failures = Vec::new();
    for (name, mbps) in &measured {
        let base = baseline[section][*name]
            .as_f64()
            .unwrap_or_else(|| panic!("baseline missing {section}/{name}"));
        let delta = mbps / base - 1.0;
        let ok = delta >= -tol;
        rows.push(vec![
            (*name).to_string(),
            format!("{base:.1}"),
            format!("{mbps:.1}"),
            format!("{:+.1}%", delta * 100.0),
            if ok { "ok" } else { "FAIL" }.to_string(),
        ]);
        json_lines.push_str(&format!(
            "{{\"codec\":\"{name}\",\"scale\":\"{section}\",\"baseline_mbps\":{base:.1},\"measured_mbps\":{mbps:.1},\"delta\":{delta:.4}}}\n"
        ));
        if !ok {
            failures.push(format!(
                "{name}: {mbps:.1} MB/s is {:.1}% below baseline {base:.1} MB/s (tolerance {:.0}%)",
                -delta * 100.0,
                tol * 100.0
            ));
        }
    }
    print_table(
        &format!("decode guard ({section}, tolerance {:.0}%)", tol * 100.0),
        &["codec", "baseline MB/s", "measured MB/s", "delta", "status"],
        &rows,
    );
    write_artifact("decode_guard", &json_lines);
    if !failures.is_empty() {
        eprintln!("decode throughput regression:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

/// Rewrites one scale section of the baseline file, preserving the
/// other. Hand-formatted so the output is byte-stable and diffable.
fn write_baseline(path: &std::path::Path, section: &str, measured: &[(&'static str, f64)]) {
    let other = if section == "full" { "quick" } else { "full" };
    let existing = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| serde_json::from_str::<serde_json::Value>(&t).ok());
    let fmt_section = |name: &str, vals: Vec<(String, f64)>| {
        let body = vals
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {v:.1}"))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("  \"{name}\": {{\n{body}\n  }}")
    };
    let mine: Vec<(String, f64)> = measured
        .iter()
        .map(|(k, v)| ((*k).to_string(), *v))
        .collect();
    let theirs: Vec<(String, f64)> = NAMES
        .into_iter()
        .map(|name| {
            let v = existing
                .as_ref()
                .and_then(|e| e[other][name].as_f64())
                .unwrap_or(0.0);
            (name.to_string(), v)
        })
        .collect();
    // Keep "full" first for a stable file layout.
    let (first, second) = if section == "full" {
        (fmt_section("full", mine), fmt_section("quick", theirs))
    } else {
        (fmt_section("full", theirs), fmt_section("quick", mine))
    };
    let text = format!("{{\n{first},\n{second}\n}}\n");
    std::fs::write(path, &text).expect("baseline is writable");
    println!("wrote {}", path.display());
}
