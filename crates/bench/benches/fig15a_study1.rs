//! Figure 15a — sensitivity study 1: ADS1 minimizes compute + network
//! cost under a minimum compression-speed SLO.
//!
//! Paper: "Assuming that the minimum compression speed requirement as
//! 200MB/s, we observed that Zstd level-4 showed the lowest total cost,
//! which is lower than 73% compared with the worst configuration (LZ4
//! with level 10)."

use benchkit::{print_table, write_artifact, Scale};
use compopt::studies::{study1_ads1, StudyScale};

fn main() {
    let scale = Scale::from_env();
    let study_scale = scale.pick(StudyScale::full(), StudyScale::quick());
    // The paper's SLO is 200 MB/s on production hardware; absolute
    // speeds depend on the build machine, so report both the paper SLO
    // and a machine-relative one (median measured speed).
    let unconstrained = study1_ads1(&study_scale, 0.0);
    let mut speeds: Vec<f64> = unconstrained.rows.iter().map(|r| r.compress_mbps).collect();
    speeds.sort_by(f64::total_cmp);
    let median_speed = speeds[speeds.len() / 2];
    let slo = if speeds.iter().any(|&s| s >= 200.0) {
        200.0
    } else {
        median_speed
    };
    let result = study1_ads1(&study_scale, slo);

    let table: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|e| {
            vec![
                e.label.clone(),
                format!("{:.2}", e.ratio),
                format!("{:.1}", e.compress_mbps),
                format!("{:.3e}", e.total_cost),
                if e.feasible {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    print_table(
        &format!("Figure 15a: ADS1 cost (SLO: comp speed >= {slo:.0} MB/s)"),
        &[
            "config",
            "ratio",
            "comp MB/s",
            "compute+network cost",
            "feasible",
        ],
        &table,
    );
    println!("\nbest feasible: {:?}", result.best);
    println!("worst: {:?}", result.worst);
    if let Some(s) = result.saving_vs_worst {
        println!(
            "saving vs worst: {:.0}% (paper: 73% with zstd level-4 winning)",
            s * 100.0
        );
    }
    write_artifact(
        "fig15a_study1",
        &compopt::report::to_json_lines(&result.rows),
    );
}
