//! Figure 3: zstdx compression vs decompression cycle split per
//! category plus the fleet-wide row.

use benchkit::{print_table, write_artifact, Scale};
use fleet::{profile_fleet, ProfileConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scope: String,
    compression_pct: f64,
    decompression_pct: f64,
}

fn main() {
    let scale = Scale::from_env();
    let profile = profile_fleet(&ProfileConfig {
        work_units: scale.pick(10, 3),
        seed: 31,
        stage_deadline_nanos: 0,
    });
    let rows: Vec<Row> = fleet::agg::comp_decomp_split(&profile)
        .into_iter()
        .map(|(scope, comp)| Row {
            scope,
            compression_pct: comp * 100.0,
            decompression_pct: (1.0 - comp) * 100.0,
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scope.clone(),
                format!("{:.1}%", r.compression_pct),
                format!("{:.1}%", r.decompression_pct),
            ]
        })
        .collect();
    print_table(
        "Figure 3: compression/decompression split",
        &["scope", "compression", "decompression"],
        &table,
    );
    // Call-count context the paper highlights.
    let (c, d) = profile.observations.iter().fold((0u64, 0u64), |(c, d), o| {
        (c + o.comp_calls, d + o.decomp_calls)
    });
    println!("\ncall counts: {c} compressions vs {d} decompressions");
    write_artifact(
        "fig03_comp_decomp_split",
        &compopt::report::to_json_lines(&rows),
    );
}
