//! Microbenchmark for the multi-stream entropy hot loops: isolates the
//! 4-stream Huffman literal decode and the 4-state interleaved FSE
//! decode from the codec wrappers, so reader/loop changes can be
//! attributed before they show up (diluted) in `decode_guard`.

use std::time::Instant;

use benchkit::{print_table, Scale};
use entropy::fse::FseTable;
use entropy::hist::{byte_histogram, normalize_counts, symbol_histogram};
use entropy::huffman::HuffmanTable;

fn skewed_bytes(n: usize, alphabet: u32, seed: u32) -> Vec<u8> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            ((x >> 16) % alphabet) as u8
        })
        .collect()
}

fn mbps(bytes: usize, iters: usize, f: impl Fn()) -> f64 {
    f(); // warm
    let mut rounds: Vec<f64> = (0..7)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            bytes as f64 * iters as f64 / t0.elapsed().as_secs_f64() / 1e6
        })
        .collect();
    rounds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    rounds[rounds.len() / 2]
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(4 << 20, 512 << 10);
    let iters = scale.pick(20, 5);
    let data = skewed_bytes(n, 13, 0x2545_f491);

    let freqs = byte_histogram(&data);
    let table = HuffmanTable::build(&freqs, 11).expect("multi-symbol alphabet");
    let single = table.encode(&data);
    let quad = table.encode_4stream(&data);
    let quad_refs = [
        quad[0].as_slice(),
        quad[1].as_slice(),
        quad[2].as_slice(),
        quad[3].as_slice(),
    ];

    let mut rows = Vec::new();
    let h1 = mbps(n, iters, || {
        std::hint::black_box(table.decode_fast(&single, data.len()).unwrap());
    });
    rows.push(vec![
        "huffman decode_fast (1 stream)".into(),
        format!("{h1:.1}"),
    ]);
    let h4 = mbps(n, iters, || {
        std::hint::black_box(table.decode_4stream_fast(quad_refs, data.len()).unwrap());
    });
    rows.push(vec![
        "huffman decode_4stream_fast".into(),
        format!("{h4:.1}"),
    ]);

    // FSE over a sequence-code-shaped alphabet.
    let symbols: Vec<u16> = data.iter().map(|&b| (b % 24) as u16).collect();
    let hist = symbol_histogram(&symbols, 24);
    let norm = normalize_counts(&hist, 9).expect("normalizable");
    let fse = FseTable::from_normalized(&norm, 9).expect("valid table");
    let enc1 = fse.encode(&symbols);
    let enc4 = fse.encode_4x(&symbols);
    let f1 = mbps(n, iters.min(8), || {
        std::hint::black_box(fse.decode(&enc1, symbols.len()).unwrap());
    });
    rows.push(vec!["fse decode (2-state)".into(), format!("{f1:.1}")]);
    let f4 = mbps(n, iters.min(8), || {
        std::hint::black_box(fse.decode_4x(&enc4, symbols.len()).unwrap());
    });
    rows.push(vec!["fse decode_4x (4-state)".into(), format!("{f4:.1}")]);

    print_table(
        &format!("multi-stream entropy hot loops ({n} bytes)"),
        &["loop", "MB/s"],
        &rows,
    );
}
