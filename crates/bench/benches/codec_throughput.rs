//! Criterion throughput benches: compression and decompression speed of
//! the three codecs across representative levels and data classes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_codecs(c: &mut Criterion) {
    let data = corpus::silesia::generate(corpus::silesia::FileClass::Database, 256 << 10, 3);

    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for (algo, levels) in [
        (codecs::Algorithm::Zstdx, &[1, 3, 9][..]),
        (codecs::Algorithm::Lz4x, &[1, 6][..]),
        (codecs::Algorithm::Zlibx, &[1, 6][..]),
    ] {
        for &level in levels {
            let comp = algo.compressor(level);
            g.bench_with_input(BenchmarkId::new(algo.name(), level), &data, |b, data| {
                b.iter(|| comp.compress(data))
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group("decompress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for algo in codecs::Algorithm::ALL {
        let comp = algo.compressor(3);
        let frame = comp.compress(&data);
        g.bench_with_input(BenchmarkId::new(algo.name(), 3), &frame, |b, frame| {
            b.iter(|| comp.decompress(frame).expect("own frame"))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_codecs
}
criterion_main!(benches);
