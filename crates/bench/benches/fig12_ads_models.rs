//! Figure 12: ADS1 model requests — ratio and speed across zstdx levels
//! −5..9 for models A/B/C.
//!
//! Paper: "higher compression ratios are achieved when compressing
//! requests with more sparse embeddings due to the numerous zeros in
//! the data... each model could use different compression
//! configurations" (§IV-D).

use benchkit::{print_table, write_artifact, Scale};
use codecs::measure;
use corpus::mlreq::{generate_requests, Model};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    level: i32,
    ratio: f64,
    compress_mbps: f64,
}

fn main() {
    let scale = Scale::from_env();
    let levels: Vec<i32> = scale.pick((-5..=9).collect(), vec![-5, -3, -1, 1, 3, 5, 7, 9]);
    let n_reqs = scale.pick(6, 2);

    let mut rows = Vec::new();
    for model in Model::ALL {
        let reqs = generate_requests(model, n_reqs, 77);
        let refs: Vec<&[u8]> = reqs.iter().map(|v| v.as_slice()).collect();
        for &level in &levels {
            let c = codecs::Algorithm::Zstdx.compressor(level);
            let m = measure(c.as_ref(), &refs);
            rows.push(Row {
                model: model.to_string(),
                level,
                ratio: m.ratio(),
                compress_mbps: m.compress_mbps(),
            });
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.level.to_string(),
                format!("{:.2}", r.ratio),
                format!("{:.1}", r.compress_mbps),
            ]
        })
        .collect();
    print_table(
        "Figure 12: ADS1 model variance",
        &["model", "level", "ratio", "comp MB/s"],
        &table,
    );
    for model in Model::ALL {
        let best = rows
            .iter()
            .filter(|r| r.model == model.to_string())
            .map(|r| r.ratio)
            .fold(f64::MIN, f64::max);
        println!("{model}: best ratio {best:.2}");
    }
    write_artifact("fig12_ads_models", &compopt::report::to_json_lines(&rows));
}
