//! Figure 6: compute cycles (%) used by zstdx for the Table I services.
//!
//! Paper: "the compute cycles spent for compression vary dramatically
//! across eight services (from 1.7% to 30.5%)" (§IV-A).

use benchkit::{print_table, write_artifact, Scale};
use fleet::{profile_fleet, ProfileConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    service: String,
    zstd_cycles_pct: f64,
}

fn main() {
    let scale = Scale::from_env();
    let profile = profile_fleet(&ProfileConfig {
        work_units: scale.pick(10, 3),
        seed: 34,
        stage_deadline_nanos: 0,
    });
    let rows: Vec<Row> = fleet::agg::service_zstd_cycles(&profile)
        .into_iter()
        .map(|(s, f)| Row {
            service: s.to_string(),
            zstd_cycles_pct: f * 100.0,
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.service.clone(), format!("{:.1}%", r.zstd_cycles_pct)])
        .collect();
    print_table(
        "Figure 6: zstdx cycles by service",
        &["service", "zstd cycles"],
        &table,
    );
    write_artifact(
        "fig06_service_cycles",
        &compopt::report::to_json_lines(&rows),
    );
}
