//! Figure 16 — sensitivity study 3: CompSim match-window sweep for a
//! simulated accelerator (γ = 10, EIA pricing) on ADS1 and KVSTORE1.
//!
//! Paper: "the normalized cost reaches the plateau around 2^21 B and
//! 2^16 B for ADS1 and KVSTORE1, respectively". Our synthetic ADS1
//! requests are ~2^17–2^18 B, so the ADS1 plateau lands where the data
//! (not the paper's larger production requests) caps the useful window;
//! the KVSTORE1 plateau matches at its 64 KiB block size.

use benchkit::{print_table, write_artifact, Scale};
use compopt::studies::{study3_window_sweep, StudyScale};

fn main() {
    let scale = Scale::from_env();
    let study_scale = scale.pick(StudyScale::full(), StudyScale::quick());
    let (ads, kv) = study3_window_sweep(&study_scale, 10.0);

    for (name, rows) in [("ADS1", &ads), ("KVSTORE1", &kv)] {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("2^{}", r.window_log),
                    format!("{:.2}", r.ratio),
                    format!("{:.3}", r.normalized),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 16: {name} window sweep (CompSim, γ=10)"),
            &["window", "ratio", "normalized cost"],
            &table,
        );
        // Find the plateau: first window within 1% of the final cost.
        let last = rows.last().unwrap().normalized;
        let plateau = rows
            .iter()
            .find(|r| (r.normalized - last).abs() / last < 0.01)
            .unwrap();
        println!("{name} plateau at window 2^{}", plateau.window_log);
    }
    write_artifact("fig16_study3_ads1", &compopt::report::to_json_lines(&ads));
    write_artifact(
        "fig16_study3_kvstore1",
        &compopt::report::to_json_lines(&kv),
    );
}
