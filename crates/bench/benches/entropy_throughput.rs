//! Criterion throughput benches: the entropy substrates (Huffman, FSE)
//! in isolation — the "entropy encoding stage" axis of the paper's
//! trade-off discussion.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use entropy::fse::FseTable;
use entropy::hist::byte_histogram;
use entropy::huffman::HuffmanTable;

fn bench_entropy(c: &mut Criterion) {
    let data = corpus::silesia::generate(corpus::silesia::FileClass::Text, 128 << 10, 4);
    let freqs = byte_histogram(&data);

    let mut g = c.benchmark_group("huffman");
    g.throughput(Throughput::Bytes(data.len() as u64));
    let table = HuffmanTable::build(&freqs, 11).expect("text has many symbols");
    let encoded = table.encode(&data);
    g.bench_function("encode", |b| b.iter(|| table.encode(&data)));
    g.bench_function("decode", |b| {
        b.iter(|| table.decode(&encoded, data.len()).unwrap())
    });
    g.finish();

    // FSE over a sequence-code-like alphabet.
    let symbols: Vec<u16> = data.iter().map(|&b| (b % 36) as u16).collect();
    let mut hist = vec![0u32; 36];
    for &s in &symbols {
        hist[s as usize] += 1;
    }
    let fse = FseTable::from_frequencies(&hist, 9, symbols.len()).unwrap();
    let encoded = fse.encode(&symbols);
    let mut g = c.benchmark_group("fse");
    g.throughput(Throughput::Elements(symbols.len() as u64));
    g.bench_function("encode", |b| b.iter(|| fse.encode(&symbols)));
    g.bench_function("decode", |b| {
        b.iter(|| fse.decode(&encoded, symbols.len()).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_entropy
}
criterion_main!(benches);
