//! Figure 5: average compression input size across services.
//!
//! Paper: "Different use cases of compression pass vastly different
//! data sizes to the compressor" (§III-F).

use benchkit::{fmt_bytes, print_table, write_artifact, Scale};
use fleet::{profile_fleet, ProfileConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    service: String,
    avg_input_bytes: f64,
}

fn main() {
    let scale = Scale::from_env();
    let profile = profile_fleet(&ProfileConfig {
        work_units: scale.pick(10, 3),
        seed: 33,
        stage_deadline_nanos: 0,
    });
    let mut rows: Vec<Row> = fleet::agg::service_block_sizes(&profile)
        .into_iter()
        .map(|(s, b)| Row {
            service: s.to_string(),
            avg_input_bytes: b,
        })
        .collect();
    rows.sort_by(|a, b| b.avg_input_bytes.total_cmp(&a.avg_input_bytes));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.service.clone(), fmt_bytes(r.avg_input_bytes)])
        .collect();
    print_table(
        "Figure 5: average input size per service",
        &["service", "avg size"],
        &table,
    );
    let max = rows.first().map(|r| r.avg_input_bytes).unwrap_or(0.0);
    let min = rows.last().map(|r| r.avg_input_bytes).unwrap_or(1.0);
    println!(
        "\nspread: {:.0}x between largest and smallest",
        max / min.max(1.0)
    );
    write_artifact("fig05_block_sizes", &compopt::report::to_json_lines(&rows));
}
