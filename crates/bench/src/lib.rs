//! Shared helpers for the figure benches.
//!
//! Every table and figure in the paper's evaluation has a `harness =
//! false` bench target in this crate (`fig01`…`fig16`, `table1`) that
//! regenerates its rows. `cargo bench -p datacomp-bench` runs them all;
//! each prints a human-readable table and writes JSON lines under
//! `target/figures/` for EXPERIMENTS.md.
//!
//! Set `DATACOMP_QUICK=1` to run reduced workloads (used by CI and the
//! integration tests). Set `DATACOMP_TELEMETRY=1` to also write each
//! bench's telemetry snapshot (codec counters, stage spans, latency
//! histograms) next to its artifact as `<name>.telemetry.json`.

use std::io::Write;
use std::path::PathBuf;

/// Workload scale for the figure benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full sizes (default for `cargo bench`).
    Full,
    /// Reduced sizes (set `DATACOMP_QUICK=1`).
    Quick,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        if std::env::var_os("DATACOMP_QUICK").is_some_and(|v| v != "0") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Picks `full` or `quick` by scale.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// Prints a titled ASCII table with aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Writes JSON-lines artifact for a figure under `target/figures/`.
///
/// Errors are reported to stderr but never fail the bench: artifacts
/// are a convenience, the printed table is the deliverable.
pub fn write_artifact(name: &str, json_lines: &str) {
    let dir = artifact_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warn: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.jsonl"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(json_lines.as_bytes()) {
                eprintln!("warn: cannot write {}: {e}", path.display());
            } else {
                println!("[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warn: cannot create {}: {e}", path.display()),
    }
    if std::env::var_os("DATACOMP_TELEMETRY").is_some_and(|v| v != "0") {
        let tel_path = dir.join(format!("{name}.telemetry.json"));
        let json = telemetry::export::to_json(&telemetry::snapshot());
        match std::fs::write(&tel_path, json) {
            Ok(()) => println!("[artifact] {}", tel_path.display()),
            Err(e) => eprintln!("warn: cannot write {}: {e}", tel_path.display()),
        }
    }
    if std::env::var_os("DATACOMP_TRACE").is_some_and(|v| v != "0") {
        let trace_path = dir.join(format!("{name}.trace.json"));
        let json = telemetry::chrome::to_chrome_json(&telemetry::global_tracer().drain());
        match std::fs::write(&trace_path, json) {
            Ok(()) => println!("[artifact] {}", trace_path.display()),
            Err(e) => eprintln!("warn: cannot write {}: {e}", trace_path.display()),
        }
    }
}

/// The artifact directory (`target/figures`).
pub fn artifact_dir() -> PathBuf {
    // CARGO_TARGET_DIR handling: fall back to ./target.
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("figures")
}

/// Formats bytes as a compact human unit.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1024.0 * 1024.0 {
        format!("{:.1}MB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1}KB", b / 1024.0)
    } else {
        format!("{b:.0}B")
    }
}

/// Shared implementation of Figures 8 and 9 (cache item size
/// distributions).
pub fn cache_sizes_figure(title: &str, artifact: &str, profile: &corpus::cache::CacheProfile) {
    use corpus::sizes::{log_bucket_fractions, percentile};
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        bucket: String,
        fraction: f64,
    }

    let scale = Scale::from_env();
    let items = corpus::cache::generate_items(profile, scale.pick(20_000, 2_000), 8);
    let sizes: Vec<usize> = items.iter().map(|i| i.data.len()).collect();
    let rows: Vec<Row> = log_bucket_fractions(&sizes)
        .into_iter()
        .map(|(bucket, fraction)| Row { bucket, fraction })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.bucket.clone(), format!("{:.1}%", r.fraction * 100.0)])
        .collect();
    print_table(title, &["size bucket", "items"], &table);
    println!(
        "\np50={}B p90={}B p99={}B (skew below 1KB with a long tail)",
        percentile(&sizes, 50.0),
        percentile(&sizes, 90.0),
        percentile(&sizes, 99.0)
    );
    write_artifact(artifact, &compopt::report::to_json_lines(&rows));
}

/// Shared implementation of Figures 10 and 11 (dictionary vs plain
/// speed/ratio curves over zstdx levels 1, 3, 6, 11).
pub fn cache_dict_figure(title: &str, artifact: &str, profile: &corpus::cache::CacheProfile) {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        level: i32,
        mode: &'static str,
        ratio: f64,
        compress_mbps: f64,
    }

    let scale = Scale::from_env();
    let items = corpus::cache::generate_items(profile, scale.pick(3_000, 400), 9);
    let split = items.len() / 2;
    // Train per-type dictionaries, as the paper describes ("one
    // dictionary per data type").
    let mut dicts: std::collections::HashMap<u32, codecs::Dictionary> = Default::default();
    for type_id in 0..profile.n_types as u32 {
        let train: Vec<&[u8]> = items[..split]
            .iter()
            .filter(|i| i.type_id == type_id)
            .map(|i| i.data.as_slice())
            .collect();
        if !train.is_empty() {
            dicts.insert(type_id, codecs::dict::train(&train, 16 * 1024, type_id));
        }
    }
    let test = &items[split..];

    let mut rows = Vec::new();
    for level in [1, 3, 6, 11] {
        let z = codecs::zstdx::Zstdx::new(level);
        for dict_mode in [false, true] {
            let mut m = codecs::CompressionMetrics::default();
            for item in test {
                let dict = dict_mode.then(|| &dicts[&item.type_id]);
                let single = [item.data.as_slice()];
                let one = codecs::metrics::measure_with_dict(&z, &single, dict);
                m.accumulate(&one);
            }
            rows.push(Row {
                level,
                mode: if dict_mode { "dict" } else { "plain" },
                ratio: m.ratio(),
                compress_mbps: m.compress_mbps(),
            });
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.level.to_string(),
                r.mode.to_string(),
                format!("{:.2}", r.ratio),
                format!("{:.1}", r.compress_mbps),
            ]
        })
        .collect();
    print_table(title, &["level", "mode", "ratio", "comp MB/s"], &table);
    // Paper's claim: dict beats plain at every level.
    for level in [1, 3, 6, 11] {
        let plain = rows
            .iter()
            .find(|r| r.level == level && r.mode == "plain")
            .unwrap();
        let dict = rows
            .iter()
            .find(|r| r.level == level && r.mode == "dict")
            .unwrap();
        println!(
            "level {level}: dict ratio {:.2} vs plain {:.2} ({:.0}% better)",
            dict.ratio,
            plain.ratio,
            (dict.ratio / plain.ratio - 1.0) * 100.0
        );
    }
    write_artifact(artifact, &compopt::report::to_json_lines(&rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(10, 2), 10);
        assert_eq!(Scale::Quick.pick(10, 2), 2);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512.0), "512B");
        assert_eq!(fmt_bytes(2048.0), "2.0KB");
        assert_eq!(fmt_bytes(3.0 * 1024.0 * 1024.0), "3.0MB");
    }
}
