//! Entropy-coding substrate for the datacomp codecs.
//!
//! This crate implements, from scratch, the two entropy stages that the
//! paper's compression pipeline depends on (Section II-B of the paper):
//!
//! * [`huffman`] — canonical, length-limited Huffman coding, used by the
//!   `zstdx` codec for its literals section and by `zlibx` for its whole
//!   encoded stream.
//! * [`fse`] — Finite State Entropy (tabled asymmetric numeral systems),
//!   used by `zstdx` for its sequences section.
//!
//! Supporting modules: [`bitio`] (LSB-first bit streams, including the
//! reverse-read stream FSE requires) and [`hist`] (histograms and
//! power-of-two count normalization).
//!
//! # Example
//!
//! ```
//! use entropy::huffman::HuffmanTable;
//!
//! let data = b"abracadabra abracadabra abracadabra";
//! let mut freqs = [0u32; 256];
//! for &b in data { freqs[b as usize] += 1; }
//! let table = HuffmanTable::build(&freqs, 11).expect("more than one symbol");
//! let encoded = table.encode(data);
//! let decoded = table.decode(&encoded, data.len()).unwrap();
//! assert_eq!(decoded, data);
//! ```

#![warn(missing_docs)]

pub mod bitio;
pub mod fse;
pub mod hist;
pub mod huffman;

/// Errors produced while decoding an entropy-coded stream.
///
/// All decode paths in this crate are total: malformed input yields an
/// `Error`, never a panic or out-of-bounds access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The bitstream ended before the decoder finished.
    UnexpectedEof,
    /// A table description (Huffman lengths / FSE normalized counts) is
    /// internally inconsistent.
    CorruptTable(&'static str),
    /// The encoded payload is inconsistent with its table or length fields.
    CorruptData(&'static str),
    /// A parameter is outside the supported range.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of bitstream"),
            Error::CorruptTable(msg) => write!(f, "corrupt entropy table: {msg}"),
            Error::CorruptData(msg) => write!(f, "corrupt entropy data: {msg}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias for entropy operations.
pub type Result<T> = std::result::Result<T, Error>;
