//! Finite State Entropy — tabled asymmetric numeral systems (tANS).
//!
//! This is the entropy scheme the paper credits for Zstd's compression
//! ratio edge over LZ4 (Section II-B: "compressing the sequences with
//! Finite State Entropy"). The implementation follows the classic tANS
//! construction:
//!
//! * States live in `[L, 2L)` where `L = 1 << table_log`.
//! * Symbols are spread over the `L` table slots with a coprime step.
//! * Decoding maps a state to a symbol plus a refill (`base + read(nb)`),
//!   encoding is the exact inverse (push state down into
//!   `[count, 2*count)` by emitting low bits, then jump via the encode
//!   table).
//! * The encoder processes symbols in **reverse** and the decoder reads
//!   the bitstream back-to-front via
//!   [`ReverseBitReader`](crate::bitio::ReverseBitReader), exactly like
//!   the reference FSE.
//!
//! Multiple streams (zstdx uses three: literal-length, match-length,
//! offset codes) can interleave into one bitstream by mirroring
//! encode/decode operation order; [`FseEncoder`]/[`FseDecoder`] expose
//! the per-operation primitives that make this possible.
//!
//! # Example
//!
//! ```
//! use entropy::fse::FseTable;
//! use entropy::hist::{normalize_counts, symbol_histogram};
//!
//! let symbols: Vec<u16> = (0..1000).map(|i| (i % 7) as u16 / 2).collect();
//! let hist = symbol_histogram(&symbols, 4);
//! let norm = normalize_counts(&hist, 6).unwrap();
//! let table = FseTable::from_normalized(&norm, 6).unwrap();
//! let encoded = table.encode(&symbols);
//! assert_eq!(table.decode(&encoded, symbols.len()).unwrap(), symbols);
//! ```

use crate::bitio::{BitWriter, RevBitSrc, ReverseBitReader, ReverseBitReaderFast};
use crate::hist::{normalize_counts, optimal_table_log};
use crate::{Error, Result};

/// Maximum supported `table_log` (matches the normalization bound).
pub const MAX_TABLE_LOG: u32 = 15;

/// A built FSE coding table (encode and decode directions).
#[derive(Debug, Clone)]
pub struct FseTable {
    table_log: u32,
    /// Normalized counts (sum == `1 << table_log`).
    norm: Vec<u32>,
    /// Decode: slot -> symbol.
    dec_symbol: Vec<u16>,
    /// Decode: slot -> number of refill bits.
    dec_nbits: Vec<u8>,
    /// Decode: slot -> next-state base (`x' << nb`, already in `[L, 2L)`).
    dec_base: Vec<u32>,
    /// Encode: `enc_state[cum[s] + (sub - norm[s])]` -> next state.
    enc_state: Vec<u32>,
    /// Per-symbol offset into `enc_state`.
    cum_start: Vec<u32>,
}

impl FseTable {
    /// Builds a table from normalized counts summing to `1 << table_log`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `table_log` is out of range
    /// or the counts do not sum to the table size.
    // indexing_slicing: table construction over arrays we just sized.
    // `symbol_at`/`dec_*`/`enc_state` hold `size` slots and `pos`/`u`
    // stay `< size` (`pos` is masked, `u` ranges over `0..size`);
    // `next_val`/`cum_start` are sized from `norm` and indexed by
    // symbols drawn from `norm`; the `enc_state` index is
    // `cum[s] + (xp - norm[s])` with `xp` in `[norm[s], 2*norm[s])`,
    // which by construction of the cumulative sums is `< size`.
    #[allow(clippy::indexing_slicing)]
    pub fn from_normalized(norm: &[u32], table_log: u32) -> Result<Self> {
        if !(5..=MAX_TABLE_LOG).contains(&table_log) {
            return Err(Error::InvalidParameter("table_log out of range"));
        }
        let size = 1usize << table_log;
        let total: u64 = norm.iter().map(|&c| c as u64).sum();
        if total != size as u64 {
            return Err(Error::InvalidParameter(
                "normalized counts must sum to table size",
            ));
        }
        if norm.len() > u16::MAX as usize {
            return Err(Error::InvalidParameter("alphabet too large"));
        }

        // Spread symbols over the slots with an odd (hence coprime) step,
        // same shape as FSE_buildCTable's spread loop.
        let mask = size - 1;
        let step = (size >> 1) + (size >> 3) + 3;
        let mut symbol_at = vec![0u16; size];
        let mut pos = 0usize;
        for (s, &c) in norm.iter().enumerate() {
            for _ in 0..c {
                symbol_at[pos] = s as u16;
                pos = (pos + step) & mask;
            }
        }
        debug_assert_eq!(pos, 0, "coprime step must cycle back to zero");

        let mut cum_start = vec![0u32; norm.len() + 1];
        for (s, &c) in norm.iter().enumerate() {
            cum_start[s + 1] = cum_start[s] + c;
        }

        let mut dec_symbol = vec![0u16; size];
        let mut dec_nbits = vec![0u8; size];
        let mut dec_base = vec![0u32; size];
        let mut enc_state = vec![0u32; size];
        // Occurrences of each symbol, visited in increasing slot order,
        // take the values norm[s], norm[s]+1, ..., 2*norm[s]-1.
        let mut next_val: Vec<u32> = norm.to_vec();
        for u in 0..size {
            let s = symbol_at[u] as usize;
            let xp = next_val[s];
            next_val[s] += 1;
            let nb = table_log - floor_log2(xp);
            dec_symbol[u] = s as u16;
            dec_nbits[u] = nb as u8;
            dec_base[u] = xp << nb;
            enc_state[(cum_start[s] + (xp - norm[s])) as usize] = (size + u) as u32;
        }

        Ok(Self {
            table_log,
            norm: norm.to_vec(),
            dec_symbol,
            dec_nbits,
            dec_base,
            enc_state,
            cum_start: cum_start[..norm.len()].to_vec(),
        })
    }

    /// Builds a table directly from raw symbol frequencies, choosing a
    /// table log via [`optimal_table_log`] capped at `max_log`.
    ///
    /// # Errors
    ///
    /// Propagates normalization failures (empty histogram, oversized
    /// alphabet).
    pub fn from_frequencies(freqs: &[u32], max_log: u32, n_symbols: usize) -> Result<Self> {
        let card = crate::hist::cardinality(freqs);
        let log = optimal_table_log(max_log, n_symbols, card);
        let norm = normalize_counts(freqs, log)?;
        Self::from_normalized(&norm, log)
    }

    /// The table log (table size is `1 << table_log`).
    pub fn table_log(&self) -> u32 {
        self.table_log
    }

    /// Normalized counts this table was built from.
    pub fn normalized_counts(&self) -> &[u32] {
        &self.norm
    }

    /// Estimated cost in bits of coding `sym` once (`log2(L / count)`).
    // indexing_slicing: panicking on an out-of-alphabet symbol is the
    // encode-side contract (same as `encode`).
    #[allow(clippy::indexing_slicing)]
    pub fn symbol_cost_bits(&self, sym: u16) -> f64 {
        let c = self.norm[sym as usize];
        if c == 0 {
            return f64::INFINITY;
        }
        self.table_log as f64 - (c as f64).log2()
    }

    /// Encodes `symbols` into a standalone sentinel-terminated buffer.
    ///
    /// # Panics
    ///
    /// Panics if any symbol has a zero normalized count (it cannot be
    /// represented by this table).
    pub fn encode(&self, symbols: &[u16]) -> Vec<u8> {
        let mut w = BitWriter::with_capacity(symbols.len() / 2 + 8);
        let mut enc = FseEncoder::new(self);
        for &s in symbols.iter().rev() {
            enc.encode(&mut w, s);
        }
        enc.finish(&mut w);
        w.finish_with_sentinel()
    }

    /// Decodes exactly `n` symbols from a buffer produced by
    /// [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the stream is truncated, the sentinel is
    /// missing, or the final state does not return to its initial value
    /// (corruption check).
    pub fn decode(&self, buf: &[u8], n: usize) -> Result<Vec<u16>> {
        let mut r = ReverseBitReader::from_sentinel(buf)?;
        self.decode_with(&mut r, n)
    }

    /// [`Self::decode`] through the word-refilling
    /// [`ReverseBitReaderFast`]. Same bytes in, same symbols (or same
    /// typed error) out.
    ///
    /// # Errors
    ///
    /// Identical to [`Self::decode`].
    pub fn decode_fast(&self, buf: &[u8], n: usize) -> Result<Vec<u16>> {
        let mut r = ReverseBitReaderFast::from_sentinel(buf)?;
        self.decode_with(&mut r, n)
    }

    /// Single-state decode loop shared by the reference and fast readers.
    fn decode_with<R: RevBitSrc>(&self, r: &mut R, n: usize) -> Result<Vec<u16>> {
        let mut dec = FseDecoder::init(self, r)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(dec.peek_symbol());
            dec.update(r)?;
        }
        if !dec.at_initial_state() || r.remaining() != 0 {
            return Err(Error::CorruptData("fse stream did not terminate cleanly"));
        }
        Ok(out)
    }

    /// Encodes `symbols` with two interleaved states over this table into
    /// a standalone sentinel-terminated buffer. Even indices flow through
    /// state 0, odd through state 1; decode with [`Self::decode_2x`].
    /// Two states halve the serial state-update dependency chain that
    /// bounds single-state tANS throughput.
    ///
    /// # Panics
    ///
    /// Panics if any symbol has a zero normalized count.
    // indexing_slicing: `i` ranges over `0..symbols.len()`.
    #[allow(clippy::indexing_slicing)]
    pub fn encode_2x(&self, symbols: &[u16]) -> Vec<u8> {
        let mut w = BitWriter::with_capacity(symbols.len() / 2 + 8);
        let mut e0 = FseEncoder::new(self);
        let mut e1 = FseEncoder::new(self);
        // Mirror of decode_2x's read order, reversed: the decoder reads
        // init0, init1, then items 0, 1, 2, ... alternating states, so we
        // write item n-1 first, item 0 last, then state 1, then state 0.
        for i in (0..symbols.len()).rev() {
            if i % 2 == 0 {
                e0.encode(&mut w, symbols[i]);
            } else {
                e1.encode(&mut w, symbols[i]);
            }
        }
        e1.finish(&mut w);
        e0.finish(&mut w);
        w.finish_with_sentinel()
    }

    /// Decodes exactly `n` symbols from a buffer produced by
    /// [`Self::encode_2x`], alternating two decoder states so consecutive
    /// state updates are independent.
    ///
    /// # Errors
    ///
    /// Returns a decode error if the stream is truncated, the sentinel is
    /// missing, or either final state fails the integrity check.
    pub fn decode_2x(&self, buf: &[u8], n: usize) -> Result<Vec<u16>> {
        let mut r = ReverseBitReaderFast::from_sentinel(buf)?;
        let mut d0 = FseDecoder::init(self, &mut r)?;
        let mut d1 = FseDecoder::init(self, &mut r)?;
        let mut out = Vec::with_capacity(n);
        let mut i = 0usize;
        while i + 2 <= n {
            out.push(d0.peek_symbol());
            d0.update(&mut r)?;
            out.push(d1.peek_symbol());
            d1.update(&mut r)?;
            i += 2;
        }
        if i < n {
            out.push(d0.peek_symbol());
            d0.update(&mut r)?;
        }
        if !d0.at_initial_state() || !d1.at_initial_state() || r.remaining() != 0 {
            return Err(Error::CorruptData("fse stream did not terminate cleanly"));
        }
        Ok(out)
    }

    /// Encodes `symbols` with four interleaved states over this table
    /// into a standalone sentinel-terminated buffer. Symbol `i` flows
    /// through state `i % 4`; decode with [`Self::decode_4x`]. Four
    /// states keep four independent dependency chains in flight per
    /// loop iteration — the tANS analogue of 4-stream Huffman literals.
    ///
    /// # Panics
    ///
    /// Panics if any symbol has a zero normalized count.
    // indexing_slicing: `i` ranges over `0..symbols.len()`.
    #[allow(clippy::indexing_slicing)]
    pub fn encode_4x(&self, symbols: &[u16]) -> Vec<u8> {
        let mut w = BitWriter::with_capacity(symbols.len() / 2 + 8);
        let mut e0 = FseEncoder::new(self);
        let mut e1 = FseEncoder::new(self);
        let mut e2 = FseEncoder::new(self);
        let mut e3 = FseEncoder::new(self);
        // Mirror of decode_4x's read order, reversed: the decoder reads
        // init0..init3, then items 0, 1, 2, ... round-robin over the
        // four states, so we write item n-1 first and item 0 last, then
        // flush states 3, 2, 1, 0 (the decoder inits 0 first).
        for i in (0..symbols.len()).rev() {
            match i % 4 {
                0 => e0.encode(&mut w, symbols[i]),
                1 => e1.encode(&mut w, symbols[i]),
                2 => e2.encode(&mut w, symbols[i]),
                _ => e3.encode(&mut w, symbols[i]),
            }
        }
        e3.finish(&mut w);
        e2.finish(&mut w);
        e1.finish(&mut w);
        e0.finish(&mut w);
        w.finish_with_sentinel()
    }

    /// Decodes exactly `n` symbols from a buffer produced by
    /// [`Self::encode_4x`], rotating four decoder states so consecutive
    /// state updates are independent.
    ///
    /// # Errors
    ///
    /// Returns a decode error if the stream is truncated, the sentinel is
    /// missing, or any final state fails the integrity check.
    pub fn decode_4x(&self, buf: &[u8], n: usize) -> Result<Vec<u16>> {
        let mut r = ReverseBitReaderFast::from_sentinel(buf)?;
        self.decode_4x_with(&mut r, n)
    }

    /// [`Self::decode_4x`] through the byte-loop [`ReverseBitReader`] —
    /// the checked reference engine for differential testing.
    ///
    /// # Errors
    ///
    /// Identical to [`Self::decode_4x`].
    pub fn decode_4x_reference(&self, buf: &[u8], n: usize) -> Result<Vec<u16>> {
        let mut r = ReverseBitReader::from_sentinel(buf)?;
        self.decode_4x_with(&mut r, n)
    }

    /// Four-state decode loop shared by the reference and fast readers.
    #[deny(clippy::indexing_slicing)]
    fn decode_4x_with<R: RevBitSrc>(&self, r: &mut R, n: usize) -> Result<Vec<u16>> {
        let mut d0 = FseDecoder::init(self, r)?;
        let mut d1 = FseDecoder::init(self, r)?;
        let mut d2 = FseDecoder::init(self, r)?;
        let mut d3 = FseDecoder::init(self, r)?;
        let mut out = Vec::with_capacity(n);
        let mut i = 0usize;
        while i + 4 <= n {
            out.push(d0.peek_symbol());
            d0.update(r)?;
            out.push(d1.peek_symbol());
            d1.update(r)?;
            out.push(d2.peek_symbol());
            d2.update(r)?;
            out.push(d3.peek_symbol());
            d3.update(r)?;
            i += 4;
        }
        if i < n {
            out.push(d0.peek_symbol());
            d0.update(r)?;
            i += 1;
        }
        if i < n {
            out.push(d1.peek_symbol());
            d1.update(r)?;
            i += 1;
        }
        if i < n {
            out.push(d2.peek_symbol());
            d2.update(r)?;
        }
        let clean = d0.at_initial_state()
            && d1.at_initial_state()
            && d2.at_initial_state()
            && d3.at_initial_state();
        if !clean || r.remaining() != 0 {
            return Err(Error::CorruptData("fse stream did not terminate cleanly"));
        }
        Ok(out)
    }

    /// Serializes `table_log` + normalized counts into `out`.
    ///
    /// Layout: 1 byte table_log, 2 bytes alphabet length (LE), then each
    /// count in `table_log + 1` bits, LSB-first, sentinel-free (the byte
    /// length is implied by the alphabet length).
    pub fn write_description(&self, out: &mut Vec<u8>) {
        out.push(self.table_log as u8);
        let n = self.norm.len() as u16;
        out.extend_from_slice(&n.to_le_bytes());
        let mut w = BitWriter::new();
        for &c in &self.norm {
            w.write_bits(c as u64, self.table_log + 1);
        }
        let (bytes, _) = w.finish();
        out.extend_from_slice(&bytes);
    }

    /// Deserializes a description written by [`Self::write_description`].
    ///
    /// Returns the table and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptTable`] on truncation or counts that do not
    /// sum to the table size.
    // indexing_slicing: `buf[0]`/`buf[1]`/`buf[2]` sit behind the
    // explicit `buf.len() < 3` truncation check; the variable-length
    // payload uses checked `.get(..)`.
    #[allow(clippy::indexing_slicing)]
    pub fn read_description(buf: &[u8]) -> Result<(Self, usize)> {
        if buf.len() < 3 {
            return Err(Error::CorruptTable("fse description truncated"));
        }
        let table_log = buf[0] as u32;
        if !(5..=MAX_TABLE_LOG).contains(&table_log) {
            return Err(Error::CorruptTable("fse table_log out of range"));
        }
        let n = u16::from_le_bytes([buf[1], buf[2]]) as usize;
        let bits_needed = n * (table_log as usize + 1);
        let bytes_needed = bits_needed.div_ceil(8);
        let payload = buf
            .get(3..3 + bytes_needed)
            .ok_or(Error::CorruptTable("fse description truncated"))?;
        let mut r = crate::bitio::BitReader::new(payload, bits_needed);
        let mut norm = Vec::with_capacity(n);
        for _ in 0..n {
            norm.push(r.read_bits(table_log + 1)? as u32);
        }
        let table = Self::from_normalized(&norm, table_log)
            .map_err(|_| Error::CorruptTable("fse counts do not sum to table size"))?;
        Ok((table, 3 + bytes_needed))
    }
}

/// Streaming FSE encoder: one state over one table, writing into a shared
/// [`BitWriter`]. Symbols must be fed in **reverse** order.
#[derive(Debug, Clone)]
pub struct FseEncoder<'t> {
    table: &'t FseTable,
    state: u32,
}

impl<'t> FseEncoder<'t> {
    /// Starts a new encoder at the canonical initial state `L`.
    pub fn new(table: &'t FseTable) -> Self {
        Self {
            table,
            state: 1 << table.table_log,
        }
    }

    /// Encodes one symbol (reverse order!), emitting its refill bits.
    ///
    /// # Panics
    ///
    /// Panics if `sym` has a zero normalized count.
    // indexing_slicing: panicking on an out-of-alphabet symbol is the
    // documented encode-side contract; the `enc_state` index is
    // `cum[s] + (sub - norm)` with `sub` held in `[norm, 2*norm)` by the
    // preceding shift (debug-asserted), which is `< table size` by
    // construction of the cumulative sums.
    #[allow(clippy::indexing_slicing)]
    #[inline]
    pub fn encode(&mut self, w: &mut BitWriter, sym: u16) {
        let t = self.table;
        let norm = t.norm[sym as usize];
        assert!(norm > 0, "encoding symbol with zero probability");
        let k = floor_log2(norm);
        let mut nb = t.table_log - k;
        if (self.state >> nb) < norm {
            nb -= 1;
        }
        debug_assert!((self.state >> nb) >= norm && (self.state >> nb) < 2 * norm);
        w.write_bits((self.state & ((1 << nb) - 1)) as u64, nb);
        let sub = self.state >> nb;
        self.state = t.enc_state[(t.cum_start[sym as usize] + (sub - norm)) as usize];
    }

    /// Flushes the final state. Must be the last write of this encoder
    /// into the stream (per-encoder; interleaved encoders coordinate
    /// their flush order with the decoder's init order).
    pub fn finish(self, w: &mut BitWriter) {
        let l = 1u32 << self.table.table_log;
        w.write_bits((self.state - l) as u64, self.table.table_log);
    }
}

/// Streaming FSE decoder: mirror of [`FseEncoder`].
#[derive(Debug, Clone)]
pub struct FseDecoder<'t> {
    table: &'t FseTable,
    state: u32,
}

impl<'t> FseDecoder<'t> {
    /// Reads the initial state from the (reverse) stream.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if the stream is too short.
    pub fn init<R: RevBitSrc>(table: &'t FseTable, r: &mut R) -> Result<Self> {
        let raw = r.read_bits(table.table_log)? as u32;
        Ok(Self {
            table,
            state: (1 << table.table_log) + raw,
        })
    }

    /// The symbol encoded by the current state (no bits consumed).
    // indexing_slicing: the tANS state invariant keeps `state` in
    // `[L, 2L)` — `init` adds `raw < 2^table_log` to `L`, and `update`
    // produces `dec_base[u] + bits` where the table construction makes
    // that exactly a state in `[L, 2L)` — so `state - L` is always a
    // valid index into the `L`-sized decode tables. This is the hot
    // decode loop; a checked `.get()` here costs measurable throughput
    // (guarded by the decode_guard benchmark budget).
    #[allow(clippy::indexing_slicing)]
    #[inline]
    pub fn peek_symbol(&self) -> u16 {
        self.table.dec_symbol[(self.state - (1 << self.table.table_log)) as usize]
    }

    /// Advances the state by consuming this step's refill bits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] on a truncated stream.
    // indexing_slicing: same `state ∈ [L, 2L)` invariant as
    // `peek_symbol` — `state - L` indexes the `L`-sized decode tables.
    #[allow(clippy::indexing_slicing)]
    #[inline]
    pub fn update<R: RevBitSrc>(&mut self, r: &mut R) -> Result<()> {
        let u = (self.state - (1 << self.table.table_log)) as usize;
        let nb = self.table.dec_nbits[u] as u32;
        let bits = r.read_bits(nb)? as u32;
        self.state = self.table.dec_base[u] + bits;
        Ok(())
    }

    /// True when the state equals the encoder's canonical initial state —
    /// a cheap end-of-stream integrity check.
    pub fn at_initial_state(&self) -> bool {
        self.state == 1 << self.table.table_log
    }
}

#[inline]
fn floor_log2(v: u32) -> u32 {
    debug_assert!(v > 0);
    31 - v.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::symbol_histogram;

    fn build_for(symbols: &[u16], alphabet: usize, max_log: u32) -> FseTable {
        let hist = symbol_histogram(symbols, alphabet);
        FseTable::from_frequencies(&hist, max_log, symbols.len()).unwrap()
    }

    #[test]
    fn roundtrip_skewed() {
        let symbols: Vec<u16> = (0..5000u32)
            .map(|i| if i % 11 == 0 { 3 } else { (i % 3) as u16 })
            .collect();
        let t = build_for(&symbols, 8, 9);
        let buf = t.encode(&symbols);
        assert_eq!(t.decode(&buf, symbols.len()).unwrap(), symbols);
    }

    #[test]
    fn roundtrip_single_dominant_symbol_table() {
        // One symbol holding nearly the whole table.
        let mut symbols = vec![0u16; 4000];
        symbols[17] = 1;
        symbols[3999] = 1;
        let t = build_for(&symbols, 2, 9);
        let buf = t.encode(&symbols);
        assert_eq!(t.decode(&buf, symbols.len()).unwrap(), symbols);
    }

    #[test]
    fn roundtrip_uniform_alphabet() {
        let symbols: Vec<u16> = (0..4096u32).map(|i| (i % 53) as u16).collect();
        let t = build_for(&symbols, 53, 9);
        let buf = t.encode(&symbols);
        assert_eq!(t.decode(&buf, symbols.len()).unwrap(), symbols);
    }

    #[test]
    fn roundtrip_empty() {
        let symbols: Vec<u16> = vec![0, 1];
        let t = build_for(&symbols, 2, 6);
        let empty: Vec<u16> = Vec::new();
        let buf = t.encode(&empty);
        assert_eq!(t.decode(&buf, 0).unwrap(), empty);
    }

    #[test]
    fn compressed_size_tracks_entropy() {
        // Skewed distribution must code near its Shannon entropy.
        let symbols: Vec<u16> = (0..100_000u32)
            .map(|i| match i % 16 {
                0..=11 => 0u16,
                12..=14 => 1,
                _ => 2,
            })
            .collect();
        let hist = symbol_histogram(&symbols, 3);
        let h = crate::hist::shannon_entropy(&hist);
        let t = build_for(&symbols, 3, 11);
        let buf = t.encode(&symbols);
        let bits_per_sym = buf.len() as f64 * 8.0 / symbols.len() as f64;
        assert!(
            bits_per_sym < h + 0.1,
            "fse {bits_per_sym:.3} bits/sym vs entropy {h:.3}"
        );
    }

    #[test]
    fn fse_beats_fixed_width() {
        // 5-symbol alphabet with skew: fixed width needs 3 bits, FSE less.
        let symbols: Vec<u16> = (0..50_000u32)
            .map(|i| if i % 10 < 6 { 0 } else { (i % 5) as u16 })
            .collect();
        let t = build_for(&symbols, 5, 11);
        let buf = t.encode(&symbols);
        assert!((buf.len() as f64) < 3.0 * symbols.len() as f64 / 8.0);
    }

    #[test]
    fn description_roundtrip() {
        let symbols: Vec<u16> = (0..3000u32).map(|i| (i % 7) as u16).collect();
        let t = build_for(&symbols, 7, 8);
        let mut desc = Vec::new();
        t.write_description(&mut desc);
        desc.extend_from_slice(b"trailing"); // reader must not over-consume
        let (t2, consumed) = FseTable::read_description(&desc).unwrap();
        assert_eq!(consumed, desc.len() - 8);
        assert_eq!(t2.normalized_counts(), t.normalized_counts());
        let buf = t.encode(&symbols);
        assert_eq!(t2.decode(&buf, symbols.len()).unwrap(), symbols);
    }

    #[test]
    fn description_rejects_garbage() {
        assert!(FseTable::read_description(&[]).is_err());
        assert!(FseTable::read_description(&[99, 1, 0]).is_err());
        // Valid log but counts do not sum.
        let mut desc = vec![6u8, 2, 0];
        desc.extend_from_slice(&[0u8; 4]);
        assert!(FseTable::read_description(&desc).is_err());
    }

    #[test]
    fn decode_detects_truncation() {
        let symbols: Vec<u16> = (0..2000u32).map(|i| (i % 5) as u16).collect();
        let t = build_for(&symbols, 5, 9);
        let buf = t.encode(&symbols);
        let cut = &buf[..buf.len() / 2];
        assert!(t.decode(cut, symbols.len()).is_err());
    }

    #[test]
    fn decode_wrong_count_fails_integrity() {
        let symbols: Vec<u16> = (0..999u32).map(|i| (i % 4) as u16).collect();
        let t = build_for(&symbols, 4, 9);
        let buf = t.encode(&symbols);
        // Asking for fewer symbols leaves bits unread -> integrity failure.
        assert!(t.decode(&buf, symbols.len() - 1).is_err());
    }

    #[test]
    fn decode_fast_matches_decode() {
        let symbols: Vec<u16> = (0..5000u32)
            .map(|i| if i % 13 == 0 { 5 } else { (i % 4) as u16 })
            .collect();
        let t = build_for(&symbols, 8, 9);
        let buf = t.encode(&symbols);
        assert_eq!(t.decode_fast(&buf, symbols.len()).unwrap(), symbols);
        // Parity on every truncation prefix: same Ok/Err outcome.
        for k in 0..buf.len() {
            let slow = t.decode(&buf[..k], symbols.len());
            let fast = t.decode_fast(&buf[..k], symbols.len());
            assert_eq!(slow.is_ok(), fast.is_ok(), "prefix {k}");
            assert_eq!(slow.ok(), fast.ok(), "prefix {k}");
        }
        // Wrong-count integrity failure matches too.
        assert!(t.decode_fast(&buf, symbols.len() - 1).is_err());
    }

    #[test]
    fn two_state_roundtrip_even_and_odd_lengths() {
        for n in [0usize, 1, 2, 3, 500, 501] {
            let symbols: Vec<u16> = (0..n as u32).map(|i| (i % 5) as u16).collect();
            let t = build_for(&[0, 1, 2, 3, 4], 5, 7);
            let buf = t.encode_2x(&symbols);
            assert_eq!(t.decode_2x(&buf, n).unwrap(), symbols, "n={n}");
        }
    }

    #[test]
    fn two_state_decode_detects_truncation_and_wrong_count() {
        let symbols: Vec<u16> = (0..2000u32).map(|i| (i % 6) as u16).collect();
        let t = build_for(&symbols, 6, 9);
        let buf = t.encode_2x(&symbols);
        for k in 0..buf.len() {
            assert!(
                t.decode_2x(&buf[..k], symbols.len()).is_err(),
                "prefix {k} decoded Ok"
            );
        }
        assert!(t.decode_2x(&buf, symbols.len() - 1).is_err());
    }

    #[test]
    fn four_state_roundtrip_all_tail_lengths() {
        // Every n % 4 residue exercises a different tail shape.
        for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 500, 501, 502, 503] {
            let symbols: Vec<u16> = (0..n as u32).map(|i| (i % 5) as u16).collect();
            let t = build_for(&[0, 1, 2, 3, 4], 5, 7);
            let buf = t.encode_4x(&symbols);
            assert_eq!(t.decode_4x(&buf, n).unwrap(), symbols, "n={n}");
            assert_eq!(t.decode_4x_reference(&buf, n).unwrap(), symbols, "n={n}");
        }
    }

    #[test]
    fn four_state_roundtrip_across_table_logs() {
        // All accuracy logs the normalizer accepts for this alphabet.
        let symbols: Vec<u16> = (0..3000u32)
            .map(|i| if i % 17 == 0 { 7 } else { (i % 6) as u16 })
            .collect();
        for log in 5..=12 {
            let t = build_for(&symbols, 8, log);
            let buf = t.encode_4x(&symbols);
            assert_eq!(
                t.decode_4x(&buf, symbols.len()).unwrap(),
                symbols,
                "log={log}"
            );
        }
    }

    #[test]
    fn four_state_roundtrip_degenerate_distributions() {
        // Near-RLE input: one symbol holds almost the whole table.
        let mut symbols = vec![3u16; 2048];
        symbols[100] = 0;
        symbols[2000] = 0;
        let t = build_for(&symbols, 4, 9);
        let buf = t.encode_4x(&symbols);
        assert_eq!(t.decode_4x(&buf, symbols.len()).unwrap(), symbols);
    }

    #[test]
    fn four_state_decode_detects_truncation_and_wrong_count() {
        let symbols: Vec<u16> = (0..2000u32).map(|i| (i % 6) as u16).collect();
        let t = build_for(&symbols, 6, 9);
        let buf = t.encode_4x(&symbols);
        for k in 0..buf.len() {
            let fast = t.decode_4x(&buf[..k], symbols.len());
            let slow = t.decode_4x_reference(&buf[..k], symbols.len());
            assert!(fast.is_err(), "prefix {k} decoded Ok");
            assert!(slow.is_err(), "prefix {k} decoded Ok (reference)");
        }
        assert!(t.decode_4x(&buf, symbols.len() - 1).is_err());
        assert!(t.decode_4x(&buf, symbols.len() + 1).is_err());
    }

    #[test]
    fn interleaved_two_tables_one_stream() {
        // Mirror of the zstdx sequences layout: two code streams, two
        // states, one bitstream. Decoder reads in forward order; encoder
        // mirrors in reverse.
        let a: Vec<u16> = (0..500u32).map(|i| (i % 3) as u16).collect();
        let b: Vec<u16> = (0..500u32).map(|i| ((i / 2) % 4) as u16).collect();
        let ta = build_for(&a, 3, 7);
        let tb = build_for(&b, 4, 7);

        let mut w = BitWriter::new();
        let mut ea = FseEncoder::new(&ta);
        let mut eb = FseEncoder::new(&tb);
        // Encoder: reverse item order; within an item, reverse of the
        // decoder's (a then b) read order, i.e. encode b then a.
        for i in (0..a.len()).rev() {
            eb.encode(&mut w, b[i]);
            ea.encode(&mut w, a[i]);
        }
        // Decoder inits a first, so a's state must be written last.
        eb.finish(&mut w);
        ea.finish(&mut w);
        let buf = w.finish_with_sentinel();

        let mut r = ReverseBitReader::from_sentinel(&buf).unwrap();
        let mut da = FseDecoder::init(&ta, &mut r).unwrap();
        let mut db = FseDecoder::init(&tb, &mut r).unwrap();
        for i in 0..a.len() {
            assert_eq!(da.peek_symbol(), a[i], "stream a at {i}");
            da.update(&mut r).unwrap();
            assert_eq!(db.peek_symbol(), b[i], "stream b at {i}");
            db.update(&mut r).unwrap();
        }
        assert!(da.at_initial_state());
        assert!(db.at_initial_state());
        assert_eq!(r.remaining(), 0);
    }
}
