//! Canonical, length-limited Huffman coding.
//!
//! Code lengths are computed with the package-merge algorithm, which
//! yields optimal lengths under a maximum-depth constraint. Codes are
//! assigned canonically (shorter codes first, ties by symbol index) so a
//! table can be reconstructed from its length array alone — that is what
//! the codecs serialize into their block headers.
//!
//! Encoded streams are LSB-first ([`crate::bitio`]); codes are stored
//! bit-reversed so the decoder can peek a fixed `max_bits`-wide window and
//! index a flat lookup table.

use crate::bitio::{quad_readers_fast, BitReader, BitReaderFast, BitSrc, BitWriter};
use crate::{Error, Result};

/// Upper bound on code length supported by the flat decode table.
pub const MAX_CODE_BITS: u32 = 15;

/// Codes at or below this length get a multi-symbol pair table: one
/// `max_bits`-wide window lookup yields up to two decoded symbols. Above
/// it the `1 << max_bits` pair table would outgrow L1 for diminishing
/// double-hit rates.
pub const PAIR_TABLE_MAX_BITS: u32 = 11;

/// One slot of the multi-symbol decode table: up to two symbols resolved
/// from a single `max_bits`-wide window.
#[derive(Debug, Clone, Copy, Default)]
struct PairEntry {
    /// First decoded symbol (valid when `nsyms >= 1`).
    sym1: u16,
    /// Second decoded symbol (valid when `nsyms == 2`).
    sym2: u16,
    /// Code length of the first symbol.
    len1: u8,
    /// Code length of the second symbol.
    len2: u8,
    /// 0 = window invalid, 1 = only the first symbol is certain,
    /// 2 = both symbols fit entirely inside the window.
    nsyms: u8,
}

/// A built Huffman code: per-symbol lengths/codes plus a flat decode table.
#[derive(Debug, Clone)]
pub struct HuffmanTable {
    /// Code length per symbol; 0 means the symbol is absent.
    lens: Vec<u8>,
    /// Bit-reversed canonical code per symbol (LSB-first stream order).
    codes: Vec<u16>,
    /// Length of the longest code.
    max_bits: u32,
    /// Flat decode table of size `1 << max_bits`: window -> (symbol, len).
    decode: Vec<(u16, u8)>,
    /// Multi-symbol table (same indexing), built when
    /// `max_bits <= PAIR_TABLE_MAX_BITS`.
    pair: Option<Vec<PairEntry>>,
}

impl HuffmanTable {
    /// Builds a length-limited canonical Huffman code for `freqs`.
    ///
    /// Returns `None` when fewer than two symbols are present — callers
    /// should fall back to raw or run-length representations, exactly as
    /// the zstd format does for its literals section.
    ///
    /// # Panics
    ///
    /// Panics if `max_bits` is 0 or greater than [`MAX_CODE_BITS`], or if
    /// the alphabet cannot fit in `max_bits` (more than `1 << max_bits`
    /// present symbols).
    // indexing_slicing: `present` holds indices produced by enumerating
    // `freqs`, so `freqs[i]` is in-bounds.
    #[allow(clippy::indexing_slicing)]
    pub fn build(freqs: &[u32], max_bits: u32) -> Option<Self> {
        assert!(
            (1..=MAX_CODE_BITS).contains(&max_bits),
            "max_bits must be in 1..=15"
        );
        let present: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
        if present.len() < 2 {
            return None;
        }
        assert!(
            (present.len() as u64) <= (1u64 << max_bits),
            "alphabet does not fit in max_bits"
        );
        let lens = package_merge_lengths(freqs, &present, max_bits);
        Some(Self::from_lengths(&lens).expect("package-merge produces a complete code"))
    }

    /// Reconstructs a table from canonical code lengths (0 = absent).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptTable`] if the lengths do not describe a
    /// complete prefix code, contain a length above [`MAX_CODE_BITS`], or
    /// fewer than two symbols are present.
    // indexing_slicing: table construction. `bl_count`/`next_code` are
    // indexed by code lengths already validated `<= MAX_CODE_BITS`;
    // `codes` is sized from `lens` and indexed by its enumeration; the
    // `decode` fill index starts at `rev < 2^l <= 2^max_bits` and the
    // loop condition bounds it below `decode.len()`.
    #[allow(clippy::indexing_slicing)]
    pub fn from_lengths(lens: &[u8]) -> Result<Self> {
        let max_bits = lens.iter().copied().max().unwrap_or(0) as u32;
        if max_bits == 0 {
            return Err(Error::CorruptTable("no symbols present"));
        }
        if max_bits > MAX_CODE_BITS {
            return Err(Error::CorruptTable("code length above maximum"));
        }
        if lens.iter().filter(|&&l| l > 0).count() < 2 {
            return Err(Error::CorruptTable("fewer than two symbols present"));
        }
        // Kraft sum must be exactly 1 for a complete code.
        let kraft: u64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_bits - l as u32))
            .sum();
        if kraft != (1u64 << max_bits) {
            return Err(Error::CorruptTable("lengths do not form a complete code"));
        }

        // Canonical code assignment (RFC 1951 style).
        let mut bl_count = [0u32; MAX_CODE_BITS as usize + 1];
        for &l in lens.iter().filter(|&&l| l > 0) {
            bl_count[l as usize] += 1;
        }
        let mut next_code = [0u32; MAX_CODE_BITS as usize + 2];
        let mut code = 0u32;
        for bits in 1..=max_bits as usize {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }

        let mut codes = vec![0u16; lens.len()];
        let mut decode = vec![(0u16, 0u8); 1usize << max_bits];
        for (sym, &l) in lens.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let c = next_code[l as usize];
            next_code[l as usize] += 1;
            let rev = reverse_bits(c, l as u32) as u16;
            codes[sym] = rev;
            // Fill every table slot whose low `l` bits equal the reversed code.
            let step = 1usize << l;
            let mut idx = rev as usize;
            while idx < decode.len() {
                decode[idx] = (sym as u16, l);
                idx += step;
            }
        }

        let pair = (max_bits <= PAIR_TABLE_MAX_BITS).then(|| build_pair_table(&decode, max_bits));

        Ok(Self {
            lens: lens.to_vec(),
            codes,
            max_bits,
            decode,
            pair,
        })
    }

    /// Per-symbol code lengths (0 = absent). Serializable table form.
    pub fn lengths(&self) -> &[u8] {
        &self.lens
    }

    /// Length of the longest code in bits.
    pub fn max_bits(&self) -> u32 {
        self.max_bits
    }

    /// Exact encoded size in bits for the given histogram.
    pub fn encoded_bits(&self, freqs: &[u32]) -> u64 {
        freqs
            .iter()
            .zip(&self.lens)
            .map(|(&c, &l)| c as u64 * l as u64)
            .sum()
    }

    /// Appends the code for `sym` to `w`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `sym` is absent from the code.
    // indexing_slicing: panicking on an out-of-alphabet symbol is the
    // documented encode-side contract.
    #[allow(clippy::indexing_slicing)]
    #[inline]
    pub fn write_symbol(&self, w: &mut BitWriter, sym: u16) {
        let len = self.lens[sym as usize];
        debug_assert!(len > 0, "encoding absent symbol");
        w.write_bits(self.codes[sym as usize] as u64, len as u32);
    }

    /// Reads one symbol from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptData`] if the window does not match any
    /// code, or [`Error::UnexpectedEof`] if the stream is exhausted.
    // indexing_slicing: `window` is a `max_bits`-wide peek, so it is
    // `< 2^max_bits == decode.len()`. Hot decode loop (decode_guard
    // benchmark budget); invalid windows are rejected via `len == 0`.
    #[allow(clippy::indexing_slicing)]
    #[inline]
    pub fn read_symbol<R: BitSrc>(&self, r: &mut R) -> Result<u16> {
        let window = r.peek_bits_lenient(self.max_bits) as usize;
        let (sym, len) = self.decode[window];
        if len == 0 {
            return Err(Error::CorruptData("invalid huffman window"));
        }
        r.consume(len as u32)?;
        Ok(sym)
    }

    /// Encodes a byte slice into a fresh bit buffer (zero-padded).
    ///
    /// Convenience wrapper used by tests and small callers; the codecs
    /// drive [`Self::write_symbol`] directly into their own streams.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::with_capacity(data.len());
        for &b in data {
            self.write_symbol(&mut w, b as u16);
        }
        w.finish().0
    }

    /// Decodes exactly `n` byte symbols from `buf`.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from [`Self::read_symbol`], plus
    /// [`Error::CorruptData`] if a decoded symbol exceeds `u8::MAX`.
    pub fn decode(&self, buf: &[u8], n: usize) -> Result<Vec<u8>> {
        let mut r = BitReader::new(buf, buf.len() * 8);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let sym = self.read_symbol(&mut r)?;
            let byte =
                u8::try_from(sym).map_err(|_| Error::CorruptData("symbol out of byte range"))?;
            out.push(byte);
        }
        Ok(out)
    }

    /// Decodes exactly `n` byte symbols from `buf` through the fast path:
    /// a word-refilling [`BitReaderFast`] plus, when the code fits
    /// [`PAIR_TABLE_MAX_BITS`], a multi-symbol table that resolves two
    /// symbols per window lookup. Returns the same bytes — or the same
    /// typed error — as [`Self::decode`] for every input; the failure
    /// replay below consumes and range-checks symbols in exactly the
    /// per-symbol order the slow path uses.
    ///
    /// # Errors
    ///
    /// Identical to [`Self::decode`].
    // indexing_slicing: `window < 2^max_bits == pair.len()` (same bound
    // as `read_symbol`); hot decode loop under the decode_guard budget.
    #[allow(clippy::indexing_slicing)]
    pub fn decode_fast(&self, buf: &[u8], n: usize) -> Result<Vec<u8>> {
        let mut r = BitReaderFast::new(buf, buf.len() * 8);
        let mut out = Vec::with_capacity(n);
        if let Some(pair) = &self.pair {
            while out.len() + 2 <= n {
                let window = r.peek_bits_lenient(self.max_bits) as usize;
                let e = pair[window];
                if e.nsyms == 2 {
                    // Replay the slow path's consume/range-check ordering
                    // so truncation and oversize-symbol errors surface
                    // identically.
                    r.consume(e.len1 as u32)?;
                    let b1 = u8::try_from(e.sym1)
                        .map_err(|_| Error::CorruptData("symbol out of byte range"))?;
                    out.push(b1);
                    r.consume(e.len2 as u32)?;
                    let b2 = u8::try_from(e.sym2)
                        .map_err(|_| Error::CorruptData("symbol out of byte range"))?;
                    out.push(b2);
                } else if e.nsyms == 1 {
                    r.consume(e.len1 as u32)?;
                    let b1 = u8::try_from(e.sym1)
                        .map_err(|_| Error::CorruptData("symbol out of byte range"))?;
                    out.push(b1);
                } else {
                    return Err(Error::CorruptData("invalid huffman window"));
                }
            }
        }
        // Tail (and the whole stream when no pair table): one symbol at a
        // time through the shared per-symbol reader.
        while out.len() < n {
            let sym = self.read_symbol(&mut r)?;
            let byte =
                u8::try_from(sym).map_err(|_| Error::CorruptData("symbol out of byte range"))?;
            out.push(byte);
        }
        Ok(out)
    }

    /// True when this table carries the multi-symbol pair table
    /// ([`PAIR_TABLE_MAX_BITS`] permitting). When false, every
    /// fast-path decode degrades to one symbol per lookup for the whole
    /// stream — callers surface that via the
    /// `entropy.pair_table_bypass` telemetry counter so affected
    /// corpora are visible on `/metrics`.
    pub fn has_pair_table(&self) -> bool {
        self.pair.is_some()
    }

    /// Splits `data` into the four substreams of the multi-stream
    /// literals layout (see [`four_stream_split`]) and encodes each
    /// independently. Decode with [`Self::decode_4stream`] or
    /// [`Self::decode_4stream_fast`].
    pub fn encode_4stream(&self, data: &[u8]) -> [Vec<u8>; 4] {
        let [n0, n1, n2, _] = four_stream_split(data.len());
        let (s0, rest) = data.split_at(n0);
        let (s1, rest) = rest.split_at(n1);
        let (s2, s3) = rest.split_at(n2);
        [
            self.encode(s0),
            self.encode(s1),
            self.encode(s2),
            self.encode(s3),
        ]
    }

    /// Reference decode of four substreams produced by
    /// [`Self::encode_4stream`]: each stream decodes sequentially
    /// through the checked per-symbol reader, then the pieces
    /// concatenate. The straightforward loop the differential tests
    /// hold the fast engine against.
    ///
    /// # Errors
    ///
    /// Propagates the first failing stream's decode error.
    #[deny(clippy::indexing_slicing)]
    pub fn decode_4stream(&self, bufs: [&[u8]; 4], total: usize) -> Result<Vec<u8>> {
        let ns = four_stream_split(total);
        let mut out = Vec::with_capacity(total);
        for (buf, n) in bufs.iter().zip(ns) {
            out.extend_from_slice(&self.decode(buf, n)?);
        }
        Ok(out)
    }

    /// Fast decode of four substreams: four word-refilling cursors
    /// advance round-robin through the interleaved hot loop, one
    /// pair-table lookup per cursor per iteration, so the CPU keeps
    /// four independent dependency chains in flight. Per-stream
    /// operation order matches [`Self::decode_fast`] exactly (pair
    /// steps while two symbols remain, then the per-symbol tail), so
    /// each stream succeeds or fails independently of scheduling and
    /// the whole decode agrees with [`Self::decode_4stream`] on
    /// success and on failure.
    ///
    /// # Errors
    ///
    /// Fails iff [`Self::decode_4stream`] fails on the same input
    /// (possibly reporting a different failing stream's error; all
    /// variants are entropy decode errors).
    #[deny(clippy::indexing_slicing)]
    pub fn decode_4stream_fast(&self, bufs: [&[u8]; 4], total: usize) -> Result<Vec<u8>> {
        let [n0, n1, n2, n3] = four_stream_split(total);
        let mut out = vec![0u8; total];
        let (s0, rest) = out.split_at_mut(n0);
        let (s1, rest) = rest.split_at_mut(n1);
        let (s2, s3) = rest.split_at_mut(n2);
        let [mut r0, mut r1, mut r2, mut r3] = quad_readers_fast(bufs, bufs.map(|b| b.len() * 8));
        let (mut w0, mut w1, mut w2, mut w3) =
            (s0.iter_mut(), s1.iter_mut(), s2.iter_mut(), s3.iter_mut());
        let (mut m0, mut m1, mut m2, mut m3) = (n0, n1, n2, n3);
        if let Some(pair) = &self.pair {
            while m0 >= 2 && m1 >= 2 && m2 >= 2 && m3 >= 2 {
                self.pair_step(pair, &mut r0, &mut w0, &mut m0)?;
                self.pair_step(pair, &mut r1, &mut w1, &mut m1)?;
                self.pair_step(pair, &mut r2, &mut w2, &mut m2)?;
                self.pair_step(pair, &mut r3, &mut w3, &mut m3)?;
            }
        }
        let pair = self.pair.as_deref();
        self.finish_stream(pair, &mut r0, &mut w0, &mut m0)?;
        self.finish_stream(pair, &mut r1, &mut w1, &mut m1)?;
        self.finish_stream(pair, &mut r2, &mut w2, &mut m2)?;
        self.finish_stream(pair, &mut r3, &mut w3, &mut m3)?;
        Ok(out)
    }

    /// One pair-table step of the interleaved loop: up to two symbols
    /// from one cursor, replaying the slow path's consume/range-check
    /// ordering so errors surface identically. Callers guarantee
    /// `*rem >= 2` so the writer always has room.
    #[deny(clippy::indexing_slicing)]
    #[inline]
    fn pair_step<R: BitSrc>(
        &self,
        pair: &[PairEntry],
        r: &mut R,
        w: &mut std::slice::IterMut<'_, u8>,
        rem: &mut usize,
    ) -> Result<()> {
        let window = r.peek_bits_lenient(self.max_bits) as usize;
        // The peek is masked to `max_bits`, so the lookup always hits.
        let e = pair
            .get(window)
            .copied()
            .ok_or(Error::CorruptData("invalid huffman window"))?;
        if e.nsyms == 2 {
            r.consume(e.len1 as u32)?;
            let b1 =
                u8::try_from(e.sym1).map_err(|_| Error::CorruptData("symbol out of byte range"))?;
            *w.next()
                .ok_or(Error::CorruptData("stream output overrun"))? = b1;
            r.consume(e.len2 as u32)?;
            let b2 =
                u8::try_from(e.sym2).map_err(|_| Error::CorruptData("symbol out of byte range"))?;
            *w.next()
                .ok_or(Error::CorruptData("stream output overrun"))? = b2;
            *rem -= 2;
        } else if e.nsyms == 1 {
            r.consume(e.len1 as u32)?;
            let b1 =
                u8::try_from(e.sym1).map_err(|_| Error::CorruptData("symbol out of byte range"))?;
            *w.next()
                .ok_or(Error::CorruptData("stream output overrun"))? = b1;
            *rem -= 1;
        } else {
            return Err(Error::CorruptData("invalid huffman window"));
        }
        Ok(())
    }

    /// Drains one substream after the interleaved loop: pair steps
    /// while two symbols remain, then the shared per-symbol tail —
    /// the same op sequence [`Self::decode_fast`] uses end-to-end.
    #[deny(clippy::indexing_slicing)]
    fn finish_stream<R: BitSrc>(
        &self,
        pair: Option<&[PairEntry]>,
        r: &mut R,
        w: &mut std::slice::IterMut<'_, u8>,
        rem: &mut usize,
    ) -> Result<()> {
        if let Some(pair) = pair {
            while *rem >= 2 {
                self.pair_step(pair, r, w, rem)?;
            }
        }
        while *rem > 0 {
            let sym = self.read_symbol(r)?;
            let byte =
                u8::try_from(sym).map_err(|_| Error::CorruptData("symbol out of byte range"))?;
            *w.next()
                .ok_or(Error::CorruptData("stream output overrun"))? = byte;
            *rem -= 1;
        }
        Ok(())
    }
}

/// Substream sizes for the 4-stream literals layout: the first three
/// streams carry `n / 4` symbols each and the fourth the remainder
/// (`n - 3 * (n / 4)`), so the split is total-preserving and
/// non-negative for every `n` — both sides derive it from the symbol
/// count alone, no sizes on the wire beyond the per-stream byte
/// lengths.
pub fn four_stream_split(n: usize) -> [usize; 4] {
    let q = n / 4;
    [q, q, q, n - 3 * q]
}

/// Builds the multi-symbol table from a complete single-symbol table.
///
/// For window `w`: if `decode[w]` is invalid the pair slot is invalid
/// (`nsyms == 0`). Otherwise the first symbol consumes `len1` bits and the
/// second lookup indexes `w >> len1`. The second symbol is only certain
/// when its entry is valid *and* `len1 + len2 <= max_bits` — i.e. every
/// bit that determined it lay inside the original window. An invalid
/// second entry does not make the slot invalid: the real next code may
/// extend past the window, so the slot degrades to `nsyms == 1`.
// indexing_slicing: `w` enumerates `pair`, which is sized from `decode`,
// and `w >> len1 <= w`, so both lookups stay in-bounds.
#[allow(clippy::indexing_slicing)]
fn build_pair_table(decode: &[(u16, u8)], max_bits: u32) -> Vec<PairEntry> {
    let mut pair = vec![PairEntry::default(); decode.len()];
    for (w, slot) in pair.iter_mut().enumerate() {
        let (sym1, len1) = decode[w];
        if len1 == 0 {
            continue;
        }
        slot.sym1 = sym1;
        slot.len1 = len1;
        slot.nsyms = 1;
        let (sym2, len2) = decode[w >> len1];
        if len2 > 0 && (len1 as u32 + len2 as u32) <= max_bits {
            slot.sym2 = sym2;
            slot.len2 = len2;
            slot.nsyms = 2;
        }
    }
    pair
}

/// Computes optimal length-limited code lengths via package-merge.
// indexing_slicing: encode-side table construction. `present` holds
// enumerated indices of `freqs`; `chunks_exact(2)` guarantees both
// `pair[0]` and `pair[1]` exist; `items[a..]`/`packaged[b..]` use the
// merge cursors bounded by the loop conditions; `lens` is sized from
// `freqs` and leaves are recorded `freqs` indices.
#[allow(clippy::indexing_slicing)]
fn package_merge_lengths(freqs: &[u32], present: &[usize], max_bits: u32) -> Vec<u8> {
    // Each node is (weight, leaves-it-covers). Alphabets here are small
    // (<= ~320 symbols), so carrying leaf vectors is cheap and keeps the
    // implementation obviously correct.
    #[derive(Clone)]
    struct Node {
        weight: u64,
        leaves: Vec<u32>,
    }

    let mut items: Vec<Node> = present
        .iter()
        .map(|&i| Node {
            weight: freqs[i] as u64,
            leaves: vec![i as u32],
        })
        .collect();
    items.sort_by_key(|n| n.weight);

    let mut list: Vec<Node> = items.clone();
    for _ in 1..max_bits {
        // Package: pair up adjacent nodes of the previous list.
        let mut packaged: Vec<Node> = Vec::with_capacity(list.len() / 2);
        let mut it = list.chunks_exact(2);
        for pair in &mut it {
            let mut leaves = pair[0].leaves.clone();
            leaves.extend_from_slice(&pair[1].leaves);
            packaged.push(Node {
                weight: pair[0].weight + pair[1].weight,
                leaves,
            });
        }
        // Merge with the original items, keeping sorted order.
        let mut merged = Vec::with_capacity(items.len() + packaged.len());
        let (mut a, mut b) = (0, 0);
        while a < items.len() && b < packaged.len() {
            if items[a].weight <= packaged[b].weight {
                merged.push(items[a].clone());
                a += 1;
            } else {
                merged.push(packaged[b].clone());
                b += 1;
            }
        }
        merged.extend_from_slice(&items[a..]);
        merged.extend_from_slice(&packaged[b..]);
        list = merged;
    }

    // Count how often each leaf appears in the first 2(n-1) nodes: that is
    // its code length.
    let mut lens = vec![0u8; freqs.len()];
    let take = 2 * (present.len() - 1);
    for node in list.iter().take(take) {
        for &leaf in &node.leaves {
            lens[leaf as usize] += 1;
        }
    }
    lens
}

/// Reverses the low `n` bits of `v`.
#[inline]
fn reverse_bits(v: u32, n: u32) -> u32 {
    v.reverse_bits() >> (32 - n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::byte_histogram;

    fn roundtrip(data: &[u8], max_bits: u32) {
        let freqs = byte_histogram(data);
        let table = HuffmanTable::build(&freqs, max_bits).unwrap();
        let encoded = table.encode(data);
        let decoded = table.decode(&encoded, data.len()).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn roundtrip_text() {
        roundtrip(b"the quick brown fox jumps over the lazy dog", 11);
    }

    #[test]
    fn roundtrip_two_symbols() {
        roundtrip(b"abababababbbbaaab", 11);
        roundtrip(b"ab", 1);
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data, 11);
    }

    #[test]
    fn single_symbol_returns_none() {
        let freqs = byte_histogram(b"aaaaaaa");
        assert!(HuffmanTable::build(&freqs, 11).is_none());
        assert!(HuffmanTable::build(&byte_histogram(b""), 11).is_none());
    }

    #[test]
    fn respects_length_limit() {
        // Fibonacci-like weights force long codes in unlimited Huffman.
        let mut freqs = vec![0u32; 24];
        let mut a = 1u32;
        let mut b = 1u32;
        for f in freqs.iter_mut() {
            *f = a;
            let next = a.saturating_add(b);
            a = b;
            b = next;
        }
        for limit in [6u32, 8, 11, 15] {
            let table = HuffmanTable::build(&freqs, limit).unwrap();
            assert!(table.max_bits() <= limit, "limit {limit} violated");
            // Still decodable.
            let data: Vec<u8> = (0..24u8).collect();
            let encoded = table.encode(&data);
            assert_eq!(table.decode(&encoded, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn skewed_is_shorter_than_uniform() {
        // A heavily skewed distribution must encode below 8 bits/symbol.
        let mut data = vec![b'a'; 1000];
        data.extend_from_slice(b"bcdefgh");
        let freqs = byte_histogram(&data);
        let table = HuffmanTable::build(&freqs, 11).unwrap();
        let bits = table.encoded_bits(&freqs);
        assert!(
            bits < data.len() as u64 * 2,
            "expected < 2 bits/sym, got {bits}"
        );
    }

    #[test]
    fn lengths_roundtrip_through_from_lengths() {
        let data = b"canonical codes reconstruct from lengths alone";
        let freqs = byte_histogram(data);
        let table = HuffmanTable::build(&freqs, 11).unwrap();
        let rebuilt = HuffmanTable::from_lengths(table.lengths()).unwrap();
        let encoded = table.encode(data);
        assert_eq!(rebuilt.decode(&encoded, data.len()).unwrap(), data);
    }

    #[test]
    fn from_lengths_rejects_incomplete() {
        // Lengths {1} alone: kraft sum 1/2 != 1.
        let mut lens = vec![0u8; 4];
        lens[0] = 1;
        assert!(HuffmanTable::from_lengths(&lens).is_err());
        // Oversubscribed: three codes of length 1.
        let lens = vec![1u8, 1, 1];
        assert!(HuffmanTable::from_lengths(&lens).is_err());
        // Empty.
        assert!(HuffmanTable::from_lengths(&[0u8; 8]).is_err());
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let data = b"some data to encode for truncation";
        let freqs = byte_histogram(data);
        let table = HuffmanTable::build(&freqs, 11).unwrap();
        let encoded = table.encode(data);
        let truncated = &encoded[..encoded.len() / 2];
        assert!(table.decode(truncated, data.len()).is_err());
    }

    #[test]
    fn decode_fast_matches_decode_including_errors() {
        let data: Vec<u8> = b"fast and slow paths must agree on every byte and every error"
            .iter()
            .cycle()
            .take(4096)
            .copied()
            .collect();
        let freqs = byte_histogram(&data);
        for max_bits in [8u32, 11, 15] {
            let table = HuffmanTable::build(&freqs, max_bits).unwrap();
            let encoded = table.encode(&data);
            assert_eq!(
                table.decode_fast(&encoded, data.len()).unwrap(),
                data,
                "max_bits={max_bits}"
            );
            // Every truncation prefix: identical Ok/Err outcome and value.
            for k in (0..encoded.len()).step_by(3) {
                let slow = table.decode(&encoded[..k], data.len());
                let fast = table.decode_fast(&encoded[..k], data.len());
                assert_eq!(slow, fast, "max_bits={max_bits} prefix {k}");
            }
            // Bit flips: identical outcome (flipped streams may still
            // decode to identical wrong bytes — both paths must agree).
            for pos in (0..encoded.len()).step_by(37) {
                let mut bad = encoded.clone();
                bad[pos] ^= 0x44;
                assert_eq!(
                    table.decode(&bad, data.len()),
                    table.decode_fast(&bad, data.len()),
                    "max_bits={max_bits} flip at {pos}"
                );
            }
        }
    }

    #[test]
    fn decode_fast_handles_odd_symbol_counts() {
        // Odd n exercises the single-symbol tail after the pair loop.
        let data: Vec<u8> = (0..=254u8).collect();
        let freqs = byte_histogram(&data);
        let table = HuffmanTable::build(&freqs, 11).unwrap();
        let encoded = table.encode(&data);
        assert_eq!(table.decode_fast(&encoded, data.len()).unwrap(), data);
    }

    #[test]
    fn four_stream_split_is_total_preserving() {
        for n in 0..64usize {
            let parts = four_stream_split(n);
            assert_eq!(parts.iter().sum::<usize>(), n, "n={n}");
            // First three parts equal; fourth carries the remainder.
            assert_eq!(parts[0], parts[1]);
            assert_eq!(parts[1], parts[2]);
            assert!(parts[3] >= parts[0], "n={n}: {parts:?}");
        }
    }

    #[test]
    fn four_stream_roundtrip_both_engines() {
        let base: Vec<u8> = b"four independent huffman substreams, one table"
            .iter()
            .cycle()
            .take(4096)
            .copied()
            .collect();
        let freqs = byte_histogram(&base);
        for max_bits in [8u32, 11, 15] {
            let table = HuffmanTable::build(&freqs, max_bits).unwrap();
            // Every split-boundary shape: n % 4 in 0..4, plus tiny inputs
            // down to empty substreams.
            for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 100, 4093, 4094, 4095, 4096] {
                let data = &base[..n];
                let streams = table.encode_4stream(data);
                let bufs = [
                    streams[0].as_slice(),
                    streams[1].as_slice(),
                    streams[2].as_slice(),
                    streams[3].as_slice(),
                ];
                assert_eq!(
                    table.decode_4stream(bufs, n).unwrap(),
                    data,
                    "reference max_bits={max_bits} n={n}"
                );
                assert_eq!(
                    table.decode_4stream_fast(bufs, n).unwrap(),
                    data,
                    "fast max_bits={max_bits} n={n}"
                );
            }
        }
    }

    #[test]
    fn four_stream_engines_agree_on_truncation_and_flips() {
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        let freqs = byte_histogram(&data);
        for max_bits in [11u32, 15] {
            let table = HuffmanTable::build(&freqs, max_bits).unwrap();
            let streams = table.encode_4stream(&data);
            // Truncate every stream at every byte boundary: both engines
            // must agree — same bytes when a shortened substream still
            // happens to decode, same failure when it cannot.
            for k in 0..4usize {
                for cut in 0..streams[k].len() {
                    let mut mut_streams = streams.clone();
                    mut_streams[k].truncate(cut);
                    let bufs = [
                        mut_streams[0].as_slice(),
                        mut_streams[1].as_slice(),
                        mut_streams[2].as_slice(),
                        mut_streams[3].as_slice(),
                    ];
                    let slow = table.decode_4stream(bufs, data.len());
                    let fast = table.decode_4stream_fast(bufs, data.len());
                    assert_eq!(
                        slow.is_ok(),
                        fast.is_ok(),
                        "stream {k} cut {cut} max_bits={max_bits}"
                    );
                    if let (Ok(s), Ok(f)) = (&slow, &fast) {
                        assert_eq!(s, f, "stream {k} cut {cut}");
                    }
                }
            }
            // Bit flips: identical bytes or both-error.
            for k in 0..4usize {
                for pos in (0..streams[k].len()).step_by(11) {
                    let mut mut_streams = streams.clone();
                    mut_streams[k][pos] ^= 0x29;
                    let bufs = [
                        mut_streams[0].as_slice(),
                        mut_streams[1].as_slice(),
                        mut_streams[2].as_slice(),
                        mut_streams[3].as_slice(),
                    ];
                    let slow = table.decode_4stream(bufs, data.len());
                    let fast = table.decode_4stream_fast(bufs, data.len());
                    assert_eq!(slow.is_ok(), fast.is_ok(), "stream {k} flip {pos}");
                    if let (Ok(s), Ok(f)) = (&slow, &fast) {
                        assert_eq!(s, f, "stream {k} flip {pos}");
                    }
                }
            }
        }
    }

    #[test]
    fn pair_table_presence_tracks_max_bits() {
        // Fibonacci-ish weights force deep codes when the limit allows.
        let mut freqs = vec![0u32; 24];
        let (mut a, mut b) = (1u32, 1u32);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a.saturating_add(b);
            a = b;
            b = next;
        }
        let wide = HuffmanTable::build(&freqs, 15).unwrap();
        assert!(wide.max_bits() > PAIR_TABLE_MAX_BITS);
        assert!(!wide.has_pair_table());
        let narrow = HuffmanTable::build(&freqs, 11).unwrap();
        assert!(narrow.has_pair_table());
    }

    #[test]
    fn optimality_close_to_entropy() {
        // Average code length must sit within 1 bit of Shannon entropy.
        let data: Vec<u8> = b"abcc".iter().cycle().take(8192).copied().collect();
        let freqs = byte_histogram(&data);
        let table = HuffmanTable::build(&freqs, 11).unwrap();
        let avg = table.encoded_bits(&freqs) as f64 / data.len() as f64;
        let h = crate::hist::shannon_entropy(&freqs);
        assert!(avg >= h - 1e-9);
        assert!(avg < h + 1.0);
    }
}
