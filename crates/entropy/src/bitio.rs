//! LSB-first bit streams.
//!
//! Three access patterns are provided:
//!
//! * [`BitWriter`] — appends bits in LSB-first order. Bit `j` of a value
//!   written with [`BitWriter::write_bits`] lands at stream position
//!   `p + j` where `p` is the stream length before the write.
//! * [`BitReader`] — consumes a stream front-to-back in write order.
//!   Used by the Huffman decoders.
//! * [`ReverseBitReader`] — consumes a stream back-to-front: the most
//!   recently written *chunk* is returned first, but each chunk is
//!   reassembled with the same bit significance the writer used. This is
//!   the access pattern FSE/tANS decoding requires, because the encoder
//!   processes symbols in reverse order.
//!
//! Each reader also has a fast sibling ([`BitReaderFast`],
//! [`ReverseBitReaderFast`]) with bit-identical semantics: where the
//! reference readers assemble values byte-by-byte, the fast readers load
//! an aligned-enough 64-bit little-endian word per operation and fall
//! back to the byte loop only when fewer than 8 bytes of buffer remain
//! under the read position. Decoders stay generic over [`BitSrc`] /
//! [`RevBitSrc`] so the same loop body runs against either engine; the
//! differential proptests in this module's test suite pin the
//! equivalence.

use crate::{Error, Result};

/// Maximum number of bits accepted by a single `write_bits`/`read_bits` call.
pub const MAX_BITS_PER_OP: u32 = 56;

/// An append-only LSB-first bit stream.
///
/// # Example
///
/// ```
/// use entropy::bitio::{BitWriter, BitReader};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0x7f, 7);
/// let (bytes, bits) = w.finish();
/// let mut r = BitReader::new(&bytes, bits);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_bits(7).unwrap(), 0x7f);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits accumulated but not yet flushed to `buf`.
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `flush_acc`).
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty bit stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit stream with capacity for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Returns true if no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.bit_len() == 0
    }

    /// Appends the low `n` bits of `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n > 56` or if `value` has bits set above
    /// bit `n`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= MAX_BITS_PER_OP, "write_bits supports at most 56 bits");
        debug_assert!(n == 64 || value < (1u64 << n), "value has bits above n");
        self.acc |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.buf.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Finishes the stream, zero-padding the final partial byte.
    ///
    /// Returns the byte buffer and the exact number of valid bits.
    pub fn finish(mut self) -> (Vec<u8>, usize) {
        let bits = self.bit_len();
        if self.nbits > 0 {
            self.buf.push((self.acc & 0xff) as u8);
        }
        (self.buf, bits)
    }

    /// Finishes the stream by appending a single `1` sentinel bit and
    /// zero-padding. A [`ReverseBitReader`] uses the sentinel to recover
    /// the exact bit length from the byte buffer alone.
    pub fn finish_with_sentinel(mut self) -> Vec<u8> {
        self.write_bits(1, 1);
        let (buf, _) = self.finish();
        buf
    }
}

/// Front-to-back reader over a bit stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit position to read.
    pos: usize,
    /// Total number of valid bits.
    len: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf` containing exactly `bit_len` valid bits.
    pub fn new(buf: &'a [u8], bit_len: usize) -> Self {
        debug_assert!(bit_len <= buf.len() * 8);
        Self {
            buf,
            pos: 0,
            len: bit_len.min(buf.len() * 8),
        }
    }

    /// Number of unread bits remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Reads `n` bits in write order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if fewer than `n` bits remain, and
    /// [`Error::InvalidParameter`] if `n > MAX_BITS_PER_OP`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        if n > MAX_BITS_PER_OP {
            return Err(Error::InvalidParameter("read_bits width exceeds 56"));
        }
        if (n as usize) > self.remaining() {
            return Err(Error::UnexpectedEof);
        }
        let v = extract_bits(self.buf, self.pos, n);
        self.pos += n as usize;
        Ok(v)
    }

    /// Peeks up to `n` bits without consuming; missing bits beyond the end
    /// of the stream read as zero. Used by table-driven Huffman decoding,
    /// which peeks a fixed-width window that may extend past the final
    /// code.
    #[inline]
    pub fn peek_bits_lenient(&self, n: u32) -> u64 {
        let avail = self.remaining().min(n as usize) as u32;
        extract_bits(self.buf, self.pos, avail)
    }

    /// Consumes `n` bits previously peeked.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if fewer than `n` bits remain.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<()> {
        if (n as usize) > self.remaining() {
            return Err(Error::UnexpectedEof);
        }
        self.pos += n as usize;
        Ok(())
    }
}

/// Word-at-a-time variant of [`BitReader`] with identical semantics.
///
/// Every read refills from a single unaligned 64-bit load while at
/// least 8 bytes of buffer remain under the read position; the final
/// bytes fall back to the byte-looped [`extract_bits`], so the two
/// readers return the same values and the same errors for every input.
#[derive(Debug, Clone)]
pub struct BitReaderFast<'a> {
    buf: &'a [u8],
    /// Next bit position to read.
    pos: usize,
    /// Total number of valid bits.
    len: usize,
}

impl<'a> BitReaderFast<'a> {
    /// Creates a reader over `buf` containing exactly `bit_len` valid bits.
    pub fn new(buf: &'a [u8], bit_len: usize) -> Self {
        debug_assert!(bit_len <= buf.len() * 8);
        Self {
            buf,
            pos: 0,
            len: bit_len.min(buf.len() * 8),
        }
    }

    /// Number of unread bits remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Reads `n` bits in write order. Same contract as
    /// [`BitReader::read_bits`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if fewer than `n` bits remain, and
    /// [`Error::InvalidParameter`] if `n > MAX_BITS_PER_OP`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        if n > MAX_BITS_PER_OP {
            return Err(Error::InvalidParameter("read_bits width exceeds 56"));
        }
        if (n as usize) > self.remaining() {
            return Err(Error::UnexpectedEof);
        }
        let v = load_bits(self.buf, self.pos, n);
        self.pos += n as usize;
        Ok(v)
    }

    /// Peeks up to `n` bits without consuming; missing bits beyond the
    /// end of the stream read as zero. Same contract as
    /// [`BitReader::peek_bits_lenient`].
    #[inline]
    pub fn peek_bits_lenient(&self, n: u32) -> u64 {
        let avail = self.remaining().min(n as usize) as u32;
        load_bits(self.buf, self.pos, avail)
    }

    /// Consumes `n` bits previously peeked.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if fewer than `n` bits remain.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<()> {
        if (n as usize) > self.remaining() {
            return Err(Error::UnexpectedEof);
        }
        self.pos += n as usize;
        Ok(())
    }
}

/// Forward bit source: the interface shared by [`BitReader`] and
/// [`BitReaderFast`], letting decode loops (Huffman symbol reads, extra
/// bits) stay generic over the reference and fast engines.
pub trait BitSrc {
    /// Number of unread bits remaining.
    fn remaining(&self) -> usize;
    /// Reads `n` bits in write order; see [`BitReader::read_bits`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if fewer than `n` bits remain,
    /// and [`Error::InvalidParameter`] if `n > MAX_BITS_PER_OP`.
    fn read_bits(&mut self, n: u32) -> Result<u64>;
    /// Peeks up to `n` bits, zero-filling past the end of the stream.
    fn peek_bits_lenient(&self, n: u32) -> u64;
    /// Consumes `n` previously peeked bits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if fewer than `n` bits remain.
    fn consume(&mut self, n: u32) -> Result<()>;
}

impl BitSrc for BitReader<'_> {
    #[inline]
    fn remaining(&self) -> usize {
        BitReader::remaining(self)
    }
    #[inline]
    fn read_bits(&mut self, n: u32) -> Result<u64> {
        BitReader::read_bits(self, n)
    }
    #[inline]
    fn peek_bits_lenient(&self, n: u32) -> u64 {
        BitReader::peek_bits_lenient(self, n)
    }
    #[inline]
    fn consume(&mut self, n: u32) -> Result<()> {
        BitReader::consume(self, n)
    }
}

impl BitSrc for BitReaderFast<'_> {
    #[inline]
    fn remaining(&self) -> usize {
        BitReaderFast::remaining(self)
    }
    #[inline]
    fn read_bits(&mut self, n: u32) -> Result<u64> {
        BitReaderFast::read_bits(self, n)
    }
    #[inline]
    fn peek_bits_lenient(&self, n: u32) -> u64 {
        BitReaderFast::peek_bits_lenient(self, n)
    }
    #[inline]
    fn consume(&mut self, n: u32) -> Result<()> {
        BitReaderFast::consume(self, n)
    }
}

/// Back-to-front reader matching FSE's reverse decode order.
///
/// If the writer performed writes `W1, W2, ..., Wk`, this reader returns
/// the values of `Wk, ..., W2, W1` (each value reassembled exactly as
/// written) when the reads use the same widths in reverse order.
#[derive(Debug, Clone)]
pub struct ReverseBitReader<'a> {
    buf: &'a [u8],
    /// Number of valid bits not yet consumed, counted from the front.
    pos: usize,
}

impl<'a> ReverseBitReader<'a> {
    /// Creates a reverse reader over a buffer produced by
    /// [`BitWriter::finish_with_sentinel`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptData`] if the buffer is empty or its final
    /// byte is zero (no sentinel).
    pub fn from_sentinel(buf: &'a [u8]) -> Result<Self> {
        let last = *buf
            .last()
            .ok_or(Error::CorruptData("empty reverse bitstream"))?;
        if last == 0 {
            return Err(Error::CorruptData("missing sentinel bit"));
        }
        let sentinel_pos = (buf.len() - 1) * 8 + (7 - last.leading_zeros() as usize);
        Ok(Self {
            buf,
            pos: sentinel_pos,
        })
    }

    /// Number of unread bits remaining.
    pub fn remaining(&self) -> usize {
        self.pos
    }

    /// Reads the `n` most recently written bits, reassembled in write
    /// significance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if fewer than `n` bits remain, and
    /// [`Error::InvalidParameter`] if `n > MAX_BITS_PER_OP`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        if n > MAX_BITS_PER_OP {
            return Err(Error::InvalidParameter("read_bits width exceeds 56"));
        }
        if (n as usize) > self.pos {
            return Err(Error::UnexpectedEof);
        }
        self.pos -= n as usize;
        Ok(extract_bits(self.buf, self.pos, n))
    }
}

/// Word-at-a-time variant of [`ReverseBitReader`] with identical
/// semantics. Reverse streams start reading near the end of the buffer
/// (where fewer than 8 bytes remain under the position, hitting the
/// byte-looped fallback) and speed up as the position retreats into
/// full-word territory — the steady state for any stream longer than a
/// word.
#[derive(Debug, Clone)]
pub struct ReverseBitReaderFast<'a> {
    buf: &'a [u8],
    /// Number of valid bits not yet consumed, counted from the front.
    pos: usize,
}

impl<'a> ReverseBitReaderFast<'a> {
    /// Creates a reverse reader over a buffer produced by
    /// [`BitWriter::finish_with_sentinel`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptData`] if the buffer is empty or its final
    /// byte is zero (no sentinel).
    pub fn from_sentinel(buf: &'a [u8]) -> Result<Self> {
        let last = *buf
            .last()
            .ok_or(Error::CorruptData("empty reverse bitstream"))?;
        if last == 0 {
            return Err(Error::CorruptData("missing sentinel bit"));
        }
        let sentinel_pos = (buf.len() - 1) * 8 + (7 - last.leading_zeros() as usize);
        Ok(Self {
            buf,
            pos: sentinel_pos,
        })
    }

    /// Number of unread bits remaining.
    pub fn remaining(&self) -> usize {
        self.pos
    }

    /// Reads the `n` most recently written bits, reassembled in write
    /// significance. Same contract as [`ReverseBitReader::read_bits`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if fewer than `n` bits remain, and
    /// [`Error::InvalidParameter`] if `n > MAX_BITS_PER_OP`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        if n > MAX_BITS_PER_OP {
            return Err(Error::InvalidParameter("read_bits width exceeds 56"));
        }
        if (n as usize) > self.pos {
            return Err(Error::UnexpectedEof);
        }
        self.pos -= n as usize;
        Ok(load_bits(self.buf, self.pos, n))
    }
}

/// Reverse bit source: the interface shared by [`ReverseBitReader`] and
/// [`ReverseBitReaderFast`], letting FSE decode loops stay generic over
/// the reference and fast engines.
pub trait RevBitSrc {
    /// Number of unread bits remaining.
    fn remaining(&self) -> usize;
    /// Reads the `n` most recently written bits; see
    /// [`ReverseBitReader::read_bits`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnexpectedEof`] if fewer than `n` bits remain,
    /// and [`Error::InvalidParameter`] if `n > MAX_BITS_PER_OP`.
    fn read_bits(&mut self, n: u32) -> Result<u64>;
}

impl RevBitSrc for ReverseBitReader<'_> {
    #[inline]
    fn remaining(&self) -> usize {
        ReverseBitReader::remaining(self)
    }
    #[inline]
    fn read_bits(&mut self, n: u32) -> Result<u64> {
        ReverseBitReader::read_bits(self, n)
    }
}

impl RevBitSrc for ReverseBitReaderFast<'_> {
    #[inline]
    fn remaining(&self) -> usize {
        ReverseBitReaderFast::remaining(self)
    }
    #[inline]
    fn read_bits(&mut self, n: u32) -> Result<u64> {
        ReverseBitReaderFast::read_bits(self, n)
    }
}

/// Opens four reference [`BitReader`] cursors over four independent
/// substreams — the multi-stream entropy layout's reader bank. Each
/// cursor owns its own position and valid-bit length but all four share
/// the same refill discipline (and therefore the same EOF and zero-fill
/// semantics), so interleaved decode loops can rotate over them without
/// per-cursor special cases.
pub fn quad_readers<'a>(bufs: [&'a [u8]; 4], bit_lens: [usize; 4]) -> [BitReader<'a>; 4] {
    let [b0, b1, b2, b3] = bufs;
    let [l0, l1, l2, l3] = bit_lens;
    [
        BitReader::new(b0, l0),
        BitReader::new(b1, l1),
        BitReader::new(b2, l2),
        BitReader::new(b3, l3),
    ]
}

/// Word-refilling sibling of [`quad_readers`]: four [`BitReaderFast`]
/// cursors with bit-identical semantics, for the fast decode engines.
pub fn quad_readers_fast<'a>(bufs: [&'a [u8]; 4], bit_lens: [usize; 4]) -> [BitReaderFast<'a>; 4] {
    let [b0, b1, b2, b3] = bufs;
    let [l0, l1, l2, l3] = bit_lens;
    [
        BitReaderFast::new(b0, l0),
        BitReaderFast::new(b1, l1),
        BitReaderFast::new(b2, l2),
        BitReaderFast::new(b3, l3),
    ]
}

/// Loads `n <= 56` bits starting at absolute bit position `pos` with a
/// single unaligned 64-bit little-endian load when a full 8-byte window
/// fits in `buf`, falling back to [`extract_bits`] near the end of the
/// buffer. Returns exactly what `extract_bits(buf, pos, n)` returns for
/// every input: the shift is at most 7 bits, so `n + 7 <= 63` valid bits
/// always survive the word load.
#[inline]
#[deny(clippy::indexing_slicing)]
fn load_bits(buf: &[u8], pos: usize, n: u32) -> u64 {
    debug_assert!(n <= MAX_BITS_PER_OP);
    let byte = pos >> 3;
    match byte.checked_add(8).and_then(|end| buf.get(byte..end)) {
        Some(window) => {
            let word = u64::from_le_bytes(window.try_into().expect("window is 8 bytes"));
            (word >> (pos & 7)) & ((1u64 << n.min(MAX_BITS_PER_OP)) - 1)
        }
        None => extract_bits(buf, pos, n),
    }
}

/// Extracts `n` bits starting at absolute bit position `pos` (LSB-first).
/// Bits past the end of `buf` read as zero; callers bound `n` against the
/// valid bit length before calling.
#[inline]
#[deny(clippy::indexing_slicing)]
fn extract_bits(buf: &[u8], pos: usize, n: u32) -> u64 {
    debug_assert!(n <= MAX_BITS_PER_OP);
    let n = n.min(MAX_BITS_PER_OP);
    if n == 0 {
        return 0;
    }
    let first_byte = pos / 8;
    let bit_off = (pos % 8) as u32;
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    let mut bytes = buf.iter().skip(first_byte);
    // First (possibly partial) byte.
    if let Some(&b) = bytes.next() {
        acc = (b as u64) >> bit_off;
        filled = 8 - bit_off;
    }
    while filled < n {
        match bytes.next() {
            Some(&b) => {
                acc |= (b as u64) << filled;
                filled += 8;
            }
            None => break,
        }
    }
    acc & ((1u64 << n) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b1010, 4);
        w.write_bits(0xdead, 16);
        w.write_bits(0, 3);
        let (buf, bits) = w.finish();
        assert_eq!(bits, 24);
        let mut r = BitReader::new(&buf, bits);
        assert_eq!(r.read_bits(1).unwrap(), 0b1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
        assert_eq!(r.read_bits(16).unwrap(), 0xdead);
        assert_eq!(r.read_bits(3).unwrap(), 0);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_bits(1), Err(Error::UnexpectedEof));
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert!(w.is_empty());
        let (buf, bits) = w.finish();
        assert!(buf.is_empty());
        assert_eq!(bits, 0);
    }

    #[test]
    fn zero_width_ops() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        w.write_bits(0b11, 2);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
    }

    #[test]
    fn reverse_reader_lifo() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0x3f, 6);
        w.write_bits(0x1234, 13);
        let buf = w.finish_with_sentinel();
        let mut r = ReverseBitReader::from_sentinel(&buf).unwrap();
        assert_eq!(r.read_bits(13).unwrap(), 0x1234);
        assert_eq!(r.read_bits(6).unwrap(), 0x3f);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_bits(1), Err(Error::UnexpectedEof));
    }

    #[test]
    fn reverse_reader_rejects_empty_and_zero_tail() {
        assert!(ReverseBitReader::from_sentinel(&[]).is_err());
        assert!(ReverseBitReader::from_sentinel(&[0u8]).is_err());
    }

    #[test]
    fn sentinel_only_stream() {
        let w = BitWriter::new();
        let buf = w.finish_with_sentinel();
        let r = ReverseBitReader::from_sentinel(&buf).unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn peek_lenient_past_end() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let (buf, bits) = w.finish();
        let r = BitReader::new(&buf, bits);
        // Peeking 8 bits when only 2 remain: missing bits read as zero.
        assert_eq!(r.peek_bits_lenient(8), 0b11);
    }

    #[test]
    fn read_bits_rejects_truncated_stream() {
        // Buffer physically holds 16 bits but only 9 are valid: reads past
        // the valid length must fail, not expose padding.
        let buf = [0xff, 0xff];
        let mut r = BitReader::new(&buf, 9);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert_eq!(r.read_bits(2), Err(Error::UnexpectedEof));
        // Position is unchanged after a failed read.
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn read_bits_rejects_oversized_width() {
        let buf = [0u8; 16];
        let mut r = BitReader::new(&buf, 128);
        assert!(matches!(r.read_bits(57), Err(Error::InvalidParameter(_))));
        let sbuf = [0u8, 0x80];
        let mut rr = ReverseBitReader::from_sentinel(&sbuf).unwrap();
        assert!(matches!(rr.read_bits(57), Err(Error::InvalidParameter(_))));
    }

    #[test]
    fn consume_rejects_truncated_stream() {
        let buf = [0xabu8];
        let mut r = BitReader::new(&buf, 5);
        assert_eq!(r.consume(9), Err(Error::UnexpectedEof));
        assert_eq!(r.remaining(), 5);
        r.consume(5).unwrap();
        assert_eq!(r.consume(1), Err(Error::UnexpectedEof));
    }

    #[test]
    fn peek_lenient_never_reads_past_buffer() {
        // 3 valid bits in a 1-byte buffer; a 56-bit peek must stay in
        // bounds and zero-fill the missing bits.
        let buf = [0b0000_0101u8];
        let r = BitReader::new(&buf, 3);
        assert_eq!(r.peek_bits_lenient(56), 0b101);
        // Empty stream peeks as zero.
        let empty = BitReader::new(&[], 0);
        assert_eq!(empty.peek_bits_lenient(8), 0);
    }

    #[test]
    fn reverse_read_bits_rejects_truncated_stream() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let buf = w.finish_with_sentinel();
        let mut r = ReverseBitReader::from_sentinel(&buf).unwrap();
        // Asking for more bits than were written fails without panicking.
        assert_eq!(r.read_bits(5), Err(Error::UnexpectedEof));
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(1), Err(Error::UnexpectedEof));
    }

    #[test]
    fn from_sentinel_rejects_truncated_tails() {
        // Every prefix of a valid sentinel stream whose final byte is zero
        // must be rejected rather than mis-synchronized.
        let mut w = BitWriter::new();
        w.write_bits(0xffff, 16);
        w.write_bits(0, 8);
        let buf = w.finish_with_sentinel();
        assert!(ReverseBitReader::from_sentinel(&buf[..3]).is_err());
        assert!(ReverseBitReader::from_sentinel(&[]).is_err());
    }

    /// Deterministic xorshift so parity tests don't need an external RNG.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn fast_forward_reader_matches_reference() {
        let mut state = 0x5157u64;
        for round in 0..64 {
            let mut w = BitWriter::new();
            let mut widths = Vec::new();
            for _ in 0..(round + 1) {
                let n = (xorshift(&mut state) % 57) as u32;
                let v = if n == 0 {
                    0
                } else {
                    xorshift(&mut state) & ((1u64 << n) - 1)
                };
                w.write_bits(v, n);
                widths.push(n);
            }
            let (buf, bits) = w.finish();
            let mut slow = BitReader::new(&buf, bits);
            let mut fast = BitReaderFast::new(&buf, bits);
            for &n in &widths {
                assert_eq!(slow.peek_bits_lenient(11), fast.peek_bits_lenient(11));
                assert_eq!(slow.read_bits(n), fast.read_bits(n));
                assert_eq!(slow.remaining(), fast.remaining());
            }
            // Both agree on the EOF error too.
            assert_eq!(slow.read_bits(1), fast.read_bits(1));
        }
    }

    #[test]
    fn fast_reverse_reader_matches_reference() {
        let mut state = 0x20823u64;
        for round in 0..64 {
            let mut w = BitWriter::new();
            let mut widths = Vec::new();
            for _ in 0..(round + 1) {
                let n = (xorshift(&mut state) % 57) as u32;
                let v = if n == 0 {
                    0
                } else {
                    xorshift(&mut state) & ((1u64 << n) - 1)
                };
                w.write_bits(v, n);
                widths.push(n);
            }
            let buf = w.finish_with_sentinel();
            let mut slow = ReverseBitReader::from_sentinel(&buf).unwrap();
            let mut fast = ReverseBitReaderFast::from_sentinel(&buf).unwrap();
            assert_eq!(slow.remaining(), fast.remaining());
            for &n in widths.iter().rev() {
                assert_eq!(slow.read_bits(n), fast.read_bits(n));
                assert_eq!(slow.remaining(), fast.remaining());
            }
            assert_eq!(slow.read_bits(1), fast.read_bits(1));
        }
    }

    #[test]
    fn fast_readers_match_on_truncated_and_hostile_buffers() {
        // Truncated valid-length: only 9 of 16 physical bits valid.
        let buf = [0xff, 0xff];
        let mut slow = BitReader::new(&buf, 9);
        let mut fast = BitReaderFast::new(&buf, 9);
        assert_eq!(slow.read_bits(8), fast.read_bits(8));
        assert_eq!(slow.read_bits(2), fast.read_bits(2));
        assert_eq!(slow.read_bits(1), fast.read_bits(1));
        // Oversized width errors identically.
        let mut slow = BitReader::new(&buf, 16);
        let mut fast = BitReaderFast::new(&buf, 16);
        assert_eq!(slow.read_bits(57), fast.read_bits(57));
        // Reverse: rejects empty / zero-tail buffers identically.
        assert_eq!(
            ReverseBitReader::from_sentinel(&[]).map(|r| r.remaining()),
            ReverseBitReaderFast::from_sentinel(&[]).map(|r| r.remaining())
        );
        assert_eq!(
            ReverseBitReader::from_sentinel(&[0u8]).map(|r| r.remaining()),
            ReverseBitReaderFast::from_sentinel(&[0u8]).map(|r| r.remaining())
        );
    }

    #[test]
    fn load_bits_matches_extract_bits_at_every_offset() {
        // A 24-byte buffer exercises both the word path and the tail
        // fallback as `pos` sweeps the whole range.
        let buf: Vec<u8> = (0..24u8)
            .map(|b| b.wrapping_mul(37).wrapping_add(11))
            .collect();
        for pos in 0..buf.len() * 8 {
            for n in 0..=MAX_BITS_PER_OP {
                assert_eq!(
                    load_bits(&buf, pos, n),
                    extract_bits(&buf, pos, n),
                    "pos={pos} n={n}"
                );
            }
        }
    }

    #[test]
    fn quad_reader_banks_match_single_cursors() {
        // Four substreams with different lengths; the bank cursors must
        // behave exactly like independently constructed readers.
        let streams: Vec<(Vec<u8>, usize)> = (0..4u64)
            .map(|k| {
                let mut w = BitWriter::new();
                for i in 0..(k + 1) * 3 {
                    w.write_bits((i * 7 + k) & 0x1f, 5);
                }
                let (buf, bits) = w.finish();
                (buf, bits)
            })
            .collect();
        let bufs = [
            streams[0].0.as_slice(),
            streams[1].0.as_slice(),
            streams[2].0.as_slice(),
            streams[3].0.as_slice(),
        ];
        let lens = [streams[0].1, streams[1].1, streams[2].1, streams[3].1];
        let mut bank = quad_readers(bufs, lens);
        let mut bank_fast = quad_readers_fast(bufs, lens);
        for (k, (buf, bits)) in streams.iter().enumerate() {
            let mut single = BitReader::new(buf, *bits);
            loop {
                let want = single.read_bits(5);
                assert_eq!(bank[k].read_bits(5), want, "stream {k}");
                assert_eq!(bank_fast[k].read_bits(5), want, "stream {k} fast");
                if want.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn long_values_cross_many_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0x00ab_cdef_0123, 48);
        w.write_bits(0x5a, 7);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        assert_eq!(r.read_bits(48).unwrap(), 0x00ab_cdef_0123);
        assert_eq!(r.read_bits(7).unwrap(), 0x5a);
    }
}
