//! Symbol histograms and power-of-two count normalization.
//!
//! FSE requires symbol frequencies normalized so they sum to an exact
//! power of two (`1 << table_log`) with every present symbol keeping at
//! least one slot. [`normalize_counts`] implements a largest-remainder
//! normalization with that guarantee, mirroring the role of
//! `FSE_normalizeCount` in the reference implementation.

use crate::{Error, Result};

/// Counts occurrences of each byte value in `data`.
///
/// # Example
///
/// ```
/// let h = entropy::hist::byte_histogram(b"aab");
/// assert_eq!(h[b'a' as usize], 2);
/// assert_eq!(h[b'b' as usize], 1);
/// ```
// indexing_slicing: `h` has exactly 256 slots and `b as usize` is a
// `u8` widened, so the index is always < 256.
#[allow(clippy::indexing_slicing)]
pub fn byte_histogram(data: &[u8]) -> [u32; 256] {
    let mut h = [0u32; 256];
    for &b in data {
        h[b as usize] += 1;
    }
    h
}

/// Counts occurrences of each symbol in `symbols`, where symbols are drawn
/// from `0..alphabet_size`.
///
/// # Panics
///
/// Panics if any symbol is `>= alphabet_size`.
// indexing_slicing: panicking on an out-of-alphabet symbol is this
// function's documented contract (encode-side input validation).
#[allow(clippy::indexing_slicing)]
pub fn symbol_histogram(symbols: &[u16], alphabet_size: usize) -> Vec<u32> {
    let mut h = vec![0u32; alphabet_size];
    for &s in symbols {
        h[s as usize] += 1;
    }
    h
}

/// Number of distinct symbols with non-zero count.
pub fn cardinality(freqs: &[u32]) -> usize {
    freqs.iter().filter(|&&c| c > 0).count()
}

/// Index of the most frequent symbol, or `None` for an all-zero histogram.
pub fn dominant_symbol(freqs: &[u32]) -> Option<usize> {
    let (idx, &max) = freqs.iter().enumerate().max_by_key(|&(_, &c)| c)?;
    (max > 0).then_some(idx)
}

/// Shannon entropy of the histogram, in bits per symbol.
///
/// Returns 0.0 for empty histograms.
pub fn shannon_entropy(freqs: &[u32]) -> f64 {
    let total: u64 = freqs.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    freqs
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total_f;
            -p * p.log2()
        })
        .sum()
}

/// Normalizes `freqs` so the counts sum to exactly `1 << table_log`.
///
/// Every symbol with a non-zero input count receives at least one slot.
/// Slots are apportioned proportionally and the remainder is distributed
/// to the symbols with the largest fractional parts (largest-remainder
/// method), falling back to shaving the biggest holders when the minimum-
/// one-slot rule forces an overshoot.
///
/// # Errors
///
/// * [`Error::InvalidParameter`] if `table_log` is outside `5..=15` or the
///   histogram is empty.
/// * [`Error::InvalidParameter`] if the alphabet has more present symbols
///   than `1 << table_log` slots.
// indexing_slicing: encode-side table construction. `norm` is sized
// `freqs.len()` and every index into `norm`/`freqs` comes from
// enumerating those same slices; `remainders[k % remainders.len()]` is
// only reached when `deficit > 0`, which requires at least one present
// symbol and hence a non-empty `remainders`.
#[allow(clippy::indexing_slicing)]
pub fn normalize_counts(freqs: &[u32], table_log: u32) -> Result<Vec<u32>> {
    if !(5..=15).contains(&table_log) {
        return Err(Error::InvalidParameter("table_log must be in 5..=15"));
    }
    let table_size = 1u64 << table_log;
    let total: u64 = freqs.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return Err(Error::InvalidParameter("cannot normalize empty histogram"));
    }
    let present = cardinality(freqs) as u64;
    if present > table_size {
        return Err(Error::InvalidParameter("alphabet larger than FSE table"));
    }

    let mut norm = vec![0u32; freqs.len()];
    // Fractional apportionment: ideal share is count * table_size / total.
    let mut assigned: u64 = 0;
    let mut remainders: Vec<(u64, usize)> = Vec::new();
    for (i, &c) in freqs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let scaled = (c as u64) * table_size;
        let share = (scaled / total).max(1);
        let rem = scaled % total;
        norm[i] = share as u32;
        assigned += share;
        remainders.push((rem, i));
    }

    use std::cmp::Ordering;
    match assigned.cmp(&table_size) {
        Ordering::Equal => {}
        Ordering::Less => {
            // Hand extra slots to the largest fractional remainders,
            // breaking ties toward the most frequent symbol.
            let mut deficit = (table_size - assigned) as usize;
            remainders.sort_by(|a, b| b.0.cmp(&a.0).then(freqs[b.1].cmp(&freqs[a.1])));
            let mut k = 0;
            while deficit > 0 {
                let (_, i) = remainders[k % remainders.len()];
                norm[i] += 1;
                deficit -= 1;
                k += 1;
            }
        }
        Ordering::Greater => {
            // Minimum-one-slot rule overshot: shave the biggest holders.
            let mut excess = assigned - table_size;
            while excess > 0 {
                let i = norm
                    .iter()
                    .enumerate()
                    .filter(|&(_, &n)| n > 1)
                    .max_by_key(|&(_, &n)| n)
                    .map(|(i, _)| i)
                    .ok_or(Error::InvalidParameter("cannot shave normalized counts"))?;
                let take = ((norm[i] - 1) as u64).min(excess);
                norm[i] -= take as u32;
                excess -= take;
            }
        }
    }

    debug_assert_eq!(norm.iter().map(|&n| n as u64).sum::<u64>(), table_size);
    Ok(norm)
}

/// Picks a reasonable FSE table log for `n_symbols` of data over an
/// alphabet with `cardinality` present symbols.
///
/// Mirrors the heuristic role of `FSE_optimalTableLog`: small inputs get
/// small tables (which is also the mechanism behind the paper's
/// observation in Section IV-E that Zstd shrinks its tables for small
/// inputs).
pub fn optimal_table_log(max_log: u32, n_symbols: usize, cardinality: usize) -> u32 {
    let mut log = max_log;
    // No point making the table bigger than the input.
    let input_log = (n_symbols.max(2) as f64).log2().ceil() as u32;
    log = log.min(input_log.saturating_sub(2).max(5));
    // Must at least fit every present symbol.
    let min_log = (cardinality.max(2) as f64).log2().ceil() as u32;
    log = log.max(min_log).max(5);
    log.min(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts() {
        let h = byte_histogram(b"hello");
        assert_eq!(h[b'l' as usize], 2);
        assert_eq!(h[b'h' as usize], 1);
        assert_eq!(cardinality(&h), 4);
        assert_eq!(dominant_symbol(&h), Some(b'l' as usize));
    }

    #[test]
    fn dominant_of_empty_is_none() {
        assert_eq!(dominant_symbol(&[0, 0, 0]), None);
    }

    #[test]
    fn entropy_bounds() {
        // Uniform over 256 symbols -> 8 bits.
        let h = [1u32; 256];
        assert!((shannon_entropy(&h) - 8.0).abs() < 1e-9);
        // Single symbol -> 0 bits.
        let mut h = [0u32; 256];
        h[42] = 100;
        assert_eq!(shannon_entropy(&h), 0.0);
        // Empty -> 0 bits.
        assert_eq!(shannon_entropy(&[0u32; 8]), 0.0);
    }

    #[test]
    fn normalize_sums_to_table_size() {
        let mut freqs = vec![0u32; 16];
        freqs[0] = 1000;
        freqs[1] = 300;
        freqs[2] = 7;
        freqs[3] = 1;
        let norm = normalize_counts(&freqs, 8).unwrap();
        assert_eq!(norm.iter().map(|&n| n as u64).sum::<u64>(), 256);
        // Present symbols keep at least one slot.
        assert!(norm[2] >= 1);
        assert!(norm[3] >= 1);
        // Proportions roughly respected.
        assert!(norm[0] > norm[1]);
        assert!(norm[1] > norm[2]);
    }

    #[test]
    fn normalize_many_rare_symbols() {
        // 64 symbols, each count 1, table of 64: exactly one slot each.
        let freqs = vec![1u32; 64];
        let norm = normalize_counts(&freqs, 6).unwrap();
        assert!(norm.iter().all(|&n| n == 1));
    }

    #[test]
    fn normalize_overshoot_shaves() {
        // 31 rare symbols + 1 huge one in a 32-slot table: rare symbols
        // each get forced to 1 slot, big symbol must end with exactly 1.
        let mut freqs = vec![1u32; 32];
        freqs[0] = 1_000_000;
        let norm = normalize_counts(&freqs, 5).unwrap();
        assert_eq!(norm.iter().map(|&n| n as u64).sum::<u64>(), 32);
        assert!(norm.iter().all(|&n| n >= 1));
    }

    #[test]
    fn normalize_rejects_bad_params() {
        assert!(normalize_counts(&[1, 1], 4).is_err());
        assert!(normalize_counts(&[1, 1], 16).is_err());
        assert!(normalize_counts(&[0, 0], 8).is_err());
        let too_many = vec![1u32; 40];
        assert!(normalize_counts(&too_many, 5).is_err());
    }

    #[test]
    fn optimal_log_shrinks_for_small_inputs() {
        let small = optimal_table_log(11, 64, 16);
        let large = optimal_table_log(11, 1 << 20, 16);
        assert!(small < large);
        assert_eq!(large, 11);
        assert!(small >= 5);
    }

    #[test]
    fn optimal_log_fits_alphabet() {
        assert!(optimal_table_log(11, 32, 200) >= 8);
    }
}
