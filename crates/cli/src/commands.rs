//! Subcommand implementations.

use std::fs;

use codecs::{Algorithm, Dictionary};
use compopt::prelude::*;

use crate::args::Args;

const USAGE: &str =
    "datacomp <compress|decompress|bench|train-dict|optimize|gen|fleet|profile|trace|telemetry|fault-inject|chaos|monitor|serve|loadgen> ...";

/// Dispatches a parsed command line.
///
/// Every command accepts `--telemetry <path>`: after the command runs,
/// the global telemetry snapshot (codec counters, span timings, latency
/// histograms) is written to `<path>` as JSON and to `<path>.prom` in
/// Prometheus text format. Every command also accepts `--trace <path>`:
/// the flight recorder is drained after the command and written to
/// `<path>` as Chrome trace-event JSON (open in Perfetto or
/// `chrome://tracing`). The trace drains first, so per-track drop
/// counts surface as `trace.dropped` gauges in the same run's
/// `--telemetry` snapshot.
///
/// # Errors
///
/// Returns a human-readable message for any usage or IO failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(format!("usage: {USAGE}"));
    };
    let args = Args::parse(rest)?;
    let result = match cmd.as_str() {
        "compress" => compress(&args),
        "decompress" => decompress(&args),
        "bench" => bench(&args),
        "train-dict" => train_dict(&args),
        "optimize" => optimize(&args),
        "gen" => gen(&args),
        // `profile` is the direct spelling of `fleet profile`.
        "fleet" | "profile" => fleet_tables(&args),
        "trace" => trace_cmd(&args),
        "telemetry" => telemetry_dump(&args),
        "fault-inject" => fault_inject(&args),
        "chaos" => chaos(&args),
        "monitor" => monitor(&args),
        "serve" => serve(&args),
        "loadgen" => loadgen(&args),
        other => Err(format!("unknown command {other}; usage: {USAGE}")),
    };
    if result.is_ok() {
        if let Some(path) = args.options.get("trace") {
            write_trace(path)?;
        }
        if let Some(path) = args.options.get("telemetry") {
            write_telemetry(path)?;
        }
    }
    result
}

/// Writes the global telemetry snapshot to `path` (JSON) and
/// `path.prom` (Prometheus text exposition).
fn write_telemetry(path: &str) -> Result<(), String> {
    let snap = telemetry::snapshot();
    fs::write(path, telemetry::export::to_json(&snap))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    let prom_path = format!("{path}.prom");
    fs::write(&prom_path, telemetry::export::to_prometheus(&snap))
        .map_err(|e| format!("cannot write {prom_path}: {e}"))?;
    println!(
        "telemetry: {} series -> {path}, {prom_path}",
        snap.series.len()
    );
    Ok(())
}

/// Drains the global flight recorder and writes the events to `path`
/// as Chrome trace-event JSON. Per-track drop counts are published as
/// `trace.dropped{track=...}` gauges so they also appear in telemetry
/// snapshots taken afterwards.
fn write_trace(path: &str) -> Result<(), String> {
    let snap = telemetry::global_tracer().drain();
    let reg = telemetry::global();
    for t in &snap.tracks {
        if t.dropped > 0 {
            reg.gauge("trace.dropped", &[("track", t.name.as_str())])
                .set(t.dropped as f64);
        }
    }
    // Tail-sampled request span trees ride along as flow-linked
    // events, so a slow or errored request is one arrow away from the
    // raw per-thread timeline in Perfetto.
    let sampled = telemetry::requests().sampled();
    fs::write(
        path,
        telemetry::chrome::to_chrome_json_with_requests(&snap, &sampled),
    )
    .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "trace: {} events on {} tracks ({} dropped), {} sampled requests -> {path}",
        snap.event_count(),
        snap.tracks.len(),
        snap.dropped_total(),
        sampled.len()
    );
    Ok(())
}

/// `datacomp trace <out.json> [--units N]` — records a representative
/// trace in one shot: a fleet profile (one track per service, per-block
/// codec stage events) plus a small CompOpt evaluation (decision
/// events), drained to `out.json` for Perfetto.
fn trace_cmd(args: &Args) -> Result<(), String> {
    args.need(1, "datacomp trace <out.json> [--units N]")?;
    let units = args.opt_or("units", 1usize)?;
    let profile = fleet::profile_fleet(&fleet::ProfileConfig {
        work_units: units,
        seed: 30,
        stage_deadline_nanos: 0,
    });
    profile.record_to(telemetry::global());
    trace_decision_demo();
    write_trace(&args.positionals[0])
}

/// Runs a small CompOpt evaluation purely for its trace side effect:
/// one decision event per candidate, so profile-style traces also
/// explain what the optimizer would pick on representative data.
fn trace_decision_demo() {
    let samples: Vec<Vec<u8>> = (0..2)
        .map(|i| corpus::silesia::generate(corpus::silesia::FileClass::Log, 16 * 1024, i))
        .collect();
    let refs: Vec<&[u8]> = samples.iter().map(|v| v.as_slice()).collect();
    let mut engine = CompEngine::new();
    engine.add_levels(Algorithm::Zstdx, [1, 3]);
    engine.add_levels(Algorithm::Lz4x, [1]);
    let measured = engine.measure(&refs);
    let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, 30.0);
    let _ = evaluate_all(
        &measured,
        &params,
        CostWeights::ALL,
        &[Constraint::MinCompressionSpeedMbps(200.0)],
    );
}

/// `datacomp telemetry [--format json|prom]` — prints the global
/// snapshot accumulated so far in this process. Mostly useful after
/// another in-process command populated it (see `--telemetry` for the
/// file-writing variant that composes with every command).
fn telemetry_dump(args: &Args) -> Result<(), String> {
    let snap = telemetry::snapshot();
    match args.options.get("format").map(String::as_str) {
        None | Some("json") => println!("{}", telemetry::export::to_json(&snap)),
        Some("prom") => print!("{}", telemetry::export::to_prometheus(&snap)),
        Some(other) => return Err(format!("unknown format {other}; pick json|prom")),
    }
    Ok(())
}

/// `datacomp fault-inject [--seed N] [--injector A,B] [--algo X,Y]
/// [--budget N] [--block-size BYTES] [--level N] [--checksums on|off]`
/// — sweeps corruption injectors over every codec and corpus class,
/// asserting the decode contract (no panics, no silent wrong bytes, no
/// allocation past the decode limit). Prints the outcome table and
/// fails the process on any contract violation, so CI can gate on it.
fn fault_inject(args: &Args) -> Result<(), String> {
    use faultline::{dict_skew_probe, sweep, Injector, Outcome, SweepConfig};

    let cfg = SweepConfig {
        seed: args.opt_or("seed", 0x5157u64)?,
        budget_per_block: args.opt_or("budget", 64usize)?,
        level: args.opt_or("level", 3)?,
        checksums: match args.options.get("checksums").map(String::as_str) {
            None | Some("on") => true,
            Some("off") => false,
            Some(other) => return Err(format!("bad --checksums {other}; pick on|off")),
        },
    };
    let injectors: Vec<Injector> = match args.options.get("injector") {
        None => Injector::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|s| {
                Injector::from_name(s.trim()).ok_or_else(|| {
                    format!(
                        "unknown injector {s}; pick one of {}",
                        Injector::ALL.map(|i| i.name()).join(",")
                    )
                })
            })
            .collect::<Result<_, _>>()?,
    };
    let algos: Vec<Algorithm> = match args.options.get("algo") {
        None => Algorithm::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse())
            .collect::<Result<_, _>>()?,
    };
    let block_size = args.opt_or("block-size", 64usize << 10)?;
    let blocks: Vec<Vec<u8>> = corpus::silesia::FileClass::ALL
        .into_iter()
        .map(|c| corpus::silesia::generate(c, block_size, cfg.seed ^ c.name().len() as u64))
        .collect();

    let report = sweep(&blocks, &injectors, &algos, &cfg);
    // Publish the sweep outcome as counters so a `--telemetry` snapshot
    // (or a live `/metrics` scrape in the same process) carries the
    // contract-violation record alongside the printed table.
    let reg = telemetry::global();
    for ((inj, codec), cell) in &report.cells {
        let labels = [("injector", *inj), ("codec", *codec)];
        reg.counter("faultline.cases", &labels)
            .add(cell.cases as u64);
        reg.counter("faultline.detected", &labels)
            .add(cell.error_detected as u64);
        reg.counter("faultline.intact", &labels)
            .add(cell.ok_intact as u64);
        reg.counter("faultline.violations", &labels)
            .add(cell.violations() as u64);
    }
    print!("{}", report.render_table());
    let kinds = report.error_kinds();
    for (kind, n) in &kinds {
        reg.counter("faultline.error_kind", &[("kind", kind)])
            .add(*n as u64);
    }
    if !kinds.is_empty() {
        let summary: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
        println!("error kinds: {}", summary.join(" "));
    }
    // The true dictionary-skew path (wrong generation supplied) on top
    // of the header-level dict-skew injector.
    for algo in &algos {
        let (outcome, kind) = dict_skew_probe(*algo, &blocks[0], &cfg);
        println!(
            "dict-skew probe   {:<8} {:?}{}",
            algo.name(),
            outcome,
            kind.map(|k| format!(" ({k})")).unwrap_or_default()
        );
        if matches!(outcome, Outcome::Panicked | Outcome::SilentCorruption) {
            return Err(format!(
                "dict-skew probe violated the decode contract on {algo}"
            ));
        }
    }
    if report.violations() > 0 {
        return Err(format!(
            "{} decode-contract violations (of {} cases)",
            report.violations(),
            report.total_cases()
        ));
    }
    println!(
        "decode contract held: {} cases, 0 violations",
        report.total_cases()
    );
    Ok(())
}

/// `datacomp chaos [--seed N] [--ops N] [--mix A,B] [--injector A,B]`
/// — the operational chaos sweep: runs a real managed-compression
/// service per (injector × fleet mix) cell on a manual clock, injects
/// seed-deterministic operational faults (latency spikes, codec error
/// bursts, clock skew), and asserts the resilience invariants — typed
/// errors only, retry volume inside the token-bucket budget, breakers
/// that open under sustained errors and recover after them, a brownout
/// ladder whose degraded frames still round-trip, and a typed
/// `DeadlineExceeded` for expired budgets. Prints the verdict table and
/// fails the process on any violation, so CI can gate on it.
fn chaos(args: &Args) -> Result<(), String> {
    use faultline::{ChaosConfig, OpInjectorKind};

    let mut cfg = ChaosConfig {
        seed: args.opt_or("seed", ChaosConfig::default().seed)?,
        ops: args.opt_or("ops", ChaosConfig::default().ops)?,
        ..ChaosConfig::default()
    };
    if cfg.ops == 0 {
        return Err("bad --ops 0; need at least one operation per cell".to_string());
    }
    if let Some(list) = args.options.get("injector") {
        cfg.injectors = list
            .split(',')
            .map(|s| {
                OpInjectorKind::from_name(s.trim()).ok_or_else(|| {
                    format!(
                        "unknown injector {s}; pick one of {}",
                        OpInjectorKind::ALL.map(|k| k.name()).join(",")
                    )
                })
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(list) = args.options.get("mix") {
        // Resolve against the fleet registry so cells replay real
        // workloads (and typos fail fast with the valid names).
        let registry = fleet::registry();
        cfg.mixes = list
            .split(',')
            .map(|s| {
                registry
                    .iter()
                    .find(|spec| spec.name.eq_ignore_ascii_case(s.trim()))
                    .map(|spec| spec.name)
                    .ok_or_else(|| {
                        let names: Vec<String> = registry
                            .iter()
                            .map(|spec| spec.name.to_ascii_lowercase())
                            .collect();
                        format!("unknown mix {s}; pick one of {}", names.join("|"))
                    })
            })
            .collect::<Result<_, _>>()?;
    }

    let report = faultline::chaos_run(&cfg);
    print!("{}", report.render_table());

    // Publish the sweep outcome so a `--telemetry` snapshot (or a live
    // `/metrics` scrape in the same process) carries the verdicts.
    let reg = telemetry::global();
    for cell in &report.cells {
        let labels = [("injector", cell.injector.name()), ("mix", cell.mix)];
        reg.counter("resilience.chaos.requests", &labels)
            .add(cell.requests);
        reg.counter("resilience.chaos.typed_errors", &labels)
            .add(cell.typed_errors as u64);
        reg.counter("resilience.chaos.injected", &labels)
            .add(cell.injected);
        reg.counter("resilience.chaos.retries_granted", &labels)
            .add(cell.retries_granted);
        reg.counter("resilience.chaos.violations", &labels)
            .add(cell.violations.len() as u64);
    }
    reg.counter("resilience.chaos.cells", &[])
        .add(report.cells.len() as u64);

    if report.violations() > 0 {
        return Err(format!(
            "{} resilience-invariant violations across {} cells",
            report.violations(),
            report.cells.len()
        ));
    }
    println!(
        "resilience invariants held: {} cells, 0 violations",
        report.cells.len()
    );
    Ok(())
}

/// `datacomp monitor [--addr HOST:PORT] [--workload NAME] [--seconds S]
/// [--slo-ms MS] [--slo-target F] [--error-target F] [--addr-file PATH]`
/// — the live observability plane in one command: registers latency and
/// error-rate SLOs, starts the HTTP scrape server (`/metrics`, `/slo`,
/// `/healthz`, `/trace.json`), and replays one fleet service's workload
/// through the managed compression service until the deadline. Every
/// replayed block feeds the windowed registries and the SLO burn-rate
/// engine, so a Prometheus scrape during the run sees live `window_*`
/// p99s (with trace exemplars) and `slo_*` gauges. Exits non-zero when
/// any objective's cumulative error budget is exhausted, so the command
/// doubles as a canary gate.
///
/// `--addr 127.0.0.1:0` picks a free port; `--addr-file` writes the
/// resolved address for scripted scrapers (tests, CI smoke jobs).
///
/// `--chaos-seed N` replays the same traffic with operational faults: a
/// seed-deterministic error burst is injected into the managed service
/// mid-run (via its fault hook), the SLO windows are shrunk so burn
/// rates move within the run, and the exit gate flips from "budget
/// intact" to "the error SLO left Ok (Warning or Burning) during the
/// burst and recovered to Ok by the end" — proving the burn-rate
/// machinery detects and releases a real incident. Needs `--seconds`
/// of at least 5 so the recovery window can drain.
fn monitor(args: &Args) -> Result<(), String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let addr = args
        .options
        .get("addr")
        .map_or("127.0.0.1:9184", String::as_str);
    let workload = args
        .options
        .get("workload")
        .map_or("cache1", String::as_str);
    let seconds: f64 = args.opt_or("seconds", 10.0)?;
    if !seconds.is_finite() || seconds <= 0.0 {
        return Err(format!("bad --seconds {seconds}; need a positive number"));
    }
    let slo_ms: f64 = args.opt_or("slo-ms", 5.0)?;
    let slo_target: f64 = args.opt_or("slo-target", 0.99)?;
    let error_target: f64 = args.opt_or("error-target", 0.999)?;
    let chaos_seed: Option<u64> = match args.options.get("chaos-seed") {
        None => None,
        Some(s) => Some(
            s.parse()
                .map_err(|e| format!("bad --chaos-seed {s}: {e}"))?,
        ),
    };
    if chaos_seed.is_some() && seconds < 5.0 {
        return Err(format!(
            "--chaos-seed needs --seconds >= 5 to fit the fault burst and the recovery window (got {seconds})"
        ));
    }

    let spec = fleet::registry()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(workload))
        .ok_or_else(|| {
            let names: Vec<String> = fleet::registry()
                .iter()
                .map(|s| s.name.to_ascii_lowercase())
                .collect();
            format!(
                "unknown workload {workload}; pick one of {}",
                names.join("|")
            )
        })?;

    // Declare the objectives the managed service feeds by well-known
    // name. Registration must precede the replay (and the addr-file
    // handshake) so every sample lands in an SLO window.
    let slos = telemetry::slos();
    let threshold = (slo_ms * 1e6) as u64;
    // Chaos runs shrink both burn windows so a mid-run fault burst can
    // push an objective through Warning/Burning *and* drain back to Ok
    // within a single short replay.
    let shaped = |cfg: telemetry::SloConfig| {
        if chaos_seed.is_some() {
            cfg.with_windows(
                telemetry::WindowConfig::new(200_000_000, 10), // 2 s fast
                telemetry::WindowConfig::new(300_000_000, 10), // 3 s slow
            )
        } else {
            cfg
        }
    };
    slos.register(shaped(telemetry::SloConfig::latency(
        "managed.compress.latency",
        threshold,
        slo_target,
    )));
    slos.register(shaped(telemetry::SloConfig::latency(
        "managed.decompress.latency",
        threshold,
        slo_target,
    )));
    slos.register(shaped(telemetry::SloConfig::error_rate(
        "managed.decompress.errors",
        error_target,
    )));

    let server = telemetry::ScrapeServer::bind(addr, telemetry::Sources::global())
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server.local_addr();
    if let Some(path) = args.options.get("addr-file") {
        fs::write(path, local.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    println!("monitor: serving /metrics /slo /healthz /trace.json on http://{local}/");
    println!(
        "monitor: replaying {} ({}) for {seconds}s",
        spec.name, spec.description
    );

    telemetry::trace::set_track_name(&format!("monitor:{}", spec.name));
    let mut svc = managed::ManagedCompression::new(managed::ManagedConfig::default());
    let t0 = Instant::now();
    if let Some(seed) = chaos_seed {
        // Operational fault burst: between 15% and 40% of the run,
        // ~70% of decode attempts (seed-deterministic per consult)
        // fail transiently. The service's own resilience machinery
        // (retries under budget, breakers, quarantine) responds; what
        // leaks through drives the error-rate SLO into its burn.
        let consults = Arc::new(AtomicU64::new(0));
        let (burst_from, burst_to) = (seconds * 0.15, seconds * 0.40);
        let hook: managed::FaultHook = Arc::new(move |site| {
            if site.op != "decompress" {
                return false;
            }
            let t = t0.elapsed().as_secs_f64();
            if t < burst_from || t > burst_to {
                return false;
            }
            let n = consults.fetch_add(1, Ordering::Relaxed);
            faultline::opfault::splitmix64(seed ^ n) % 100 < 70
        });
        svc.set_fault_hook(Some(hook));
        println!(
            "monitor: chaos seed {seed} — decode fault burst in [{burst_from:.1}s, {burst_to:.1}s]"
        );
    }
    // Honor the service's read/write mix so decompression windows (and
    // the decode-error SLO) see realistic traffic.
    let reads_per_write = spec.reads_per_write.round().max(1.0) as usize;
    let deadline = t0 + Duration::from_secs_f64(seconds);
    let (mut units, mut blocks, mut bytes) = (0u64, 0u64, 0u64);
    let mut chaos_errors = 0u64;
    let mut worst_seen = telemetry::SloState::Ok;
    'replay: while Instant::now() < deadline {
        for block in spec.workload.generate_unit(units) {
            let frame = match svc.compress(spec.name, &block) {
                Ok(f) => f,
                // Typed resilience errors (shed, deadline) are expected
                // traffic under chaos; anything else is still fatal.
                Err(e) if chaos_seed.is_some() => {
                    chaos_errors += 1;
                    let _ = e;
                    continue;
                }
                Err(e) => return Err(format!("replay compress failed on {}: {e}", spec.name)),
            };
            for _ in 0..reads_per_write {
                match svc.decompress(spec.name, &frame) {
                    Ok(_) => {}
                    Err(e) if chaos_seed.is_some() => {
                        chaos_errors += 1;
                        let _ = e;
                    }
                    Err(e) => {
                        return Err(format!("replay decode failed on {}: {e}", spec.name));
                    }
                }
            }
            blocks += 1;
            bytes += block.len() as u64;
            if chaos_seed.is_some() {
                let state = slos.worst_state();
                if state > worst_seen {
                    println!(
                        "monitor: SLO state -> {} at {:.1}s",
                        state.as_str(),
                        t0.elapsed().as_secs_f64()
                    );
                    worst_seen = state;
                }
            }
            if Instant::now() >= deadline {
                break 'replay;
            }
        }
        units += 1;
    }
    server.shutdown();
    println!("monitor: replayed {blocks} blocks ({bytes} bytes) across {units} work units");
    if chaos_seed.is_some() {
        println!("monitor: {chaos_errors} chaos-injected request errors tolerated");
    }

    // Final verdict: one line per objective, then the gate.
    let reports = slos.reports();
    println!(
        "{:<32} {:>8} {:>10} {:>10} {:>8}",
        "objective", "state", "fast_burn", "slow_burn", "budget"
    );
    for r in &reports {
        println!(
            "{:<32} {:>8} {:>10.2} {:>10.2} {:>7.0}%",
            r.name,
            r.state.as_str(),
            r.fast_burn,
            r.slow_burn,
            r.budget.remaining_fraction * 100.0
        );
    }
    if let Some(seed) = chaos_seed {
        // Chaos verdict: the burn-rate machinery must have seen the
        // incident (left Ok) and released it (back to Ok by the end).
        // The cumulative-budget gate is expected to blow under an
        // injected burst, so it does not apply here.
        let final_state = slos.worst_state();
        println!(
            "monitor: chaos verdict (seed {seed}): worst state {} during burst, {} at end",
            worst_seen.as_str(),
            final_state.as_str()
        );
        if worst_seen == telemetry::SloState::Ok {
            return Err(
                "chaos run never left Ok: the fault burst did not move the burn rate".to_string(),
            );
        }
        if final_state != telemetry::SloState::Ok {
            return Err(format!(
                "chaos run did not recover: worst state still {} at end",
                final_state.as_str()
            ));
        }
        println!("monitor: burn-rate detection and recovery proven");
        return Ok(());
    }
    if slos.any_exhausted() {
        let broke: Vec<&str> = reports
            .iter()
            .filter(|r| r.budget.exhausted)
            .map(|r| r.name.as_str())
            .collect();
        return Err(format!("error budget exhausted: {}", broke.join(", ")));
    }
    println!("monitor: worst SLO state {}", slos.worst_state().as_str());
    Ok(())
}

/// `datacomp serve [--addr 127.0.0.1:9185] [--metrics-addr 127.0.0.1:0]
/// [--addr-file path] [--seconds 0] [--workers 0] [--slo-ms 5.0]
/// [--slo-target 0.99] [--error-target 0.999] [--max-frame bytes]
/// [--max-inflight 64] [--degrade-at 32] [--passthrough-at 48]
/// [--cheap-level 1]` — runs the compression daemon.
///
/// The binary protocol is served on `--addr`; `/metrics`, `/slo`,
/// `/healthz`, `/trace.json`, `/profile.json`, `/requests.json` on
/// `--metrics-addr`. `--addr-file` receives both bound addresses
/// (daemon first, scrape second), one per line, for harnesses using
/// port 0. `--seconds 0` serves until killed; a positive value runs a
/// bounded session and then gates the exit on the SLO error budgets —
/// an exhausted budget is a non-zero exit.
fn serve(args: &Args) -> Result<(), String> {
    use std::time::{Duration, Instant};

    let addr = args
        .options
        .get("addr")
        .map_or("127.0.0.1:9185", String::as_str);
    let metrics_addr = args
        .options
        .get("metrics-addr")
        .map_or("127.0.0.1:0", String::as_str);
    let seconds: f64 = args.opt_or("seconds", 0.0)?;
    let slo_ms: f64 = args.opt_or("slo-ms", 5.0)?;
    let slo_target: f64 = args.opt_or("slo-target", 0.99)?;
    let error_target: f64 = args.opt_or("error-target", 0.999)?;

    let mut cfg = server::ServerConfig {
        workers: args.opt_or("workers", 0usize)?,
        ..server::ServerConfig::default()
    };
    if let Some(max_frame) = args.opt::<usize>("max-frame")? {
        cfg.limits = codecs::DecodeLimits::with_max_output(max_frame);
    }
    let admission = &mut cfg.managed.resilience.admission;
    admission.max_inflight = args.opt_or("max-inflight", admission.max_inflight)?;
    admission.degrade_at = args.opt_or("degrade-at", admission.degrade_at)?;
    admission.passthrough_at = args.opt_or("passthrough-at", admission.passthrough_at)?;
    admission.cheap_level = args.opt_or("cheap-level", admission.cheap_level)?;

    // Objectives the request loop feeds by well-known name; register
    // before the first request so every sample lands in a window.
    let slos = telemetry::slos();
    slos.register(telemetry::SloConfig::latency(
        "server.request.latency",
        (slo_ms * 1e6) as u64,
        slo_target,
    ));
    slos.register(telemetry::SloConfig::error_rate(
        "server.errors",
        error_target,
    ));

    let daemon = server::CompressionServer::bind(addr, cfg)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let scrape = telemetry::ScrapeServer::bind(metrics_addr, telemetry::Sources::global())
        .map_err(|e| format!("cannot bind {metrics_addr}: {e}"))?;
    let (daddr, maddr) = (daemon.local_addr(), scrape.local_addr());
    if let Some(path) = args.options.get("addr-file") {
        fs::write(path, format!("{daddr}\n{maddr}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    println!("serve: compression protocol on {daddr}");
    println!("serve: /metrics /slo /healthz /trace.json on http://{maddr}/");

    if seconds > 0.0 {
        let deadline = Instant::now() + Duration::from_secs_f64(seconds);
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
        }
    } else {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    daemon.shutdown();
    scrape.shutdown();

    // Per-tenant traffic summary from the counters /metrics served.
    let snap = telemetry::snapshot();
    let mut rows: Vec<(&str, &str, &str, u64)> = Vec::new();
    for s in &snap.series {
        if s.key.name != "server.requests" {
            continue;
        }
        if let telemetry::SeriesValue::Counter(n) = s.value {
            let find = |l: &str| {
                s.key
                    .labels
                    .iter()
                    .find(|(k, _)| k == l)
                    .map_or("", |(_, v)| v.as_str())
            };
            rows.push((find("tenant"), find("op"), find("status"), n));
        }
    }
    rows.sort_unstable();
    println!(
        "{:<16} {:<12} {:<10} {:>10}",
        "tenant", "op", "status", "requests"
    );
    for (tenant, op, status, n) in &rows {
        println!("{tenant:<16} {op:<12} {status:<10} {n:>10}");
    }
    let reports = slos.reports();
    for r in &reports {
        println!(
            "serve: slo {:<28} state {:<8} budget {:>5.0}%",
            r.name,
            r.state.as_str(),
            r.budget.remaining_fraction * 100.0
        );
    }
    if slos.any_exhausted() {
        let broke: Vec<&str> = reports
            .iter()
            .filter(|r| r.budget.exhausted)
            .map(|r| r.name.as_str())
            .collect();
        return Err(format!("error budget exhausted: {}", broke.join(", ")));
    }
    println!(
        "serve: clean shutdown, worst SLO state {}",
        slos.worst_state().as_str()
    );
    Ok(())
}

/// `datacomp loadgen [--addr host:port | --addr-file path]
/// [--mix cache1,cache2,kvstore1] [--seconds 5] [--concurrency 4]
/// [--seed 1]` — deterministic fleet-mix replay against a live daemon.
///
/// Each worker thread opens one connection and replays seeded work
/// units from the named fleet services (tenant = service name),
/// round-tripping every block (compress, then `reads_per_write`
/// decompressions with equality checks) and recording client-observed
/// latency. Reports per-service outcome counts, p50/p99, and goodput;
/// when the daemon's scrape address is known (second line of
/// `--addr-file`) the server-side p99 and SLO worst-state are pulled
/// from `/metrics` and `/slo`.
fn loadgen(args: &Args) -> Result<(), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let (addr, metrics_addr) = match args.options.get("addr-file") {
        Some(path) => {
            let body = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut lines = body.lines();
            let addr = lines
                .next()
                .ok_or_else(|| format!("{path} is empty"))?
                .to_string();
            (addr, lines.next().map(str::to_string))
        }
        None => (
            args.options
                .get("addr")
                .ok_or("need --addr or --addr-file")?
                .clone(),
            None,
        ),
    };
    let mix_arg = args
        .options
        .get("mix")
        .map_or("cache1,cache2,kvstore1", String::as_str);
    let seconds: f64 = args.opt_or("seconds", 5.0)?;
    let concurrency: usize = args.opt_or("concurrency", 4)?;
    let seed: u64 = args.opt_or("seed", 1)?;
    if !seconds.is_finite() || seconds <= 0.0 || concurrency == 0 {
        return Err("need positive --seconds and --concurrency".into());
    }

    let registry = fleet::registry();
    let mut specs = Vec::new();
    for name in mix_arg.split(',') {
        let spec = registry
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name.trim()))
            .ok_or_else(|| format!("unknown service {name} in --mix"))?;
        specs.push(spec.clone());
    }
    println!(
        "loadgen: {} threads replaying [{}] against {addr} for {seconds}s (seed {seed})",
        concurrency, mix_arg
    );

    #[derive(Default)]
    struct Tally {
        ok: u64,
        shed: u64,
        deadline: u64,
        errors: u64,
        bytes_ok: u64,
        latencies: Vec<u64>,
    }
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..concurrency {
        let addr = addr.clone();
        let specs = specs.clone();
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || -> Result<Tally, String> {
            let mut client = server::client::Client::connect(&addr)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let mut tally = Tally::default();
            let mut unit = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // One spec per unit, round-robin; deterministic in
                // (seed, thread, unit) so reruns replay byte-identical
                // traffic.
                let spec = &specs[(unit as usize) % specs.len()];
                let unit_seed = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((t as u64) << 32)
                    .wrapping_add(unit);
                let reads = spec.reads_per_write.round().max(1.0) as usize;
                for block in spec.workload.generate_unit(unit_seed) {
                    let start = Instant::now();
                    let resp = client
                        .compress(spec.name, spec.name, &block)
                        .map_err(|e| format!("compress transport: {e}"))?;
                    tally.latencies.push(start.elapsed().as_nanos() as u64);
                    use server::protocol::Status;
                    match resp.status {
                        Status::Ok => {
                            tally.ok += 1;
                            tally.bytes_ok += block.len() as u64;
                            for _ in 0..reads {
                                let back = client
                                    .decompress(spec.name, spec.name, &resp.payload)
                                    .map_err(|e| format!("decompress transport: {e}"))?;
                                match back.status {
                                    Status::Ok => {
                                        if back.payload != block {
                                            return Err(format!(
                                                "round-trip mismatch on {}",
                                                spec.name
                                            ));
                                        }
                                        tally.ok += 1;
                                    }
                                    Status::Shed => tally.shed += 1,
                                    Status::Deadline => tally.deadline += 1,
                                    _ => tally.errors += 1,
                                }
                            }
                        }
                        Status::Shed => tally.shed += 1,
                        Status::Deadline => tally.deadline += 1,
                        _ => tally.errors += 1,
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                unit += 1;
            }
            Ok(tally)
        }));
    }
    std::thread::sleep(Duration::from_secs_f64(seconds));
    stop.store(true, Ordering::Relaxed);
    let mut total = Tally::default();
    for h in handles {
        let t = h
            .join()
            .map_err(|_| "loadgen thread panicked".to_string())??;
        total.ok += t.ok;
        total.shed += t.shed;
        total.deadline += t.deadline;
        total.errors += t.errors;
        total.bytes_ok += t.bytes_ok;
        total.latencies.extend(t.latencies);
    }
    let wall = t0.elapsed().as_secs_f64();
    total.latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if total.latencies.is_empty() {
            return 0.0;
        }
        let idx = ((total.latencies.len() - 1) as f64 * p) as usize;
        total.latencies.get(idx).copied().unwrap_or(0) as f64 / 1e6
    };
    println!(
        "loadgen: {} ok, {} shed, {} deadline, {} errors in {wall:.1}s",
        total.ok, total.shed, total.deadline, total.errors
    );
    println!(
        "loadgen: client p50 {:.3} ms, p99 {:.3} ms, goodput {:.1} MB/s",
        pct(0.50),
        pct(0.99),
        total.bytes_ok as f64 / wall / 1e6
    );
    if let Some(maddr) = metrics_addr {
        let maddr: std::net::SocketAddr = maddr
            .parse()
            .map_err(|e| format!("bad metrics addr {maddr}: {e}"))?;
        let metrics = server::client::http_get(maddr, "/metrics")
            .map_err(|e| format!("scrape /metrics: {e}"))?;
        for line in metrics.lines() {
            if line.starts_with("window_server_request_nanos_p99") {
                println!("loadgen: server {line}");
            }
        }
        let slo =
            server::client::http_get(maddr, "/slo").map_err(|e| format!("scrape /slo: {e}"))?;
        let worst = slo
            .split("\"worst\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap_or("unknown");
        println!("loadgen: server SLO worst state {worst}");
    }
    if total.errors > 0 {
        return Err(format!("{} request errors", total.errors));
    }
    Ok(())
}

fn algo(args: &Args) -> Result<Algorithm, String> {
    args.options
        .get("algo")
        .map_or(Ok(Algorithm::Zstdx), |s| s.parse())
}

fn load_dict(args: &Args) -> Result<Option<Dictionary>, String> {
    match args.options.get("dict") {
        None => Ok(None),
        Some(path) => {
            let data = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            // Dictionary id: stable hash of the content, so compress and
            // decompress invocations agree without extra bookkeeping.
            let id = codecs::xxhash::xxh64(&data, 0) as u32;
            Ok(Some(Dictionary::new(data, id)))
        }
    }
}

fn compress(args: &Args) -> Result<(), String> {
    args.need(
        2,
        "datacomp compress <in> <out> [--algo A] [--level N] [--dict F]",
    )?;
    let input = fs::read(&args.positionals[0])
        .map_err(|e| format!("cannot read {}: {e}", args.positionals[0]))?;
    let level = args.opt_or("level", 3)?;
    let comp = algo(args)?.compressor(level);
    let frame = match load_dict(args)? {
        Some(d) => comp.compress_with_dict(&input, &d),
        None => comp.compress(&input),
    };
    fs::write(&args.positionals[1], &frame)
        .map_err(|e| format!("cannot write {}: {e}", args.positionals[1]))?;
    println!(
        "{} -> {} bytes (ratio {:.2}, {} level {})",
        input.len(),
        frame.len(),
        input.len() as f64 / frame.len().max(1) as f64,
        comp.name(),
        comp.level()
    );
    Ok(())
}

fn decompress(args: &Args) -> Result<(), String> {
    args.need(2, "datacomp decompress <in> <out> [--algo A] [--dict F]")?;
    let frame = fs::read(&args.positionals[0])
        .map_err(|e| format!("cannot read {}: {e}", args.positionals[0]))?;
    let comp = algo(args)?.compressor(args.opt_or("level", 3)?);
    let data = match load_dict(args)? {
        Some(d) => comp.decompress_with_dict(&frame, &d),
        None => comp.decompress(&frame),
    }
    .map_err(|e| format!("decompression failed: {e}"))?;
    fs::write(&args.positionals[1], &data)
        .map_err(|e| format!("cannot write {}: {e}", args.positionals[1]))?;
    println!("{} -> {} bytes", frame.len(), data.len());
    Ok(())
}

fn bench(args: &Args) -> Result<(), String> {
    args.need(
        1,
        "datacomp bench <in> [--algo A] [--levels 1,3,6] [--block BYTES]",
    )?;
    let input = fs::read(&args.positionals[0])
        .map_err(|e| format!("cannot read {}: {e}", args.positionals[0]))?;
    let a = algo(args)?;
    let levels: Vec<i32> = match args.options.get("levels") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("bad level: {s}")))
            .collect::<Result<_, _>>()?,
        None => vec![1, 3, 6],
    };
    let block: Option<usize> = args.opt("block")?;
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "level", "ratio", "comp MB/s", "decomp MB/s"
    );
    for level in levels {
        let comp = a.compressor(level);
        let m = match block {
            Some(bs) => codecs::measure_blocks(comp.as_ref(), &input, bs),
            None => codecs::measure(comp.as_ref(), &[&input]),
        };
        println!(
            "{:>6} {:>8.2} {:>12.1} {:>12.1}",
            level,
            m.ratio(),
            m.compress_mbps(),
            m.decompress_mbps()
        );
    }
    Ok(())
}

fn train_dict(args: &Args) -> Result<(), String> {
    args.need(2, "datacomp train-dict <out> <samples...> [--size BYTES]")?;
    let size = args.opt_or("size", 16 * 1024)?;
    let samples: Vec<Vec<u8>> = args.positionals[1..]
        .iter()
        .map(|p| fs::read(p).map_err(|e| format!("cannot read {p}: {e}")))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&[u8]> = samples.iter().map(|v| v.as_slice()).collect();
    let dict = codecs::dict::train(&refs, size, 0);
    fs::write(&args.positionals[0], dict.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", args.positionals[0]))?;
    println!(
        "trained {} bytes of dictionary from {} samples",
        dict.len(),
        refs.len()
    );
    Ok(())
}

fn optimize(args: &Args) -> Result<(), String> {
    args.need(
        1,
        "datacomp optimize <samples...> [--retention DAYS] [--objective all|network|storage] [--min-speed MBPS] [--max-latency MS]",
    )?;
    let samples: Vec<Vec<u8>> = args
        .positionals
        .iter()
        .map(|p| fs::read(p).map_err(|e| format!("cannot read {p}: {e}")))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&[u8]> = samples.iter().map(|v| v.as_slice()).collect();

    let mut engine = CompEngine::new();
    for a in Algorithm::ALL {
        engine.add_levels(a, [1, 3, 6, 9]);
    }
    let measured = engine.measure(&refs);

    let retention = args.opt_or("retention", 30.0)?;
    let params = CostParams::from_pricing(&Pricing::aws_2023(), 1.0, retention);
    let weights = match args.options.get("objective").map(String::as_str) {
        None | Some("all") => CostWeights::ALL,
        Some("network") => CostWeights::COMPUTE_NETWORK,
        Some("storage") => CostWeights::COMPUTE_STORAGE,
        Some(other) => return Err(format!("unknown objective {other}")),
    };
    let mut constraints = Vec::new();
    if let Some(v) = args.opt("min-speed")? {
        constraints.push(Constraint::MinCompressionSpeedMbps(v));
    }
    if let Some(v) = args.opt("max-latency")? {
        constraints.push(Constraint::MaxDecompressionLatencyMs(v));
    }
    let evals = evaluate_all(&measured, &params, weights, &constraints);
    println!(
        "{:>16} {:>7} {:>11} {:>14} {:>9}",
        "config", "ratio", "comp MB/s", "cost", "feasible"
    );
    for e in &evals {
        println!(
            "{:>16} {:>7.2} {:>11.1} {:>14.3e} {:>9}",
            e.label,
            e.ratio,
            e.compress_mbps,
            e.total_cost,
            if e.feasible { "yes" } else { "no" }
        );
    }
    match optimum(&evals) {
        Some(best) => println!("\noptimal: {}", best.label),
        None => println!("\nno feasible configuration under the given constraints"),
    }
    Ok(())
}

fn gen(args: &Args) -> Result<(), String> {
    args.need(3, "datacomp gen <class> <bytes> <out> [--seed N]")?;
    let size: usize = args.positionals[1]
        .parse()
        .map_err(|_| "bad size".to_string())?;
    let seed = args.opt_or("seed", 1u64)?;
    let class = &args.positionals[0];
    let data = match class.as_str() {
        "text" | "xml" | "source" | "database" | "binary" | "log" => {
            let fc = corpus::silesia::FileClass::ALL
                .into_iter()
                .find(|c| c.name() == class)
                .expect("name matched");
            corpus::silesia::generate(fc, size, seed)
        }
        "sst" => corpus::sst::generate_sst(size, seed),
        "orc" => corpus::orc::generate_blocks(size, seed).concat(),
        "ads" => corpus::mlreq::generate_request(corpus::mlreq::Model::A, seed),
        "cache" => {
            corpus::cache::generate_items(&corpus::cache::cache1_profile(), size / 300 + 1, seed)
                .into_iter()
                .flat_map(|i| i.data)
                .take(size)
                .collect()
        }
        other => {
            return Err(format!(
                "unknown class {other}; pick text|xml|source|database|binary|log|sst|orc|ads|cache"
            ))
        }
    };
    fs::write(&args.positionals[2], &data)
        .map_err(|e| format!("cannot write {}: {e}", args.positionals[2]))?;
    println!("wrote {} bytes of {class}", data.len());
    Ok(())
}

fn fleet_tables(args: &Args) -> Result<(), String> {
    // `datacomp fleet`, `datacomp fleet profile`, and `datacomp
    // profile` are synonyms; the positional is accepted for symmetry
    // with the other subcommands.
    if let Some(p) = args.positionals.first() {
        if p != "profile" {
            return Err(format!("unknown fleet subcommand {p}; usage: datacomp fleet [profile] [--units N] [--telemetry PATH] [--trace PATH]"));
        }
    }
    let units = args.opt_or("units", 4usize)?;
    let profile = fleet::profile_fleet(&fleet::ProfileConfig {
        work_units: units,
        seed: 30,
        stage_deadline_nanos: 0,
    });
    // Publish per-service aggregates so a --telemetry snapshot taken
    // after this command carries the whole profile.
    profile.record_to(telemetry::global());
    // A profile trace should also explain configuration choice: add
    // decision events before the post-command drain writes the file.
    if args.options.contains_key("trace") {
        trace_decision_demo();
    }
    println!(
        "fleet compression tax: {:.2}%",
        fleet::agg::fleet_compression_tax(&profile) * 100.0
    );
    println!("\nzstdx cycles by category:");
    for (c, f) in fleet::agg::category_zstd_cycles(&profile) {
        println!("  {:<16} {:>5.1}%", c.to_string(), f * 100.0);
    }
    println!("\nzstdx cycles by service (Table I):");
    for (s, f) in fleet::agg::service_zstd_cycles(&profile) {
        println!("  {s:<10} {:>5.1}%", f * 100.0);
    }
    print_attribution();
    Ok(())
}

/// Prints the "where does p99 go" table: per `(service, op, size
/// class)` row, the request-latency p99 and each codec stage's share
/// of total self-time with its own self-time p99 — the request-scoped
/// answer to Figure 7's stage split, fed by the contexts the fleet
/// profiler (and any managed service in-process) opened.
fn print_attribution() {
    let sampler = telemetry::requests();
    let rows = sampler.attribution();
    if rows.is_empty() {
        return;
    }
    println!("\nwhere does p99 go (self-time per stage):");
    println!(
        "  {:<10} {:<10} {:<7} {:>8} {:>13}   {:<20} {:>6} {:>13}",
        "service", "op", "size", "reqs", "p99 ns", "stage", "share", "self p99 ns"
    );
    for row in &rows {
        let mut lead = format!(
            "  {:<10} {:<10} {:<7} {:>8} {:>13}",
            row.service,
            row.op.as_str(),
            row.size_class.as_str(),
            row.requests,
            row.latency.quantile(0.99),
        );
        for s in &row.stages {
            println!(
                "{lead}   {:<20} {:>5.1}% {:>13}",
                s.stage,
                s.share * 100.0,
                s.self_hist.quantile(0.99),
            );
            // Only the first stage line repeats the row columns.
            lead = format!("  {:<10} {:<10} {:<7} {:>8} {:>13}", "", "", "", "", "");
        }
    }
    let stats = sampler.stats();
    println!(
        "  tail sampler: {} requests, {} kept ({} error / {} slow / {} baseline), {} dropped",
        stats.finished,
        stats.kept(),
        stats.kept_error,
        stats.kept_slow,
        stats.kept_baseline,
        stats.dropped
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("datacomp-cli-tests");
        fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn run_cmd(argv: &[&str]) -> Result<(), String> {
        run(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn compress_decompress_roundtrip_via_files() {
        let input = tmp("in.txt");
        let packed = tmp("in.zsx");
        let out = tmp("out.txt");
        fs::write(&input, b"cli roundtrip cli roundtrip cli roundtrip").unwrap();
        run_cmd(&[
            "compress",
            input.to_str().unwrap(),
            packed.to_str().unwrap(),
            "--level",
            "5",
        ])
        .unwrap();
        run_cmd(&[
            "decompress",
            packed.to_str().unwrap(),
            out.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(fs::read(&out).unwrap(), fs::read(&input).unwrap());
    }

    #[test]
    fn dictionary_flow_via_files() {
        let dict_path = tmp("d.dict");
        let sample = tmp("sample.json");
        fs::write(
            &sample,
            br#"{"k":"value","k2":"value","k3":"value"}"#.repeat(20),
        )
        .unwrap();
        run_cmd(&[
            "train-dict",
            dict_path.to_str().unwrap(),
            sample.to_str().unwrap(),
            "--size",
            "4096",
        ])
        .unwrap();
        let input = tmp("msg.json");
        fs::write(&input, br#"{"k":"value","k2":"other"}"#).unwrap();
        let packed = tmp("msg.zsx");
        let out = tmp("msg.out");
        run_cmd(&[
            "compress",
            input.to_str().unwrap(),
            packed.to_str().unwrap(),
            "--dict",
            dict_path.to_str().unwrap(),
        ])
        .unwrap();
        // Without the dictionary the frame must refuse to decode.
        assert!(run_cmd(&[
            "decompress",
            packed.to_str().unwrap(),
            out.to_str().unwrap()
        ])
        .is_err());
        run_cmd(&[
            "decompress",
            packed.to_str().unwrap(),
            out.to_str().unwrap(),
            "--dict",
            dict_path.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(fs::read(&out).unwrap(), fs::read(&input).unwrap());
    }

    #[test]
    fn gen_then_bench() {
        let data = tmp("gen.log");
        run_cmd(&["gen", "log", "20000", data.to_str().unwrap()]).unwrap();
        assert_eq!(fs::read(&data).unwrap().len(), 20000);
        run_cmd(&["bench", data.to_str().unwrap(), "--levels", "1,3"]).unwrap();
    }

    #[test]
    fn optimize_runs_on_generated_samples() {
        let data = tmp("opt.db");
        run_cmd(&["gen", "database", "30000", data.to_str().unwrap()]).unwrap();
        run_cmd(&["optimize", data.to_str().unwrap(), "--objective", "storage"]).unwrap();
    }

    #[test]
    fn usage_errors_are_clear() {
        assert!(run_cmd(&[]).unwrap_err().contains("usage"));
        assert!(run_cmd(&["frobnicate"])
            .unwrap_err()
            .contains("unknown command"));
        assert!(run_cmd(&["compress", "only-one-arg"])
            .unwrap_err()
            .contains("usage"));
        assert!(run_cmd(&["gen", "nope", "10", "/tmp/x"])
            .unwrap_err()
            .contains("unknown class"));
        assert!(run_cmd(&["fleet", "nope"])
            .unwrap_err()
            .contains("unknown fleet subcommand"));
        assert!(run_cmd(&["telemetry", "--format", "xml"])
            .unwrap_err()
            .contains("unknown format"));
        assert!(run_cmd(&["trace"]).unwrap_err().contains("usage"));
    }

    #[test]
    fn fault_inject_reports_clean_sweep() {
        // Small sweep: one injector, one codec, tiny blocks.
        run_cmd(&[
            "fault-inject",
            "--injector",
            "truncate",
            "--algo",
            "lz4x",
            "--budget",
            "8",
            "--block-size",
            "4096",
        ])
        .unwrap();
    }

    #[test]
    fn fault_inject_rejects_bad_flags() {
        assert!(run_cmd(&["fault-inject", "--injector", "gamma-ray"])
            .unwrap_err()
            .contains("unknown injector"));
        assert!(run_cmd(&["fault-inject", "--checksums", "maybe"])
            .unwrap_err()
            .contains("pick on|off"));
    }

    #[test]
    fn monitor_serves_endpoints_and_gates_on_slos() {
        use std::io::{Read as _, Write as _};
        use std::net::TcpStream;
        use std::time::{Duration, Instant};

        let addr_file = tmp("monitor.addr");
        let _ = fs::remove_file(&addr_file);
        let af = addr_file.clone();
        let replay = std::thread::spawn(move || {
            run_cmd(&[
                "monitor",
                "--addr",
                "127.0.0.1:0",
                "--addr-file",
                af.to_str().unwrap(),
                "--workload",
                "cache1",
                "--seconds",
                "1.5",
            ])
        });
        // Handshake: the command writes the resolved address once the
        // server is up and the SLOs are registered.
        let deadline = Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = fs::read_to_string(&addr_file) {
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(Instant::now() < deadline, "monitor never wrote addr file");
            std::thread::sleep(Duration::from_millis(10));
        };
        let fetch = |path: &str| -> String {
            let mut conn = TcpStream::connect(&addr).expect("connect");
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            conn.read_to_string(&mut out).expect("read");
            out
        };
        // All four endpoints answer mid-replay. Windowed series appear
        // once the first block lands; poll briefly for them.
        let metrics = loop {
            let m = fetch("/metrics");
            if m.contains("window_managed_compress_nanos_p99") || Instant::now() >= deadline {
                break m;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(
            metrics.contains("window_managed_compress_nanos_p99"),
            "live windowed p99 missing mid-replay"
        );
        assert!(metrics.contains("slo_state{objective=\"managed.compress.latency\"}"));
        assert!(metrics.contains("slo_budget_remaining{objective=\"managed.decompress.errors\"}"));
        let slo = fetch("/slo");
        assert!(slo.contains("\"managed.decompress.latency\""), "{slo}");
        assert!(fetch("/healthz").ends_with("ok\n"));
        assert!(fetch("/trace.json").contains("traceEvents"));
        // Healthy replay: clean exit (no budget exhaustion).
        replay.join().unwrap().unwrap();
    }

    #[test]
    fn monitor_rejects_bad_flags() {
        assert!(
            run_cmd(&["monitor", "--workload", "nope", "--seconds", "0.1"])
                .unwrap_err()
                .contains("unknown workload")
        );
        assert!(run_cmd(&["monitor", "--seconds", "-1"])
            .unwrap_err()
            .contains("bad --seconds"));
    }

    #[test]
    fn fault_inject_publishes_sweep_counters() {
        let before = telemetry::snapshot();
        run_cmd(&[
            "fault-inject",
            "--injector",
            "truncate",
            "--algo",
            "zstdx",
            "--budget",
            "4",
            "--block-size",
            "4096",
        ])
        .unwrap();
        let after = telemetry::snapshot();
        let labels = [("injector", "truncate"), ("codec", "zstdx")];
        assert!(
            after.counter("faultline.cases", &labels) > before.counter("faultline.cases", &labels),
            "sweep cases not published to the registry"
        );
        assert_eq!(
            after.counter("faultline.violations", &labels),
            before.counter("faultline.violations", &labels),
            "clean sweep must publish zero new violations"
        );
    }

    #[test]
    fn telemetry_flag_writes_json_and_prometheus() {
        let input = tmp("tel-in.txt");
        let packed = tmp("tel-in.zsx");
        let tel = tmp("tel.json");
        fs::write(&input, b"telemetry file flow telemetry file flow").unwrap();
        run_cmd(&[
            "compress",
            input.to_str().unwrap(),
            packed.to_str().unwrap(),
            "--telemetry",
            tel.to_str().unwrap(),
        ])
        .unwrap();
        let json = fs::read_to_string(&tel).unwrap();
        assert!(
            json.contains("codecs.compress.calls"),
            "snapshot missing codec counters"
        );
        let prom = fs::read_to_string(tmp("tel.json.prom")).unwrap();
        assert!(
            prom.contains("codecs_compress_calls"),
            "prometheus text missing counters"
        );
        // Dump variant runs in both formats.
        run_cmd(&["telemetry"]).unwrap();
        run_cmd(&["telemetry", "--format", "prom"]).unwrap();
    }

    #[test]
    fn trace_subcommand_writes_chrome_trace_json() {
        // The only test in this binary that drains the global tracer
        // (via the trace command / --trace hook).
        let out = tmp("trace.json");
        run_cmd(&["trace", out.to_str().unwrap(), "--units", "1"]).unwrap();
        let json = fs::read_to_string(&out).unwrap();
        // Structurally valid JSON (balanced braces/brackets/quotes);
        // the full-parser check lives in the workspace e2e test.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);
        assert!(json.contains("\"traceEvents\":["));
        // One named track per profiled service.
        for svc in ["DW1", "CACHE1", "LONGTAIL"] {
            assert!(
                json.contains(&format!("\"args\":{{\"name\":\"svc:{svc}\"}}")),
                "missing track for {svc}"
            );
        }
        // Per-block codec stage pairs and CompOpt decisions made it in.
        assert!(json.contains("\"name\":\"zstdx.match_find\",\"cat\":\"stage\",\"ph\":\"B\""));
        assert!(json.contains("\"name\":\"zstdx.match_find\",\"cat\":\"stage\",\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"compopt.decision\""));
        for term in ["c_compute", "c_storage", "c_network", "total_cost"] {
            assert!(json.contains(term), "decision missing {term}");
        }
        // Every event carries the required Chrome fields.
        let events = json.split_once("\"traceEvents\":[").unwrap().1;
        for obj in events.split("},{") {
            for field in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
                assert!(obj.contains(field), "missing {field} in {obj}");
            }
        }
        // Round-trip: a second invocation starts from a drained
        // recorder and still produces a complete file.
        let out2 = tmp("trace2.json");
        run_cmd(&["profile", "--units", "1", "--trace", out2.to_str().unwrap()]).unwrap();
        let json2 = fs::read_to_string(&out2).unwrap();
        assert!(json2.contains("\"name\":\"compopt.decision\""));
        assert!(json2.contains("svc:DW1"));
    }

    #[test]
    fn fleet_profile_telemetry_has_per_service_series() {
        let tel = tmp("fleet-tel.json");
        run_cmd(&[
            "fleet",
            "profile",
            "--units",
            "1",
            "--telemetry",
            tel.to_str().unwrap(),
        ])
        .unwrap();
        let json = fs::read_to_string(&tel).unwrap();
        for svc in ["DW1", "CACHE1", "LONGTAIL"] {
            assert!(json.contains(svc), "fleet snapshot missing service {svc}");
        }
        assert!(
            json.contains("fleet.compress.nanos"),
            "missing latency histograms"
        );
        assert!(
            json.contains("span.zstdx.match_find"),
            "missing stage spans"
        );
    }
}
