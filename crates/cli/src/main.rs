//! `datacomp` — command-line access to the compression stack.
//!
//! ```text
//! datacomp compress   <in> <out> [--algo A] [--level N] [--dict F]
//! datacomp decompress <in> <out> [--algo A] [--dict F]
//! datacomp bench      <in> [--algo A] [--levels 1,3,6] [--block BYTES]
//! datacomp train-dict <out> <samples...> [--size BYTES]
//! datacomp optimize   <samples...> [--retention DAYS] [--objective all|network|storage]
//!                     [--min-speed MBPS] [--max-latency MS]
//! datacomp gen        <class> <bytes> <out> [--seed N]
//! datacomp fleet      [profile] [--units N]
//! datacomp profile    [--units N]            (same as fleet profile)
//! datacomp trace      <out.json> [--units N]
//! datacomp telemetry  [--format json|prom]
//! datacomp fault-inject [--seed N] [--injector A,B] [--algo X,Y] [--budget N]
//!                     [--block-size BYTES] [--level N] [--checksums on|off]
//! datacomp chaos      [--seed N] [--ops N] [--mix A,B] [--injector A,B]
//! datacomp monitor    [--addr HOST:PORT] [--workload NAME] [--seconds S]
//!                     [--slo-ms MS] [--slo-target F] [--error-target F]
//!                     [--addr-file PATH] [--chaos-seed N]
//! ```
//!
//! `monitor` is the live observability plane: it registers managed-path
//! SLOs, serves `/metrics` (Prometheus, with windowed views and trace
//! exemplars), `/slo` (error-budget JSON), `/healthz`, and
//! `/trace.json` on `--addr`, and replays a fleet workload through the
//! managed compression service until `--seconds` elapse. It exits
//! non-zero when any error budget is exhausted. With `--chaos-seed` it
//! injects a deterministic mid-run fault burst instead and exits
//! non-zero unless the SLO burn-rate engine both detects the incident
//! and recovers from it.
//!
//! `chaos` is the operational chaos sweep: per (injector × fleet mix)
//! cell it drives a managed service through latency spikes, error
//! bursts, and clock skew on a manual clock, asserting the resilience
//! invariants (typed errors only, bounded retries, breakers that open
//! and recover, a brownout ladder that still round-trips). It exits
//! non-zero on any violation.
//!
//! Every command also accepts `--telemetry <path>`, writing the process
//! telemetry snapshot to `<path>` (JSON) and `<path>.prom` (Prometheus
//! text) after the command completes, and `--trace <path>`, draining
//! the flight recorder to `<path>` as Chrome trace-event JSON for
//! Perfetto / `chrome://tracing`.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("datacomp: {e}");
            ExitCode::FAILURE
        }
    }
}
