//! Minimal argument parsing: positionals plus `--flag value` options.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Arguments without a leading `--`.
    pub positionals: Vec<String>,
    /// `--name value` pairs.
    pub options: HashMap<String, String>,
}

impl Args {
    /// Splits raw arguments into positionals and `--key value` options.
    ///
    /// # Errors
    ///
    /// Returns an error for a trailing `--flag` without a value.
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{name} needs a value"))?;
                out.options.insert(name.to_string(), value.clone());
            } else {
                out.positionals.push(a.clone());
            }
        }
        Ok(out)
    }

    /// Fetches an option parsed as `T`.
    ///
    /// # Errors
    ///
    /// Returns an error when present but unparsable.
    pub fn opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    /// Fetches an option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error when present but unparsable.
    pub fn opt_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.opt(name)?.unwrap_or(default))
    }

    /// Requires at least `n` positionals.
    ///
    /// # Errors
    ///
    /// Returns a usage error when fewer are present.
    pub fn need(&self, n: usize, usage: &str) -> Result<(), String> {
        if self.positionals.len() < n {
            return Err(format!("missing arguments; usage: {usage}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn splits_positionals_and_options() {
        let a = parse(&["in.bin", "out.bin", "--level", "7", "--algo", "zstdx"]);
        assert_eq!(a.positionals, vec!["in.bin", "out.bin"]);
        assert_eq!(a.opt::<i32>("level").unwrap(), Some(7));
        assert_eq!(a.options["algo"], "zstdx");
    }

    #[test]
    fn defaults_and_missing() {
        let a = parse(&["x"]);
        assert_eq!(a.opt_or("level", 3).unwrap(), 3);
        assert_eq!(a.opt::<usize>("block").unwrap(), None);
    }

    #[test]
    fn bad_value_is_an_error() {
        let a = parse(&["--level", "abc"]);
        assert!(a.opt::<i32>("level").is_err());
    }

    #[test]
    fn dangling_flag_is_an_error() {
        let raw = vec!["--level".to_string()];
        assert!(Args::parse(&raw).is_err());
    }

    #[test]
    fn need_checks_arity() {
        let a = parse(&["one"]);
        assert!(a.need(1, "u").is_ok());
        assert!(a.need(2, "u").is_err());
    }
}
