//! Match-finder parameterization.
//!
//! These are the knobs that compression levels map onto (the paper,
//! §II-B: "The users of these compression algorithms can tune the
//! parameters such as the match window size indirectly by changing the
//! compression level"). Each codec owns a level table producing
//! [`MatchParams`]; hardware modeling (`compopt::compsim`) constrains
//! `window_log` directly, as in the paper's sensitivity study 3.

/// Match-finding algorithm family, ordered from fastest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// Single-probe hash table with skip acceleration (LZ4-style).
    Fast,
    /// Hash chain, greedy selection.
    Greedy,
    /// Hash chain with one-position lazy evaluation.
    Lazy,
    /// Price-based dynamic-programming parse over chain candidates.
    Optimal,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::Fast => "fast",
            Strategy::Greedy => "greedy",
            Strategy::Lazy => "lazy",
            Strategy::Optimal => "optimal",
        };
        f.write_str(s)
    }
}

/// Tunable parameters of a match-finding pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchParams {
    /// Maximum match offset is `1 << window_log`.
    pub window_log: u32,
    /// Hash table has `1 << hash_log` entries.
    pub hash_log: u32,
    /// Chain table has `1 << chain_log` entries (chain strategies only).
    pub chain_log: u32,
    /// Maximum candidate probes per position (chain strategies only).
    pub search_attempts: u32,
    /// Minimum acceptable match length (the paper names this as one of
    /// the per-level heuristics, §IV-C).
    pub min_match: u32,
    /// Stop probing once a match of at least this length is found.
    pub target_length: u32,
    /// Prefer matches at the previous offset (repeat offsets are nearly
    /// free for entropy stages that code them). Disable only to ablate.
    pub rep_preference: bool,
    /// Algorithm family.
    pub strategy: Strategy,
}

impl MatchParams {
    /// Reasonable defaults for the given strategy (mid-level settings).
    pub fn new(strategy: Strategy) -> Self {
        let (hash_log, chain_log, attempts, target) = match strategy {
            Strategy::Fast => (16, 0, 1, 12),
            Strategy::Greedy => (17, 16, 8, 32),
            Strategy::Lazy => (17, 16, 16, 64),
            Strategy::Optimal => (17, 16, 32, 256),
        };
        Self {
            window_log: 21,
            hash_log,
            chain_log,
            search_attempts: attempts,
            min_match: 3,
            target_length: target,
            rep_preference: true,
            strategy,
        }
    }

    /// Builder-style override of the repeat-offset parse preference.
    pub fn with_rep_preference(mut self, rep_preference: bool) -> Self {
        self.rep_preference = rep_preference;
        self
    }

    /// Builder-style override of the window log.
    pub fn with_window_log(mut self, window_log: u32) -> Self {
        self.window_log = window_log;
        self
    }

    /// Builder-style override of the minimum match length.
    pub fn with_min_match(mut self, min_match: u32) -> Self {
        self.min_match = min_match;
        self
    }

    /// Shrinks table sizes for small inputs.
    ///
    /// "For smaller inputs, Zstd shrinks its hash tables, because there
    /// is little benefit to using a 1MB hash table to process 1KB of
    /// input. Shrinking the table will make the algorithm significantly
    /// faster because the working memory will sit in a faster cache."
    /// (paper, §IV-E). This adjustment — together with the fixed
    /// per-compression setup cost of allocating the tables — is what
    /// produces Figure 13's non-monotonic speed profile.
    pub fn shrunk_for_input(mut self, input_len: usize) -> Self {
        if input_len == 0 {
            return self;
        }
        // Smallest power of two covering the input, floor 10 (1 KiB).
        let input_log = (usize::BITS - (input_len - 1).max(1).leading_zeros()).max(10);
        self.hash_log = self.hash_log.min(input_log + 1).max(6);
        self.chain_log = self.chain_log.min(input_log);
        self.window_log = self.window_log.min(input_log.max(10));
        self
    }

    /// Maximum backward offset permitted by this window.
    ///
    /// One less than the window size, so formats that encode offsets in
    /// exactly `window_log` bits (e.g. lz4x's 16-bit offsets) can
    /// represent every permitted offset.
    pub fn max_offset(&self) -> usize {
        (1usize << self.window_log) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_are_ordered_by_strength() {
        assert!(Strategy::Fast < Strategy::Greedy);
        assert!(Strategy::Greedy < Strategy::Lazy);
        assert!(Strategy::Lazy < Strategy::Optimal);
    }

    #[test]
    fn shrink_reduces_tables_for_small_inputs() {
        let p = MatchParams::new(Strategy::Lazy);
        let small = p.shrunk_for_input(1024);
        assert!(small.hash_log < p.hash_log);
        assert!(small.window_log <= p.window_log);
        let large = p.shrunk_for_input(4 << 20);
        assert_eq!(large.hash_log, p.hash_log);
        assert_eq!(large.window_log, p.window_log);
    }

    #[test]
    fn shrink_is_monotone_in_input_size() {
        let p = MatchParams::new(Strategy::Greedy);
        let mut prev = 0;
        for len in [64usize, 256, 1024, 4096, 65536, 1 << 20] {
            let s = p.shrunk_for_input(len);
            assert!(s.hash_log >= prev);
            prev = s.hash_log;
        }
    }

    #[test]
    fn shrink_handles_empty_input() {
        let p = MatchParams::new(Strategy::Fast);
        assert_eq!(p.shrunk_for_input(0), p);
    }

    #[test]
    fn display_names() {
        assert_eq!(Strategy::Optimal.to_string(), "optimal");
        assert_eq!(Strategy::Fast.to_string(), "fast");
    }
}
