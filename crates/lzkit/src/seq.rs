//! LZ sequences and the reference reconstruction routine.

use crate::{Error, Result};

/// One LZ77 sequence: copy `literal_len` bytes from the literal buffer,
/// then copy `match_len` bytes from `offset` bytes back in the output.
///
/// Offsets may be smaller than `match_len` (overlapping copy), which is
/// how LZ represents runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sequence {
    /// Number of literal bytes preceding the match.
    pub literal_len: u32,
    /// Match length in bytes (>= the producing format's minimum).
    pub match_len: u32,
    /// Backward distance of the match source (>= 1).
    pub offset: u32,
}

impl Sequence {
    /// Creates a sequence.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset == 0` while `match_len > 0`.
    pub fn new(literal_len: u32, match_len: u32, offset: u32) -> Self {
        debug_assert!(match_len == 0 || offset >= 1);
        Self {
            literal_len,
            match_len,
            offset,
        }
    }
}

/// The output of a match-finding parse: a shared literal buffer plus the
/// sequences that interleave it with back-references.
///
/// This mirrors the zstd block model, where literals are gathered into
/// one section (so the entropy stage can code them together) and the
/// sequences reference them implicitly in order. Literal bytes left over
/// after the final sequence form the block's tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedBlock {
    /// Concatenated literal bytes, consumed in order by `sequences`.
    pub literals: Vec<u8>,
    /// The match sequences.
    pub sequences: Vec<Sequence>,
}

impl ParsedBlock {
    /// Creates an empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decoded (original) size this block reconstructs to.
    pub fn decoded_len(&self) -> usize {
        self.literals.len()
            + self
                .sequences
                .iter()
                .map(|s| s.match_len as usize)
                .sum::<usize>()
    }

    /// Total literal bytes consumed by sequences (excludes the tail).
    pub fn sequence_literal_len(&self) -> usize {
        self.sequences.iter().map(|s| s.literal_len as usize).sum()
    }

    /// Fraction of output bytes covered by matches (0.0 = all literals).
    pub fn match_coverage(&self) -> f64 {
        let total = self.decoded_len();
        if total == 0 {
            return 0.0;
        }
        let matched: usize = self.sequences.iter().map(|s| s.match_len as usize).sum();
        matched as f64 / total as f64
    }
}

/// Applies a parsed block on top of `prefix` history, returning the
/// reconstructed data (not including the prefix).
///
/// This is the reference decoder used to validate every match finder and
/// by the codecs' tests; the codecs inline equivalent logic in their
/// decompressors.
///
/// # Errors
///
/// * [`Error::LiteralsExhausted`] if sequences demand more literal bytes
///   than the block carries.
/// * [`Error::OffsetOutOfRange`] if a match reaches before the start of
///   the prefix.
pub fn reconstruct(block: &ParsedBlock, prefix: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(prefix.len() + block.decoded_len());
    out.extend_from_slice(prefix);
    let mut lit_pos = 0usize;
    for (i, seq) in block.sequences.iter().enumerate() {
        let lit_end = lit_pos + seq.literal_len as usize;
        if lit_end > block.literals.len() {
            return Err(Error::LiteralsExhausted);
        }
        out.extend_from_slice(&block.literals[lit_pos..lit_end]);
        lit_pos = lit_end;

        let offset = seq.offset as usize;
        if offset == 0 || offset > out.len() {
            return Err(Error::OffsetOutOfRange {
                position: i,
                offset: seq.offset,
            });
        }
        // Overlapping copies must proceed byte-serially.
        let start = out.len() - offset;
        for src in start..start + seq.match_len as usize {
            let b = out[src];
            out.push(b);
        }
    }
    out.extend_from_slice(&block.literals[lit_pos..]);
    out.drain(..prefix.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruct_literal_only() {
        let block = ParsedBlock {
            literals: b"hello".to_vec(),
            sequences: vec![],
        };
        assert_eq!(reconstruct(&block, &[]).unwrap(), b"hello");
        assert_eq!(block.decoded_len(), 5);
        assert_eq!(block.match_coverage(), 0.0);
    }

    #[test]
    fn reconstruct_with_match() {
        // "abcabc" = literals "abc" + match(len 3, offset 3).
        let block = ParsedBlock {
            literals: b"abc".to_vec(),
            sequences: vec![Sequence::new(3, 3, 3)],
        };
        assert_eq!(reconstruct(&block, &[]).unwrap(), b"abcabc");
        assert!((block.match_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reconstruct_overlapping_match() {
        // "aaaaaaa" = literal "a" + match(len 6, offset 1).
        let block = ParsedBlock {
            literals: b"a".to_vec(),
            sequences: vec![Sequence::new(1, 6, 1)],
        };
        assert_eq!(reconstruct(&block, &[]).unwrap(), b"aaaaaaa");
    }

    #[test]
    fn reconstruct_into_prefix() {
        let block = ParsedBlock {
            literals: b"!".to_vec(),
            sequences: vec![Sequence::new(0, 4, 8), Sequence::new(1, 0, 1)],
        };
        // Match starts 8 back into the prefix "dictiona" -> copies "dict".
        assert_eq!(reconstruct(&block, b"dictiona").unwrap(), b"dict!");
    }

    #[test]
    fn reconstruct_rejects_bad_offset() {
        let block = ParsedBlock {
            literals: b"ab".to_vec(),
            sequences: vec![Sequence::new(2, 3, 10)],
        };
        assert_eq!(
            reconstruct(&block, &[]),
            Err(Error::OffsetOutOfRange {
                position: 0,
                offset: 10
            })
        );
    }

    #[test]
    fn reconstruct_rejects_missing_literals() {
        let block = ParsedBlock {
            literals: b"a".to_vec(),
            sequences: vec![Sequence::new(5, 0, 1)],
        };
        assert_eq!(reconstruct(&block, &[]), Err(Error::LiteralsExhausted));
    }

    #[test]
    fn tail_literals_are_appended() {
        let block = ParsedBlock {
            literals: b"abXtail".to_vec(),
            sequences: vec![Sequence::new(2, 2, 2)],
        };
        assert_eq!(reconstruct(&block, &[]).unwrap(), b"ababXtail");
    }
}
