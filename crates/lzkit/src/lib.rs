//! LZ77 match-finding substrate shared by all datacomp codecs.
//!
//! The paper (Section II-B) describes LZ compressors as a *match-finding
//! stage* that emits literals and sequences, followed by an *encoding
//! stage*. This crate is the match-finding stage: it turns a byte block
//! into a [`ParsedBlock`] — a literal buffer plus a list of
//! [`Sequence`]s — that the codecs (`lz4x`, `zlibx`, `zstdx`) then encode
//! with their respective entropy schemes.
//!
//! The compression-speed ↔ ratio trade-off that the paper attributes to
//! the match-finding stage is materialized here as [`Strategy`]:
//!
//! * [`Strategy::Fast`] — single-probe hash table with skip
//!   acceleration (LZ4-style greedy).
//! * [`Strategy::Greedy`] — hash chain, takes the best match at each
//!   position.
//! * [`Strategy::Lazy`] — hash chain with one-position lazy evaluation.
//! * [`Strategy::Optimal`] — price-based dynamic-programming parse over
//!   hash-chain candidates ("slow dynamic programming algorithms which
//!   attempt to find the optimal encoding", §II-B).
//!
//! Parameters ([`MatchParams`]) mirror the knobs compression levels tune
//! in real codecs: window size, hash/chain table sizes, probe counts,
//! minimum match length. [`MatchParams::shrunk_for_input`] reproduces the
//! hash-table shrinking for small inputs that the paper calls out in its
//! KVSTORE1 study (Section IV-E).
//!
//! # Example
//!
//! ```
//! use lzkit::{parse, reconstruct, MatchParams, Strategy};
//!
//! let data = b"a quick brown fox, a quick brown dog, a quick brown cat";
//! let params = MatchParams::new(Strategy::Greedy);
//! let block = parse(data, 0, &params);
//! assert!(block.sequences.len() >= 2); // repeated "a quick brown " found
//! let restored = reconstruct(&block, &[]).unwrap();
//! assert_eq!(restored, data);
//! ```

// Match finding indexes window/head/chain arrays on every probe; the
// panic-free indexing contract applies to *decode* paths, enforced by
// `#[deny(clippy::indexing_slicing)]` on those functions in the codec
// crates. Compress-side indexing here is bounds-checked by
// construction and stays idiomatic.
#![allow(clippy::indexing_slicing)]
#![warn(missing_docs)]

mod hashchain;
mod hashfast;
mod optimal;
mod params;
mod seq;

pub use params::{MatchParams, Strategy};
pub use seq::{reconstruct, ParsedBlock, Sequence};

/// Errors produced when validating or applying LZ sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A sequence's offset reaches before the start of the window.
    OffsetOutOfRange {
        /// Index of the offending sequence.
        position: usize,
        /// The out-of-range backward distance.
        offset: u32,
    },
    /// The literal buffer is shorter than the sequences demand.
    LiteralsExhausted,
    /// A match length is below the format minimum.
    MatchTooShort(u32),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::OffsetOutOfRange { position, offset } => {
                write!(f, "offset {offset} out of range at position {position}")
            }
            Error::LiteralsExhausted => write!(f, "literal buffer exhausted"),
            Error::MatchTooShort(l) => write!(f, "match length {l} below minimum"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for sequence validation/application.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses `buf[start..]` into literals and match sequences.
///
/// `buf[..start]` is treated as already-processed history (a dictionary
/// or earlier frame content): matches may reference it, but no output is
/// produced for it. The parse is driven by `params.strategy`, with all
/// table sizes first shrunk for the input size via
/// [`MatchParams::shrunk_for_input`].
///
/// The returned block always reconstructs exactly `buf[start..]` (see
/// [`reconstruct`]); this invariant is property-tested.
///
/// # Panics
///
/// Panics if `start > buf.len()`.
pub fn parse(buf: &[u8], start: usize, params: &MatchParams) -> ParsedBlock {
    assert!(start <= buf.len(), "start beyond buffer");
    let mut p = params.shrunk_for_input(buf.len() - start);
    // Table sizes shrink with the block being parsed, but the window is
    // only capped by the *total* history available (earlier frame
    // content / dictionary), not by the block length — a block in the
    // middle of a frame may match far back into it.
    if buf.len() > 1 {
        let avail_log = (usize::BITS - (buf.len() - 1).leading_zeros()).max(10);
        p.window_log = params.window_log.min(avail_log);
    }
    match p.strategy {
        Strategy::Fast => hashfast::parse(buf, start, &p),
        Strategy::Greedy => hashchain::parse(buf, start, &p, false),
        Strategy::Lazy => hashchain::parse(buf, start, &p, true),
        Strategy::Optimal => optimal::parse(buf, start, &p),
    }
}

/// Compares bytes at `a` and `b`, returning the shared prefix length,
/// reading at most until `limit` (exclusive upper index for `b`).
///
/// `a < b` is required; the comparison reads 8 bytes at a time.
#[inline]
pub(crate) fn match_length(buf: &[u8], a: usize, b: usize, limit: usize) -> usize {
    debug_assert!(a < b);
    let max = limit - b;
    let mut n = 0;
    while n + 8 <= max {
        let x = u64::from_le_bytes(buf[a + n..a + n + 8].try_into().unwrap());
        let y = u64::from_le_bytes(buf[b + n..b + n + 8].try_into().unwrap());
        let diff = x ^ y;
        if diff != 0 {
            return n + (diff.trailing_zeros() / 8) as usize;
        }
        n += 8;
    }
    while n < max && buf[a + n] == buf[b + n] {
        n += 1;
    }
    n
}

/// Reads a 4-byte little-endian word at `pos`.
#[inline]
pub(crate) fn read_u32(buf: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap())
}

/// Multiplicative hash of the 4 bytes at `pos` into `hash_log` bits.
#[inline]
pub(crate) fn hash4(buf: &[u8], pos: usize, hash_log: u32) -> usize {
    (read_u32(buf, pos).wrapping_mul(2_654_435_761) >> (32 - hash_log)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_length_finds_prefix() {
        let buf = b"abcdefgh_abcdefgh_abcdeXgh";
        // Periodic region: positions 0 and 9 agree until the 'X' breaks it.
        assert_eq!(match_length(buf, 0, 9, buf.len()), 14);
        assert_eq!(match_length(buf, 0, 18, buf.len()), 5);
    }

    #[test]
    fn match_length_honors_limit() {
        let buf = b"aaaaaaaaaaaaaaaaaaaaaaaa";
        assert_eq!(match_length(buf, 0, 4, 10), 6);
    }

    #[test]
    fn match_length_overlapping_run() {
        // Self-referential RLE-style match: a=0, b=1 over a run.
        let buf = b"aaaaaaaaaaab";
        assert_eq!(match_length(buf, 0, 1, buf.len()), 10);
    }

    #[test]
    fn parse_empty_input() {
        let params = MatchParams::new(Strategy::Greedy);
        let block = parse(b"", 0, &params);
        assert!(block.sequences.is_empty());
        assert!(block.literals.is_empty());
    }

    #[test]
    fn parse_rejects_bad_start() {
        let params = MatchParams::new(Strategy::Fast);
        let r = std::panic::catch_unwind(|| parse(b"ab", 5, &params));
        assert!(r.is_err());
    }

    #[test]
    fn all_strategies_roundtrip_mixed_data() {
        let mut data = Vec::new();
        for i in 0..200u32 {
            data.extend_from_slice(format!("record-{}|{}|", i % 17, i).as_bytes());
            data.extend_from_slice(&i.to_le_bytes());
        }
        for strategy in [
            Strategy::Fast,
            Strategy::Greedy,
            Strategy::Lazy,
            Strategy::Optimal,
        ] {
            let params = MatchParams::new(strategy);
            let block = parse(&data, 0, &params);
            let restored = reconstruct(&block, &[]).unwrap();
            assert_eq!(restored, data, "{strategy:?} failed roundtrip");
            assert!(
                !block.sequences.is_empty(),
                "{strategy:?} found no matches in redundant data"
            );
        }
    }

    #[test]
    fn dictionary_prefix_enables_matches() {
        let dict = b"the common preamble shared by every message in this type";
        let msg = b"the common preamble shared by every message differs at the end";
        let mut buf = dict.to_vec();
        let start = buf.len();
        buf.extend_from_slice(msg);
        for strategy in [
            Strategy::Fast,
            Strategy::Greedy,
            Strategy::Lazy,
            Strategy::Optimal,
        ] {
            let params = MatchParams::new(strategy);
            let block = parse(&buf, start, &params);
            let restored = reconstruct(&block, dict).unwrap();
            assert_eq!(restored, msg, "{strategy:?} failed dict roundtrip");
            // The long shared prefix must be found as a match into the dict.
            assert!(
                block.literals.len() < msg.len() / 2,
                "{strategy:?} did not exploit the dictionary"
            );
        }
    }

    #[test]
    fn stronger_strategies_compress_no_worse() {
        // On highly structured data the parse cost (literals + sequences)
        // should not degrade as strategies get stronger.
        let data: Vec<u8> = (0..20_000u32)
            .flat_map(|i| format!("key{:04}=value{:02};", i % 300, i % 7).into_bytes())
            .collect();
        let approx_cost = |s: Strategy| {
            let block = parse(&data, 0, &MatchParams::new(s));
            block.literals.len() + 3 * block.sequences.len()
        };
        let fast = approx_cost(Strategy::Fast);
        let greedy = approx_cost(Strategy::Greedy);
        let lazy = approx_cost(Strategy::Lazy);
        let optimal = approx_cost(Strategy::Optimal);
        assert!(greedy <= fast, "greedy {greedy} worse than fast {fast}");
        assert!(lazy <= greedy, "lazy {lazy} worse than greedy {greedy}");
        assert!(
            optimal <= lazy + lazy / 10,
            "optimal {optimal} much worse than lazy {lazy}"
        );
    }

    #[test]
    fn incompressible_data_yields_mostly_literals() {
        // A pseudo-random block: no strategy should find much.
        let mut state = 0x1234_5678_9abc_def0u64;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let block = parse(&data, 0, &MatchParams::new(Strategy::Lazy));
        assert!(block.literals.len() > data.len() * 9 / 10);
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
    }
}
