//! Hash-chain match finder: `Greedy` and `Lazy` strategies.
//!
//! A classic zlib/zstd-style chain: `head[hash]` points at the most
//! recent position with that hash, `chain[pos & mask]` links to the
//! previous one. The lazy variant re-evaluates at `pos + 1` and defers
//! the current match when the next position offers a longer one — the
//! mid-level compression behaviour of real codecs.

use crate::params::MatchParams;
use crate::seq::{ParsedBlock, Sequence};
use crate::{hash4, match_length};

pub(crate) struct ChainFinder<'b> {
    buf: &'b [u8],
    head: Vec<u32>,
    chain: Vec<u32>,
    chain_mask: usize,
    hash_log: u32,
    max_offset: usize,
    min_match: usize,
    target_length: usize,
    search_attempts: u32,
    /// Next position to insert into the tables.
    inserted: usize,
    /// Number of positions at which a 4-byte hash exists.
    hash_limit: usize,
}

impl<'b> ChainFinder<'b> {
    pub(crate) fn new(buf: &'b [u8], p: &MatchParams) -> Self {
        // The chain table must cover the whole window: if positions
        // wrap within the window, newer inserts clobber live chain
        // links and the walk degrades to one or two hops. (zlib sizes
        // prev[] to exactly its window for the same reason.)
        let span = p.max_offset().min(buf.len()).max(2);
        let span_log = usize::BITS - (span - 1).leading_zeros();
        let chain_log = p.chain_log.max(span_log).clamp(1, 22);
        let chain_size = 1usize << chain_log;
        Self {
            buf,
            head: vec![u32::MAX; 1usize << p.hash_log],
            chain: vec![u32::MAX; chain_size],
            chain_mask: chain_size - 1,
            hash_log: p.hash_log,
            max_offset: p.max_offset(),
            min_match: p.min_match as usize,
            target_length: p.target_length as usize,
            search_attempts: p.search_attempts.max(1),
            inserted: 0,
            hash_limit: buf.len().saturating_sub(3),
        }
    }

    /// Inserts all positions up to and including `upto`.
    pub(crate) fn insert_through(&mut self, upto: usize) {
        while self.inserted <= upto && self.inserted < self.hash_limit {
            let pos = self.inserted;
            let h = hash4(self.buf, pos, self.hash_log);
            self.chain[pos & self.chain_mask] = self.head[h];
            self.head[h] = pos as u32;
            self.inserted += 1;
        }
    }

    /// Finds the best match at `pos`. Returns `(length, offset)`; length
    /// 0 means no acceptable match. Requires `pos` already inserted.
    pub(crate) fn best_match(&self, pos: usize) -> (usize, usize) {
        if pos >= self.hash_limit {
            return (0, 0);
        }
        let buf = self.buf;
        let len = buf.len();
        let mut best_len = self.min_match - 1;
        let mut best_off = 0usize;
        // `pos` itself is the chain head after insertion; start at its
        // predecessor.
        let mut cand = self.chain[pos & self.chain_mask];
        let mut attempts = self.search_attempts;
        while cand != u32::MAX && attempts > 0 {
            let c = cand as usize;
            if c >= pos || pos - c > self.max_offset {
                break;
            }
            // Quick rejection: the byte that would extend the best match.
            if pos + best_len < len && buf[c + best_len] == buf[pos + best_len] {
                let l = match_length(buf, c, pos, len);
                // Offset-aware acceptance: a farther match must be enough
                // longer to pay for its extra offset bits (~4 bits of
                // entropy-coded output per matched byte).
                if l > best_len && 4 * (l - best_len) as i64 >= offset_bit_delta(pos - c, best_off)
                {
                    best_len = l;
                    best_off = pos - c;
                    if l >= self.target_length {
                        break;
                    }
                }
            }
            let next = self.chain[c & self.chain_mask];
            // Stale-entry guard: chains must strictly decrease.
            if next != u32::MAX && next as usize >= c {
                break;
            }
            cand = next;
            attempts -= 1;
        }
        if best_len >= self.min_match {
            (best_len, best_off)
        } else {
            (0, 0)
        }
    }

    /// Gathers up to `cap` candidates at `pos` with strictly increasing
    /// match lengths (closest-first along the chain, so each kept entry
    /// pairs a longer length with a larger offset). Used by the optimal
    /// parser.
    pub(crate) fn candidates(&self, pos: usize, cap: usize, out: &mut Vec<(u32, u32)>) {
        out.clear();
        if pos >= self.hash_limit {
            return;
        }
        let buf = self.buf;
        let len = buf.len();
        let mut best_len = self.min_match - 1;
        let mut cand = self.chain[pos & self.chain_mask];
        let mut attempts = self.search_attempts;
        while cand != u32::MAX && attempts > 0 && out.len() < cap {
            let c = cand as usize;
            if c >= pos || pos - c > self.max_offset {
                break;
            }
            if pos + best_len < len && buf[c + best_len] == buf[pos + best_len] {
                let l = match_length(buf, c, pos, len);
                if l > best_len {
                    best_len = l;
                    out.push((l as u32, (pos - c) as u32));
                }
            }
            let next = self.chain[c & self.chain_mask];
            if next != u32::MAX && next as usize >= c {
                break;
            }
            cand = next;
            attempts -= 1;
        }
    }
}

/// Extra offset bits a candidate at `new_off` costs over `best_off`
/// (0 when there is no current best).
#[inline]
fn offset_bit_delta(new_off: usize, best_off: usize) -> i64 {
    if best_off == 0 {
        return 0;
    }
    let bits = |o: usize| (usize::BITS - o.leading_zeros()) as i64;
    bits(new_off) - bits(best_off)
}

pub(crate) fn parse(buf: &[u8], start: usize, p: &MatchParams, lazy: bool) -> ParsedBlock {
    let len = buf.len();
    let mut block = ParsedBlock::new();
    if len - start == 0 {
        return block;
    }

    let mut finder = ChainFinder::new(buf, p);
    if start > 0 {
        finder.insert_through(start - 1);
    }

    let mut pos = start;
    let mut anchor = start;
    // Repeat-offset preference: the entropy stage codes a repeated
    // offset almost for free, so a match at the previous offset wins
    // unless the chain finds one clearly longer (zstd's lazy matcher
    // applies the same rule).
    let mut last_offset = 0usize;
    while pos < finder.hash_limit {
        finder.insert_through(pos);
        // Rep check first: a long-enough repeat match short-circuits the
        // chain walk entirely (as in zstd), which also keeps degenerate
        // buckets — e.g. oceans of zero bytes — from dragging the search.
        let rep_len = if p.rep_preference && last_offset > 0 && last_offset <= pos {
            match_length(buf, pos - last_offset, pos, len)
        } else {
            0
        };
        let (mut mlen, mut moff);
        if rep_len >= finder.min_match.max(8).min(finder.target_length) {
            mlen = rep_len;
            moff = last_offset;
        } else {
            let found = finder.best_match(pos);
            mlen = found.0;
            moff = found.1;
            if rep_len >= finder.min_match && rep_len + 3 >= mlen {
                mlen = rep_len;
                moff = last_offset;
            }
        }
        if mlen == 0 {
            pos += 1;
            continue;
        }
        let mut mpos = pos;
        if lazy && pos + 1 < finder.hash_limit {
            finder.insert_through(pos + 1);
            let (l2, o2) = finder.best_match(pos + 1);
            // Deferring costs one literal; require a strictly longer match.
            if l2 > mlen {
                mlen = l2;
                moff = o2;
                mpos = pos + 1;
            }
        }

        // Backward extension into pending literals.
        let mut src = mpos - moff;
        let mut back = 0usize;
        while mpos - back > anchor && src > back && buf[mpos - back - 1] == buf[src - back - 1] {
            back += 1;
        }
        let mpos = mpos - back;
        src -= back;
        let mlen = mlen + back;
        debug_assert_eq!(mpos - src, moff);

        block.literals.extend_from_slice(&buf[anchor..mpos]);
        block.sequences.push(Sequence::new(
            (mpos - anchor) as u32,
            mlen as u32,
            moff as u32,
        ));
        last_offset = moff;
        // Index the interior of the match so later repeats are visible.
        finder.insert_through(mpos + mlen - 1);
        pos = mpos + mlen;
        anchor = pos;
    }

    block.literals.extend_from_slice(&buf[anchor..]);
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::reconstruct;
    use crate::Strategy;

    fn greedy() -> MatchParams {
        MatchParams::new(Strategy::Greedy)
    }

    fn lazy() -> MatchParams {
        MatchParams::new(Strategy::Lazy)
    }

    #[test]
    fn greedy_roundtrip() {
        let data = b"abcabcabcabc_then_something_else_abcabc";
        let block = parse(data, 0, &greedy().shrunk_for_input(data.len()), false);
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
    }

    #[test]
    fn chain_finds_farther_better_match() {
        // A longer match sits farther back than the most recent chain
        // candidate; the walk must go past the near one. Lazy evaluation
        // is needed because a decoy match begins one position earlier.
        let data = b"match_longer_XXXX_match_lo_YYYY_match_longer_";
        let p = lazy().shrunk_for_input(data.len());
        let block = parse(data, 0, &p, true);
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
        let max_match = block.sequences.iter().map(|s| s.match_len).max().unwrap();
        assert!(
            max_match >= 13,
            "expected 'match_longer_' match, got {max_match}"
        );
    }

    #[test]
    fn lazy_beats_greedy_on_crafted_input() {
        // At position p a 4-byte match exists, but p+1 starts a much
        // longer one. Greedy takes the short match and truncates the
        // long one; lazy defers.
        let data = b"abcd~~~~bcdefghijklmnop____abcdefghijklmnop";
        let pg = greedy().shrunk_for_input(data.len());
        let pl = lazy().shrunk_for_input(data.len());
        let g = parse(data, 0, &pg, false);
        let l = parse(data, 0, &pl, true);
        assert_eq!(reconstruct(&g, &[]).unwrap(), data);
        assert_eq!(reconstruct(&l, &[]).unwrap(), data);
        let cost = |b: &ParsedBlock| b.literals.len() + 3 * b.sequences.len();
        assert!(cost(&l) <= cost(&g));
    }

    #[test]
    fn respects_window_limit() {
        // Repeat separated by more than the window: no match allowed.
        let mut data = b"unique_prefix_0123456789".to_vec();
        data.extend(vec![b'.'; 2100]);
        data.extend_from_slice(b"unique_prefix_0123456789");
        let p = greedy().with_window_log(10); // 1 KiB window
        let block = parse(&data, 0, &p, false);
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
        for s in &block.sequences {
            assert!(s.offset as usize <= 1 << 10);
        }
    }

    #[test]
    fn candidates_increasing_lengths() {
        let data = b"abcd_1_abcde_2_abcdef_3_abcdefg";
        let p = greedy().shrunk_for_input(data.len());
        let mut f = ChainFinder::new(data, &p);
        f.insert_through(data.len());
        let pos = data.len() - 7; // final "abcdefg"
        let mut cands = Vec::new();
        f.candidates(pos, 8, &mut cands);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[1].0 > w[0].0, "lengths must strictly increase");
            assert!(w[1].1 > w[0].1, "offsets must strictly increase");
        }
    }

    #[test]
    fn long_runs_terminate() {
        // Hash chains on runs are degenerate; target_length early exit
        // plus attempt caps must keep this fast and correct.
        let data = vec![0u8; 100_000];
        let block = parse(&data, 0, &lazy().shrunk_for_input(data.len()), true);
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
        assert!(block.literals.len() < 64);
    }
}
