//! Single-probe hash-table match finder (LZ4-style `Fast` strategy).
//!
//! One hash-table entry per bucket, greedy acceptance of any 4-byte
//! verified match, backward extension into pending literals, and LZ4's
//! skip acceleration on incompressible regions. This is the strategy
//! behind the low compression levels whose dominance the paper reports
//! in its fleet-level level-usage characterization (Figure 4).

use crate::params::MatchParams;
use crate::seq::{ParsedBlock, Sequence};
use crate::{hash4, match_length, read_u32};

/// How fast the skip stride grows over unmatched territory.
const SKIP_TRIGGER: u32 = 6;

pub(crate) fn parse(buf: &[u8], start: usize, p: &MatchParams) -> ParsedBlock {
    let len = buf.len();
    let mut block = ParsedBlock::new();
    if len - start == 0 {
        return block;
    }

    let mut table = vec![u32::MAX; 1usize << p.hash_log];
    let max_offset = p.max_offset();
    // Number of positions where a 4-byte hash can be formed.
    let hash_limit = len.saturating_sub(3);

    // Load history (dictionary / earlier frame content).
    for pos in 0..start.min(hash_limit) {
        table[hash4(buf, pos, p.hash_log)] = pos as u32;
    }

    let mut pos = start;
    let mut anchor = start;
    let mut searched: u32 = 0;
    // Repeat-offset preference, as in the chain finder: reusing the
    // previous offset is nearly free for the entropy stage.
    let mut last_offset = 0usize;

    while pos < hash_limit {
        let h = hash4(buf, pos, p.hash_log);
        let cand = table[h];
        table[h] = pos as u32;

        let mut matched = false;
        let rep_len = if p.rep_preference && last_offset > 0 && last_offset <= pos {
            match_length(buf, pos - last_offset, pos, len)
        } else {
            0
        };
        if rep_len >= p.min_match as usize {
            block.literals.extend_from_slice(&buf[anchor..pos]);
            block.sequences.push(Sequence::new(
                (pos - anchor) as u32,
                rep_len as u32,
                last_offset as u32,
            ));
            pos += rep_len;
            anchor = pos;
            searched = 0;
            continue;
        }
        if cand != u32::MAX {
            let c = cand as usize;
            if c < pos && pos - c <= max_offset && read_u32(buf, c) == read_u32(buf, pos) {
                let fwd = 4 + match_length(buf, c + 4, pos + 4, len);
                // Extend backward into pending literals.
                let mut back = 0usize;
                while pos - back > anchor && c > back && buf[pos - back - 1] == buf[c - back - 1] {
                    back += 1;
                }
                let mpos = pos - back;
                let mlen = fwd + back;
                if mlen >= p.min_match as usize {
                    block.literals.extend_from_slice(&buf[anchor..mpos]);
                    block.sequences.push(Sequence::new(
                        (mpos - anchor) as u32,
                        mlen as u32,
                        (pos - c) as u32,
                    ));
                    last_offset = pos - c;
                    pos += fwd;
                    anchor = pos;
                    searched = 0;
                    // Seed one interior position so adjacent repeats chain.
                    if pos >= 2 && pos - 2 >= start && pos - 2 < hash_limit {
                        table[hash4(buf, pos - 2, p.hash_log)] = (pos - 2) as u32;
                    }
                    matched = true;
                }
            }
        }
        if !matched {
            searched += 1;
            pos += 1 + (searched >> SKIP_TRIGGER) as usize;
        }
    }

    block.literals.extend_from_slice(&buf[anchor..]);
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::reconstruct;
    use crate::Strategy;

    fn params() -> MatchParams {
        MatchParams::new(Strategy::Fast)
    }

    #[test]
    fn finds_simple_repeat() {
        let data = b"0123456789_0123456789_0123456789";
        let block = parse(data, 0, &params().shrunk_for_input(data.len()));
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
        // One overlapping match can cover both repeats; what matters is
        // that most of the data is matched, not literal.
        assert!(!block.sequences.is_empty());
        assert!(block.literals.len() <= data.len() / 2);
    }

    #[test]
    fn backward_extension_grabs_preceding_bytes() {
        // The hash probe lands mid-repeat; backward extension must still
        // recover the full second occurrence.
        let data = b"xyzw_abcdefgh_longer_abcdefgh_longer_tail";
        let block = parse(data, 0, &params().shrunk_for_input(data.len()));
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
        let max_match = block
            .sequences
            .iter()
            .map(|s| s.match_len)
            .max()
            .unwrap_or(0);
        assert!(
            max_match >= 15,
            "expected full '_abcdefgh_longer' match, got {max_match}"
        );
    }

    #[test]
    fn run_compresses_via_overlap() {
        let data = vec![b'z'; 500];
        let block = parse(&data, 0, &params().shrunk_for_input(data.len()));
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
        assert!(block.literals.len() < 16);
    }

    #[test]
    fn skip_acceleration_still_correct() {
        // Incompressible head followed by a compressible tail.
        let mut state = 42u64;
        let mut data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        data.extend(std::iter::repeat_n(b"pattern!", 64).flatten());
        let block = parse(&data, 0, &params().shrunk_for_input(data.len()));
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
    }

    #[test]
    fn tiny_inputs_are_all_literals() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            let block = parse(data, 0, &params().shrunk_for_input(data.len()));
            assert_eq!(reconstruct(&block, &[]).unwrap(), data);
            assert!(block.sequences.is_empty());
        }
    }
}
