//! Price-based optimal parser (`Strategy::Optimal`).
//!
//! This is the "slow dynamic programming" end of the match-finding
//! spectrum the paper describes (§II-B). A forward pass gathers match
//! candidates at every position via the hash chain; a backward dynamic
//! program then picks, per position, the cheapest continuation under an
//! approximate bit-price model; a final forward walk materializes the
//! chosen sequences.
//!
//! The price model is deliberately simple (static literal price,
//! log-priced offsets and lengths): the point is the parse *shape* —
//! sacrificing a long match now for two cheaper ones later — not exact
//! entropy accounting.

use crate::hashchain::ChainFinder;
use crate::params::MatchParams;
use crate::seq::{ParsedBlock, Sequence};

/// Candidates kept per position.
const MAX_CANDIDATES: usize = 6;

/// When a candidate at least this long is found, candidate gathering
/// skips ahead (the DP will almost surely ride the long match); this
/// keeps the gathering pass near-linear on highly redundant data.
const SKIP_AFTER_LEN: u32 = 96;

/// Approximate price of one literal, in bits.
const LITERAL_PRICE: u32 = 6;

/// Length breakpoints at which match prices change; evaluating only
/// these keeps the DP near-linear while still letting it shorten
/// matches when profitable.
const LENGTH_BREAKS: [u32; 12] = [4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192];

#[inline]
fn match_price(len: u32, offset: u32, min_match: u32) -> u32 {
    let off_bits = 32 - offset.leading_zeros();
    let len_bits = 32 - (len - min_match + 1).leading_zeros();
    6 + off_bits + len_bits
}

pub(crate) fn parse(buf: &[u8], start: usize, p: &MatchParams) -> ParsedBlock {
    let len = buf.len();
    let n = len - start;
    let mut block = ParsedBlock::new();
    if n == 0 {
        return block;
    }

    // Pass 1: gather candidates at every position.
    let mut finder = ChainFinder::new(buf, p);
    let mut cands: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    let mut scratch = Vec::with_capacity(MAX_CANDIDATES);
    let mut i = 0usize;
    while i < n {
        let pos = start + i;
        finder.insert_through(pos);
        finder.candidates(pos, MAX_CANDIDATES, &mut scratch);
        let longest = scratch.last().map_or(0, |&(l, _)| l);
        cands[i] = scratch.clone();
        if longest >= SKIP_AFTER_LEN {
            // Keep the interior indexed but skip per-position gathering
            // until near the end of the long match.
            let skip = (longest - 16) as usize;
            finder.insert_through((pos + skip).min(buf.len()));
            i += skip;
        } else {
            i += 1;
        }
    }

    // Pass 2: backward DP. cost[i] = cheapest encoding of data[i..].
    let mut cost = vec![u32::MAX; n + 1];
    // choice[i]: (match_len, offset); match_len == 0 means literal.
    let mut choice = vec![(0u32, 0u32); n];
    cost[n] = 0;
    for i in (0..n).rev() {
        let mut best = cost[i + 1].saturating_add(LITERAL_PRICE);
        let mut pick = (0u32, 0u32);
        for &(clen, coff) in &cands[i] {
            let clen = clen.min((n - i) as u32);
            if clen < p.min_match {
                continue;
            }
            // Evaluate the full candidate length plus cheaper breakpoints.
            let full = cost[i + clen as usize].saturating_add(match_price(clen, coff, p.min_match));
            if full < best {
                best = full;
                pick = (clen, coff);
            }
            for &bl in &LENGTH_BREAKS {
                if bl >= clen || bl < p.min_match {
                    continue;
                }
                let c = cost[i + bl as usize].saturating_add(match_price(bl, coff, p.min_match));
                if c < best {
                    best = c;
                    pick = (bl, coff);
                }
            }
        }
        cost[i] = best;
        choice[i] = pick;
    }

    // Pass 3: forward walk materializing sequences.
    let mut i = 0usize;
    let mut lit_run = 0u32;
    while i < n {
        let (mlen, moff) = choice[i];
        if mlen == 0 {
            block.literals.push(buf[start + i]);
            lit_run += 1;
            i += 1;
        } else {
            block.sequences.push(Sequence::new(lit_run, mlen, moff));
            lit_run = 0;
            i += mlen as usize;
        }
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::reconstruct;
    use crate::Strategy;

    fn params() -> MatchParams {
        MatchParams::new(Strategy::Optimal)
    }

    #[test]
    fn roundtrip_structured() {
        let data: Vec<u8> = (0..500u32)
            .flat_map(|i| format!("row={},col={};", i % 40, i % 9).into_bytes())
            .collect();
        let block = parse(&data, 0, &params().shrunk_for_input(data.len()));
        assert_eq!(reconstruct(&block, &[]).unwrap(), data);
        assert!(block.match_coverage() > 0.5);
    }

    #[test]
    fn roundtrip_with_history() {
        let dict = b"shared message schema: {id, name, payload}";
        let msg = b"shared message schema: {id, name, payload} plus extras";
        let mut buf = dict.to_vec();
        let start = buf.len();
        buf.extend_from_slice(msg);
        let block = parse(&buf, start, &params());
        assert_eq!(reconstruct(&block, dict).unwrap(), msg);
    }

    #[test]
    fn prefers_cheaper_parse_than_greedy_on_adversarial_input() {
        // Classic optimal-parse win: taking the greedy long match forces
        // an expensive continuation.
        let data = b"abcdefgh__cdefghijklmnoZZZabcdefghijklmno".to_vec();
        let o = parse(&data, 0, &params().shrunk_for_input(data.len()));
        let g = crate::hashchain::parse(
            &data,
            0,
            &MatchParams::new(Strategy::Greedy).shrunk_for_input(data.len()),
            false,
        );
        assert_eq!(reconstruct(&o, &[]).unwrap(), data);
        let price = |b: &ParsedBlock| {
            b.literals.len() as u32 * LITERAL_PRICE
                + b.sequences
                    .iter()
                    .map(|s| match_price(s.match_len, s.offset, 3))
                    .sum::<u32>()
        };
        assert!(price(&o) <= price(&g));
    }

    #[test]
    fn price_model_monotone() {
        // Longer matches and nearer offsets never price higher.
        assert!(match_price(4, 8, 3) <= match_price(4, 1000, 3));
        assert!(match_price(100, 8, 3) >= match_price(4, 8, 3));
        // But per-byte, long matches are far cheaper.
        assert!(match_price(100, 8, 3) < 25 * match_price(4, 8, 3));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for data in [&b""[..], b"x", b"xy", b"xyz"] {
            let block = parse(data, 0, &params().shrunk_for_input(data.len()));
            assert_eq!(reconstruct(&block, &[]).unwrap(), data);
        }
    }
}
