//! Sweep harness asserting the decode contract.
//!
//! The contract, for every decode of a corrupted frame:
//!
//! 1. it returns `Err(CodecError)` or an `Ok` whose bytes equal the
//!    original input (a corruption the format provably tolerates) —
//!    never `Ok` with silently wrong bytes;
//! 2. it never panics;
//! 3. it never produces output beyond the caller-supplied
//!    [`codecs::DecodeLimits`] byte budget (the harness sets the budget
//!    to the original input size, so header-inflation attacks must be
//!    rejected before allocation, not after).

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};

use codecs::{Algorithm, Compressor, DecodeLimits};

use crate::inject::Injector;
use crate::rng::Rng;

/// Outcome of decoding one corrupted variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Decode returned `Err` — the corruption was detected.
    ErrorDetected,
    /// Decode returned `Ok` with bytes identical to the original input.
    /// Possible when the flipped bits were redundant (e.g. padding).
    OkIntact,
    /// Decode returned `Ok` with wrong bytes, or output exceeding the
    /// decode limit. A contract violation.
    SilentCorruption,
    /// Decode panicked. A contract violation.
    Panicked,
}

/// Aggregated outcomes for one `(injector, codec)` cell of the sweep.
#[derive(Debug, Clone, Default)]
pub struct Cell {
    /// Total corrupted variants decoded.
    pub cases: usize,
    /// Variants whose corruption was detected as `Err`.
    pub error_detected: usize,
    /// Variants decoding to the original bytes.
    pub ok_intact: usize,
    /// Contract violations: wrong bytes returned as `Ok`.
    pub silent_corruption: usize,
    /// Contract violations: the decoder panicked.
    pub panicked: usize,
    /// Histogram of [`codecs::CodecError::kind`] labels seen.
    pub error_kinds: BTreeMap<&'static str, usize>,
}

impl Cell {
    fn record(&mut self, outcome: Outcome, kind: Option<&'static str>) {
        self.cases += 1;
        match outcome {
            Outcome::ErrorDetected => self.error_detected += 1,
            Outcome::OkIntact => self.ok_intact += 1,
            Outcome::SilentCorruption => self.silent_corruption += 1,
            Outcome::Panicked => self.panicked += 1,
        }
        if let Some(k) = kind {
            *self.error_kinds.entry(k).or_insert(0) += 1;
        }
    }

    /// Contract violations in this cell.
    pub fn violations(&self) -> usize {
        self.silent_corruption + self.panicked
    }
}

/// Full sweep report: one [`Cell`] per `(injector, codec)` pair.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Cells keyed `(injector name, codec name)`, in sweep order.
    pub cells: Vec<((&'static str, &'static str), Cell)>,
    /// Seed the sweep ran with (for replay).
    pub seed: u64,
}

impl Report {
    // indexing_slicing: `i` comes from `position()` on `cells` itself.
    #[allow(clippy::indexing_slicing)]
    fn cell_mut(&mut self, injector: &'static str, codec: &'static str) -> &mut Cell {
        if let Some(i) = self
            .cells
            .iter()
            .position(|((inj, co), _)| *inj == injector && *co == codec)
        {
            return &mut self.cells[i].1;
        }
        self.cells.push(((injector, codec), Cell::default()));
        &mut self.cells.last_mut().expect("just pushed").1
    }

    /// Total corrupted variants decoded across all cells.
    pub fn total_cases(&self) -> usize {
        self.cells.iter().map(|(_, c)| c.cases).sum()
    }

    /// Total contract violations (panics + silent corruptions).
    pub fn violations(&self) -> usize {
        self.cells.iter().map(|(_, c)| c.violations()).sum()
    }

    /// Renders a fixed-width outcome table for terminals and CI logs.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("fault-injection sweep (seed {:#x})\n", self.seed));
        s.push_str(&format!(
            "{:<16} {:<8} {:>7} {:>9} {:>9} {:>8} {:>8}\n",
            "injector", "codec", "cases", "detected", "intact", "silent", "panic"
        ));
        for ((inj, codec), c) in &self.cells {
            s.push_str(&format!(
                "{:<16} {:<8} {:>7} {:>9} {:>9} {:>8} {:>8}\n",
                inj, codec, c.cases, c.error_detected, c.ok_intact, c.silent_corruption, c.panicked
            ));
        }
        s.push_str(&format!(
            "total: {} cases, {} violations\n",
            self.total_cases(),
            self.violations()
        ));
        s
    }

    /// Histogram of error kinds across all cells.
    pub fn error_kinds(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for (_, c) in &self.cells {
            for (k, n) in &c.error_kinds {
                *out.entry(*k).or_insert(0) += n;
            }
        }
        out
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Root seed; every case derives its own deterministic stream.
    pub seed: u64,
    /// Corrupted variants generated per `(injector, block)` pair.
    pub budget_per_block: usize,
    /// Compression level used per algorithm (zstdx default 3, others 6).
    pub level: i32,
    /// Enable frame content checksums. On (the default), every silent
    /// corruption is a contract violation. Off, payload corruption that
    /// preserves valid framing is undetectable by construction — the
    /// sweep then only asserts the panic-free and limit halves of the
    /// contract, tallying the silent decodes for comparison.
    pub checksums: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 0x5157,
            budget_per_block: 64,
            level: 3,
            checksums: true,
        }
    }
}

/// Runs one decode under `catch_unwind` and classifies the outcome.
///
/// `original` is the pristine uncompressed input the frame was built
/// from; `limits` caps the decoder's output budget.
pub fn check_decode(
    comp: &dyn Compressor,
    corrupted: &[u8],
    original: &[u8],
    limits: &DecodeLimits,
) -> (Outcome, Option<&'static str>) {
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        comp.decompress_limited(corrupted, limits)
    }));
    match result {
        Err(_) => (Outcome::Panicked, None),
        // Every typed error counts as detection — including
        // `LimitExceeded` on an input the corruption left intact.
        // Refusing to decode inside the caller's budget is the limit
        // contract working, not the decoder corrupting data, so it must
        // never be tallied as `SilentCorruption`.
        Ok(Err(e)) => (Outcome::ErrorDetected, Some(e.kind())),
        // An `Ok` that overran the caller's byte budget is a limit
        // violation even if the bytes happen to be right.
        Ok(Ok(out)) if out.len() > limits.max_output => (Outcome::SilentCorruption, None),
        Ok(Ok(out)) if out == original => (Outcome::OkIntact, None),
        Ok(Ok(_)) => (Outcome::SilentCorruption, None),
    }
}

/// Silences the default panic hook for the duration of a sweep so
/// expected `catch_unwind` probes do not spam stderr; restores the
/// previous hook on drop.
pub(crate) struct QuietPanics;

impl QuietPanics {
    pub(crate) fn install() -> Self {
        panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = panic::take_hook();
    }
}

/// Sweeps `injectors` × `algos` × `blocks`, decoding every corrupted
/// variant and classifying it against the decode contract.
///
/// `blocks` are uncompressed corpus inputs; each is compressed once per
/// algorithm and corrupted `budget_per_block` ways per injector. The
/// sweep is deterministic in `cfg.seed`.
pub fn sweep(
    blocks: &[Vec<u8>],
    injectors: &[Injector],
    algos: &[Algorithm],
    cfg: &SweepConfig,
) -> Report {
    let _quiet = QuietPanics::install();
    let root = Rng::new(cfg.seed);
    let mut report = Report {
        seed: cfg.seed,
        ..Report::default()
    };
    for algo in algos {
        let comp = if cfg.checksums {
            algo.compressor_checked(cfg.level)
        } else {
            algo.compressor(cfg.level)
        };
        for (bi, block) in blocks.iter().enumerate() {
            let frame = comp.compress(block);
            let limits = DecodeLimits::with_max_output(block.len());
            for inj in injectors {
                // Key the stream by (algo, block, injector) so adding or
                // reordering sweep axes never reshuffles other cases.
                let tag = (algo_tag(*algo) << 32) ^ ((bi as u64) << 8) ^ inj_tag(*inj);
                let case_rng = root.derive(tag);
                let cell = report.cell_mut(inj.name(), algo.name());
                for variant in inj.corrupt(&frame, &case_rng, cfg.budget_per_block) {
                    let (outcome, kind) = check_decode(comp.as_ref(), &variant, block, &limits);
                    cell.record(outcome, kind);
                }
            }
        }
    }
    report
}

/// Probes the true dictionary-version-skew path: compresses `block`
/// with a trained dictionary, then decodes with a dictionary of a
/// different generation. The decode must fail (typically
/// `unknown_dict_version`) or reproduce the original bytes — never
/// return wrong bytes or panic.
pub fn dict_skew_probe(
    algo: Algorithm,
    block: &[u8],
    cfg: &SweepConfig,
) -> (Outcome, Option<&'static str>) {
    let comp = algo.compressor(cfg.level);
    let samples: Vec<&[u8]> = block.chunks(256).collect();
    let right = codecs::dict::train(&samples, 4 << 10, 1);
    let wrong = codecs::dict::Dictionary::new(right.as_bytes().to_vec(), 2);
    let frame = comp.compress_with_dict(block, &right);
    let limits = DecodeLimits::with_max_output(block.len());
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        comp.decompress_with_dict_limited(&frame, &wrong, &limits)
    }));
    match result {
        Err(_) => (Outcome::Panicked, None),
        Ok(Err(e)) => (Outcome::ErrorDetected, Some(e.kind())),
        Ok(Ok(out)) if out == block => (Outcome::OkIntact, None),
        Ok(Ok(_)) => (Outcome::SilentCorruption, None),
    }
}

fn algo_tag(a: Algorithm) -> u64 {
    match a {
        Algorithm::Zstdx => 1,
        Algorithm::Lz4x => 2,
        Algorithm::Zlibx => 3,
    }
}

fn inj_tag(i: Injector) -> u64 {
    match i {
        Injector::BitFlip { flips } => 0x10 | flips as u64,
        Injector::Truncate => 0x20,
        Injector::Splice => 0x30,
        Injector::LengthInflate => 0x40,
        Injector::DictSkew => 0x50,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_blocks() -> Vec<Vec<u8>> {
        vec![
            corpus::silesia::generate(corpus::silesia::FileClass::Text, 4 << 10, 0xfa01),
            corpus::silesia::generate(corpus::silesia::FileClass::Binary, 4 << 10, 0xfa02),
        ]
    }

    #[test]
    fn sweep_is_deterministic() {
        let blocks = small_blocks();
        let cfg = SweepConfig {
            budget_per_block: 8,
            ..SweepConfig::default()
        };
        let a = sweep(
            &blocks,
            &[Injector::BitFlip { flips: 1 }],
            Algorithm::ALL.as_ref(),
            &cfg,
        );
        let b = sweep(
            &blocks,
            &[Injector::BitFlip { flips: 1 }],
            Algorithm::ALL.as_ref(),
            &cfg,
        );
        assert_eq!(a.total_cases(), b.total_cases());
        for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
            assert_eq!(ca.0, cb.0);
            assert_eq!(ca.1.error_detected, cb.1.error_detected);
            assert_eq!(ca.1.ok_intact, cb.1.ok_intact);
        }
    }

    #[test]
    fn sweep_finds_no_violations() {
        let blocks = small_blocks();
        let cfg = SweepConfig {
            budget_per_block: 16,
            ..SweepConfig::default()
        };
        let report = sweep(&blocks, &Injector::ALL, Algorithm::ALL.as_ref(), &cfg);
        assert!(report.total_cases() > 0);
        assert_eq!(
            report.violations(),
            0,
            "contract violations:\n{}",
            report.render_table()
        );
    }

    #[test]
    fn check_decode_classifies_intact_frames() {
        let comp = Algorithm::Zstdx.compressor(3);
        let data = b"hello faultline hello faultline".to_vec();
        let frame = comp.compress(&data);
        let limits = DecodeLimits::with_max_output(data.len());
        let (outcome, _) = check_decode(comp.as_ref(), &frame, &data, &limits);
        assert_eq!(outcome, Outcome::OkIntact);
    }

    #[test]
    fn limit_exceeded_on_intact_input_is_error_detected() {
        // A pristine frame decoded under a too-small budget fails with
        // `LimitExceeded`. That is the limit contract *working*; the
        // harness must classify it as detection, not silent corruption.
        let comp = Algorithm::Zstdx.compressor(3);
        let data = corpus::silesia::generate(corpus::silesia::FileClass::Text, 4 << 10, 0xfa03);
        let frame = comp.compress(&data);
        let tight = DecodeLimits::with_max_output(16);
        let (outcome, kind) = check_decode(comp.as_ref(), &frame, &data, &tight);
        assert_eq!(outcome, Outcome::ErrorDetected);
        assert_eq!(kind, Some("limit_exceeded"));
    }

    #[test]
    fn dict_skew_probe_never_returns_wrong_bytes() {
        let block = corpus::silesia::generate(corpus::silesia::FileClass::Xml, 8 << 10, 0xd1c7);
        for algo in Algorithm::ALL {
            let (outcome, _) = dict_skew_probe(algo, &block, &SweepConfig::default());
            assert!(
                matches!(outcome, Outcome::ErrorDetected | Outcome::OkIntact),
                "{algo}: dict skew outcome {outcome:?}"
            );
        }
    }

    #[test]
    fn report_table_renders() {
        let blocks = vec![corpus::silesia::generate(
            corpus::silesia::FileClass::Log,
            2 << 10,
            1,
        )];
        let cfg = SweepConfig {
            budget_per_block: 4,
            ..SweepConfig::default()
        };
        let report = sweep(&blocks, &[Injector::Truncate], &[Algorithm::Lz4x], &cfg);
        let table = report.render_table();
        assert!(table.contains("truncate"));
        assert!(table.contains("lz4x"));
        assert!(table.contains("total:"));
    }
}
