//! Seed-driven *operational* fault injectors.
//!
//! The injectors in [`crate::inject`] corrupt bytes; the ones here
//! corrupt *operations* — they model the failure weather a managed
//! compression deployment lives in (flaky dependencies, latency
//! spikes, error bursts, clock skew) by driving the service's
//! [`FaultHook`](managed::FaultHook) and a shared
//! [`ManualClock`](telemetry::ManualClock). Like everything in
//! `faultline`, a plan is a pure function of its seed and call index:
//! the same seed replays the same fault schedule byte for byte.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use managed::{FaultHook, FaultSite};
use telemetry::ManualClock;

/// Manual-clock advance modeling one latency spike (5 ms).
const SPIKE_NANOS: u64 = 5_000_000;

/// Manual-clock jump modeling one clock-skew event (250 ms).
const SKEW_NANOS: u64 = 250_000_000;

/// SplitMix64: the one-u64-in, one-u64-out mixer behind every
/// per-call-index fault decision. Public so harnesses (and the
/// `datacomp monitor --chaos-seed` replay) share the exact generator.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An operational fault strategy over a stream of codec attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpInjectorKind {
    /// Every 7th attempt stalls [`SPIKE_NANOS`] on the shared manual
    /// clock and then fails (a dependency that timed out); other
    /// attempts see small jittered latency and succeed.
    LatencySpike,
    /// 60% of attempts fail, i.i.d. per call index — above the default
    /// breaker threshold, so breakers must open.
    CodecErrors,
    /// Deterministic bursts: 12 consecutive failing attempts out of
    /// every 40 (a dependency flapping hard, then recovering).
    ErrorBurst,
    /// No failures, but 1-in-16 attempts jump the shared clock forward
    /// [`SKEW_NANOS`] — stressing every time-based window and cooldown.
    ClockSkew,
}

impl OpInjectorKind {
    /// All operational injectors in sweep order.
    pub const ALL: [OpInjectorKind; 4] = [
        OpInjectorKind::LatencySpike,
        OpInjectorKind::CodecErrors,
        OpInjectorKind::ErrorBurst,
        OpInjectorKind::ClockSkew,
    ];

    /// Stable name used in reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            OpInjectorKind::LatencySpike => "latency-spike",
            OpInjectorKind::CodecErrors => "codec-errors",
            OpInjectorKind::ErrorBurst => "error-burst",
            OpInjectorKind::ClockSkew => "clock-skew",
        }
    }

    /// Parses a name produced by [`OpInjectorKind::name`].
    pub fn from_name(s: &str) -> Option<OpInjectorKind> {
        match s {
            "latency-spike" => Some(OpInjectorKind::LatencySpike),
            "codec-errors" => Some(OpInjectorKind::CodecErrors),
            "error-burst" => Some(OpInjectorKind::ErrorBurst),
            "clock-skew" => Some(OpInjectorKind::ClockSkew),
            _ => None,
        }
    }

    /// Whether this injector's failure rate is high enough that the
    /// chaos sweep requires the decompress breaker to open.
    pub fn expects_breaker_open(&self) -> bool {
        matches!(
            self,
            OpInjectorKind::CodecErrors | OpInjectorKind::ErrorBurst
        )
    }
}

impl std::fmt::Display for OpInjectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A live fault schedule: one [`OpInjectorKind`] bound to a seed, a
/// call counter, and the shared [`ManualClock`] it perturbs. Install it
/// with [`OpFaultPlan::as_hook`]; flip it off (recovery phase) with
/// [`OpFaultPlan::deactivate`] — the hook stays installed but answers
/// "no fault" and stops touching the clock.
#[derive(Debug)]
pub struct OpFaultPlan {
    kind: OpInjectorKind,
    seed: u64,
    clock: Arc<ManualClock>,
    calls: AtomicU64,
    injected: AtomicU64,
    active: AtomicBool,
}

impl OpFaultPlan {
    /// Creates an active plan for `kind`, deterministic in `seed`.
    pub fn new(kind: OpInjectorKind, seed: u64, clock: Arc<ManualClock>) -> Arc<Self> {
        Arc::new(Self {
            kind,
            seed,
            clock,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            active: AtomicBool::new(true),
        })
    }

    /// The injector this plan runs.
    pub fn kind(&self) -> OpInjectorKind {
        self.kind
    }

    /// Stops injecting (and perturbing the clock); idempotent.
    pub fn deactivate(&self) {
        self.active.store(false, Ordering::Release);
    }

    /// Resumes injecting; idempotent.
    pub fn activate(&self) {
        self.active.store(true, Ordering::Release);
    }

    /// Attempts consulted while active.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Acquire)
    }

    /// Failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Acquire)
    }

    /// One fault decision for the next call index. Side effects (clock
    /// advances) happen here.
    fn decide(&self, _site: &FaultSite<'_>) -> bool {
        if !self.active.load(Ordering::Acquire) {
            return false;
        }
        let n = self.calls.fetch_add(1, Ordering::AcqRel);
        let fault = match self.kind {
            OpInjectorKind::CodecErrors => splitmix64(self.seed ^ n) % 100 < 60,
            OpInjectorKind::ErrorBurst => n % 40 < 12,
            OpInjectorKind::LatencySpike => {
                if n.is_multiple_of(7) {
                    self.clock.advance(SPIKE_NANOS);
                    true
                } else {
                    self.clock.advance(splitmix64(self.seed ^ n) % 200_000);
                    false
                }
            }
            OpInjectorKind::ClockSkew => {
                if splitmix64(self.seed ^ n).is_multiple_of(16) {
                    self.clock.advance(SKEW_NANOS);
                }
                false
            }
        };
        if fault {
            self.injected.fetch_add(1, Ordering::AcqRel);
        }
        fault
    }

    /// The plan as a service fault hook
    /// ([`ManagedCompression::set_fault_hook`]).
    ///
    /// [`ManagedCompression::set_fault_hook`]: managed::ManagedCompression::set_fault_hook
    pub fn as_hook(self: &Arc<Self>) -> FaultHook {
        let plan = Arc::clone(self);
        Arc::new(move |site: &FaultSite<'_>| plan.decide(site))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consult(plan: &Arc<OpFaultPlan>, n: usize) -> Vec<bool> {
        let hook = plan.as_hook();
        let site = FaultSite {
            use_case: "t",
            op: "decompress",
            attempt: 0,
        };
        (0..n).map(|_| hook(&site)).collect()
    }

    #[test]
    fn plans_replay_deterministically_per_seed() {
        for kind in OpInjectorKind::ALL {
            let a = consult(&OpFaultPlan::new(kind, 99, ManualClock::shared()), 256);
            let b = consult(&OpFaultPlan::new(kind, 99, ManualClock::shared()), 256);
            assert_eq!(a, b, "{kind} not deterministic");
        }
        let a = consult(
            &OpFaultPlan::new(OpInjectorKind::CodecErrors, 1, ManualClock::shared()),
            256,
        );
        let b = consult(
            &OpFaultPlan::new(OpInjectorKind::CodecErrors, 2, ManualClock::shared()),
            256,
        );
        assert_ne!(a, b, "different seeds schedule differently");
    }

    #[test]
    fn error_burst_is_12_of_every_40() {
        let plan = OpFaultPlan::new(OpInjectorKind::ErrorBurst, 7, ManualClock::shared());
        let faults = consult(&plan, 80);
        let count = faults.iter().filter(|f| **f).count();
        assert_eq!(count, 24);
        assert!(faults.iter().take(12).all(|f| *f), "burst is consecutive");
        assert!(!faults.iter().skip(12).take(28).any(|f| *f), "then quiet");
    }

    #[test]
    fn latency_spikes_advance_the_shared_clock() {
        let clock = ManualClock::shared();
        let plan = OpFaultPlan::new(OpInjectorKind::LatencySpike, 3, Arc::clone(&clock));
        let before = telemetry::Clock::now_nanos(&*clock);
        let faults = consult(&plan, 70);
        assert_eq!(faults.iter().filter(|f| **f).count(), 10, "every 7th");
        let advanced = telemetry::Clock::now_nanos(&*clock) - before;
        assert!(advanced >= 10 * SPIKE_NANOS, "spikes stall the clock");
    }

    #[test]
    fn clock_skew_jumps_but_never_fails() {
        let clock = ManualClock::shared();
        let plan = OpFaultPlan::new(OpInjectorKind::ClockSkew, 11, Arc::clone(&clock));
        let faults = consult(&plan, 256);
        assert!(faults.iter().all(|f| !*f), "skew injects no failures");
        assert!(
            telemetry::Clock::now_nanos(&*clock) >= SKEW_NANOS,
            "at least one jump in 256 calls"
        );
    }

    #[test]
    fn deactivation_silences_the_plan_mid_stream() {
        let plan = OpFaultPlan::new(OpInjectorKind::ErrorBurst, 5, ManualClock::shared());
        assert!(consult(&plan, 4).iter().all(|f| *f), "burst head faults");
        plan.deactivate();
        assert!(consult(&plan, 64).iter().all(|f| !*f));
        assert_eq!(plan.injected(), 4);
        plan.activate();
        assert!(consult(&plan, 1).first().copied().unwrap_or(false));
    }

    #[test]
    fn names_round_trip() {
        for kind in OpInjectorKind::ALL {
            assert_eq!(OpInjectorKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(OpInjectorKind::from_name("nope"), None);
    }
}
