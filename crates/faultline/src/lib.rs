//! Deterministic fault-injection for the datacomp codecs.
//!
//! Datacenter compression services decode bytes that crossed machines,
//! disks, and software generations; the paper's fleet characterization
//! (§III) is implicitly a study of formats that must tolerate all of
//! that. `faultline` asserts the robustness half of that story: a
//! seed-driven corruption harness that sweeps injector × codec × corpus
//! and checks the **decode contract** on every case:
//!
//! * corrupted input decodes to `Err(CodecError)` or provably intact
//!   bytes — never to silently wrong output;
//! * no decode path panics, whatever the input;
//! * output never exceeds the caller's [`codecs::DecodeLimits`] budget,
//!   so hostile length fields cannot drive allocation.
//!
//! The [`opfault`]/[`chaos`] half injects *operational* faults instead
//! of byte corruption: latency spikes, codec error bursts, and clock
//! skew driven through the managed service's fault hook, with a sweep
//! asserting the resilience invariants (typed errors only, bounded
//! retries, breakers that open and recover, a brownout ladder that
//! still round-trips).
//!
//! Everything is deterministic: a sweep is replayable from its seed, and
//! a failing case from its `(seed, injector, codec, block)` coordinates.
//!
//! ```
//! use faultline::{sweep, Injector, SweepConfig};
//! use codecs::Algorithm;
//!
//! let blocks = vec![corpus::silesia::generate(
//!     corpus::silesia::FileClass::Text, 4 << 10, 7)];
//! let cfg = SweepConfig { budget_per_block: 8, ..SweepConfig::default() };
//! let report = sweep(&blocks, &Injector::ALL, &Algorithm::ALL.to_vec(), &cfg);
//! assert_eq!(report.violations(), 0);
//! ```

pub mod chaos;
pub mod harness;
pub mod inject;
pub mod opfault;
pub mod rng;

pub use chaos::{deadline_probe, run as chaos_run, ChaosCell, ChaosConfig, ChaosReport};
pub use harness::{check_decode, dict_skew_probe, sweep, Cell, Outcome, Report, SweepConfig};
pub use inject::Injector;
pub use opfault::{splitmix64, OpFaultPlan, OpInjectorKind};
pub use rng::Rng;
