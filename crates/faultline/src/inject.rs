//! Seed-driven corruption injectors.
//!
//! Every injector is a pure function of `(frame, rng stream, budget)`:
//! the same seed always yields byte-identical corrupted variants, so a
//! failing sweep case can be replayed from its `(seed, injector, codec,
//! block)` coordinates alone.

use crate::rng::Rng;

/// Maximum header prefix (bytes) targeted by header-focused injectors.
/// Covers magic, flags, content-size varint, and dictionary id in every
/// datacomp frame format.
const HEADER_WINDOW: usize = 24;

/// A corruption strategy over an encoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injector {
    /// Flips `flips` randomly chosen bits anywhere in the frame.
    BitFlip {
        /// Number of bits flipped per variant (1 = single-event upset).
        flips: u32,
    },
    /// Cuts the frame at byte boundaries: every boundary when the frame
    /// is small enough, otherwise the full header window plus evenly
    /// spaced interior boundaries up to the budget.
    Truncate,
    /// Overwrites a window of the frame with bytes copied from a
    /// different offset of the same frame (models misdirected DMA /
    /// cross-frame buffer reuse).
    Splice,
    /// Saturates bytes in the header window to `0xff`, inflating
    /// length/size fields (models a length-field attack on allocation).
    LengthInflate,
    /// Perturbs the dictionary-id region of the header (models rollout
    /// skew where a frame meets the wrong dictionary generation).
    DictSkew,
}

impl Injector {
    /// All injectors in sweep order.
    pub const ALL: [Injector; 6] = [
        Injector::BitFlip { flips: 1 },
        Injector::BitFlip { flips: 8 },
        Injector::Truncate,
        Injector::Splice,
        Injector::LengthInflate,
        Injector::DictSkew,
    ];

    /// Stable name used in reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            Injector::BitFlip { flips: 1 } => "bitflip",
            Injector::BitFlip { .. } => "multiflip",
            Injector::Truncate => "truncate",
            Injector::Splice => "splice",
            Injector::LengthInflate => "length-inflate",
            Injector::DictSkew => "dict-skew",
        }
    }

    /// Parses a name produced by [`Injector::name`].
    pub fn from_name(s: &str) -> Option<Injector> {
        match s {
            "bitflip" => Some(Injector::BitFlip { flips: 1 }),
            "multiflip" => Some(Injector::BitFlip { flips: 8 }),
            "truncate" => Some(Injector::Truncate),
            "splice" => Some(Injector::Splice),
            "length-inflate" => Some(Injector::LengthInflate),
            "dict-skew" => Some(Injector::DictSkew),
            _ => None,
        }
    }

    /// Generates up to `budget` corrupted variants of `frame`,
    /// deterministically from `rng`'s stream. Variants identical to the
    /// input are dropped (nothing was corrupted, so the decode contract
    /// has nothing to say about them).
    pub fn corrupt(&self, frame: &[u8], rng: &Rng, budget: usize) -> Vec<Vec<u8>> {
        let mut out = match self {
            Injector::BitFlip { flips } => bit_flips(frame, rng, budget, *flips),
            Injector::Truncate => truncations(frame, budget),
            Injector::Splice => splices(frame, rng, budget),
            Injector::LengthInflate => length_inflations(frame, budget),
            Injector::DictSkew => dict_skews(frame, rng, budget),
        };
        out.retain(|v| v.as_slice() != frame);
        out
    }
}

impl std::fmt::Display for Injector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// indexing_slicing: `bit < buf.len() * 8`, so `bit / 8 < buf.len()`.
#[allow(clippy::indexing_slicing)]
fn bit_flips(frame: &[u8], rng: &Rng, budget: usize, flips: u32) -> Vec<Vec<u8>> {
    if frame.is_empty() {
        return Vec::new();
    }
    (0..budget)
        .map(|v| {
            let mut r = rng.derive(v as u64);
            let mut buf = frame.to_vec();
            for _ in 0..flips {
                let bit = r.gen_range(buf.len() * 8);
                buf[bit / 8] ^= 1 << (bit % 8);
            }
            buf
        })
        .collect()
}

// indexing_slicing: every cut is clamped to `< n == frame.len()`.
#[allow(clippy::indexing_slicing)]
fn truncations(frame: &[u8], budget: usize) -> Vec<Vec<u8>> {
    // Boundaries 0..frame.len()-1; the full frame is not a truncation.
    let n = frame.len();
    if n == 0 {
        return Vec::new();
    }
    let cuts: Vec<usize> = if n <= budget {
        (0..n).collect()
    } else {
        // Every header boundary, then evenly spaced interior cuts.
        let head = HEADER_WINDOW.min(n).min(budget);
        let rest = budget - head;
        let mut c: Vec<usize> = (0..head).collect();
        for i in 0..rest {
            // Spread over (head, n) exclusive of both ends.
            let cut = head + 1 + (i * (n - head - 1)) / rest.max(1);
            c.push(cut.min(n - 1));
        }
        c.dedup();
        c
    };
    cuts.into_iter().map(|k| frame[..k].to_vec()).collect()
}

// indexing_slicing: `len <= buf.len()` and both window starts are drawn
// from `0..buf.len() - len + 1`, so `src + len`/`dst + len` are
// in-bounds.
#[allow(clippy::indexing_slicing)]
fn splices(frame: &[u8], rng: &Rng, budget: usize) -> Vec<Vec<u8>> {
    if frame.len() < 2 {
        return Vec::new();
    }
    (0..budget)
        .map(|v| {
            let mut r = rng.derive(v as u64);
            let mut buf = frame.to_vec();
            let len = 1 + r.gen_range(32.min(buf.len() - 1));
            let src = r.gen_range(buf.len() - len + 1);
            let dst = r.gen_range(buf.len() - len + 1);
            let window: Vec<u8> = buf[src..src + len].to_vec();
            buf[dst..dst + len].copy_from_slice(&window);
            buf
        })
        .collect()
}

// indexing_slicing: `pos < window <= frame.len()`.
#[allow(clippy::indexing_slicing)]
fn length_inflations(frame: &[u8], budget: usize) -> Vec<Vec<u8>> {
    // One variant per header byte position, saturating it to 0xff. This
    // reliably inflates LEB128 size fields (continuation bit + max
    // payload) and length nibbles.
    let window = HEADER_WINDOW.min(frame.len());
    (0..window.min(budget))
        .map(|pos| {
            let mut buf = frame.to_vec();
            buf[pos] = 0xff;
            buf
        })
        .collect()
}

// indexing_slicing: `pos` is drawn from `lo..hi` with
// `hi <= frame.len()` and `frame.len() > 3 == lo` checked above.
#[allow(clippy::indexing_slicing)]
fn dict_skews(frame: &[u8], rng: &Rng, budget: usize) -> Vec<Vec<u8>> {
    // The dictionary id lives just past the 2-byte magic + flags in the
    // datacomp frame formats; perturb that region with nonzero XORs.
    if frame.len() <= 3 {
        return Vec::new();
    }
    let lo = 3;
    let hi = HEADER_WINDOW.min(frame.len());
    (0..budget)
        .map(|v| {
            let mut r = rng.derive(v as u64);
            let mut buf = frame.to_vec();
            let pos = lo + r.gen_range(hi - lo);
            let mask = (1 + r.gen_range(255)) as u8;
            buf[pos] ^= mask;
            buf
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Vec<u8> {
        (0u8..=255).cycle().take(1024).collect()
    }

    #[test]
    fn injectors_are_deterministic() {
        let f = frame();
        let rng = Rng::new(0x5157);
        for inj in Injector::ALL {
            let a = inj.corrupt(&f, &rng, 16);
            let b = inj.corrupt(&f, &rng, 16);
            assert_eq!(a, b, "{inj} not deterministic");
            assert!(!a.is_empty(), "{inj} produced no variants");
        }
    }

    #[test]
    fn variants_differ_from_input() {
        let f = frame();
        let rng = Rng::new(1);
        for inj in Injector::ALL {
            for v in inj.corrupt(&f, &rng, 16) {
                assert_ne!(v, f, "{inj} returned an uncorrupted variant");
            }
        }
    }

    #[test]
    fn truncate_covers_every_boundary_when_small() {
        let f: Vec<u8> = (0..10).collect();
        let cuts = Injector::Truncate.corrupt(&f, &Rng::new(0), 64);
        assert_eq!(cuts.len(), 10);
        for (k, v) in cuts.iter().enumerate() {
            assert_eq!(v.len(), k);
        }
    }

    #[test]
    fn truncate_respects_budget_when_large() {
        let f = vec![7u8; 1 << 16];
        let cuts = Injector::Truncate.corrupt(&f, &Rng::new(0), 128);
        assert!(cuts.len() <= 128);
        assert!(cuts.iter().all(|v| v.len() < f.len()));
    }

    #[test]
    fn names_round_trip() {
        for inj in Injector::ALL {
            assert_eq!(Injector::from_name(inj.name()), Some(inj));
        }
        assert_eq!(Injector::from_name("nope"), None);
    }

    #[test]
    fn empty_frame_yields_no_variants() {
        let rng = Rng::new(3);
        for inj in Injector::ALL {
            assert!(inj.corrupt(&[], &rng, 8).is_empty());
        }
    }
}
